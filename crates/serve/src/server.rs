//! The TCP server: one request core behind two interchangeable connection
//! layers.
//!
//! The default layer is the nonblocking event loop in [`crate::event_loop`]
//! — one thread multiplexing every connection through readiness
//! notifications, with request execution decoupled onto a fixed worker
//! pool. `ServeConfig { blocking: true, .. }` selects the legacy
//! thread-per-connection layer instead; both call the same
//! [`classify`]/[`execute`] pair here, so for every deterministic frame
//! type the two layers produce byte-identical responses
//! (`tests/serve_async.rs` holds them to that differentially).
//!
//! # Determinism across the wire
//!
//! Every `List`/`Count` request executes through
//! [`list_resilient`] against the cached [`Prepared`] artifacts, with the
//! entry's shared oracle (T-methods) and shared adaptive kernels
//! (adaptive policy only — paper-policy requests build their own
//! paper-faithful contexts so the policy a client names is the policy
//! that runs). Both sharing hooks are read-only during execution, so the
//! triangles and every `CostReport` field are byte-identical to a direct
//! in-process run against the same artifacts
//! (`tests/serve_differential.rs`).
//!
//! # Budgets and the shared gauge
//!
//! Each request's [`RunBudget`] carries the server-wide [`MemoryGauge`]:
//! the ceiling (per-request override or the server default) is checked
//! against cache residency *plus* every in-flight run, one global number.
//! Deadlines map to budget deadlines; an interrupted run answers with a
//! partial [`RunResult`] whose resume token a follow-up request can
//! continue — the per-chunk piece table in the response lets the client
//! stitch the chain back into exact sequential order.

use crate::admission::{Admission, AdmissionConfig};
use crate::chaos::{write_all_resilient, ChaosHub, ChaosPlan, ChaosStream, ExecFault};
use crate::event_loop;
use crate::protocol::{
    encode_frame, scan_frame, DeltaParams, DeltaRunResult, EditInfo, ErrorCode, ErrorFrame,
    ListParams, PlanInfo, Request, Response, RunResult,
};
use crate::store::{CompactorHandle, EditReceipt, GraphStore, Prepared, StoreConfig, StoreError};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use trilist_core::{
    list_new_triangles_src, list_resilient_src, Counter, DeltaOpts, DeltaOutcome, DeltaResumePoint,
    GraphSource, InMemoryRecorder, KernelPolicy, Kernels, MemoryGauge, Method, ParallelOpts,
    Recorder, ResilientOpts, ResumeParseError, ResumePoint, RunBudget, RunOutcome,
};
use trilist_model::{price_delta, price_request};
use trilist_order::OrderingKind;

/// Server knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listing worker threads per request when the request does not name
    /// its own count.
    pub workers: usize,
    /// Admission-control limits.
    pub admission: AdmissionConfig,
    /// Graph store and prepared-cache limits.
    pub store: StoreConfig,
    /// Default memory ceiling in bytes, checked against the shared gauge
    /// (cache residency + in-flight runs). A request's own
    /// `memory_bytes` overrides it. `None` = unlimited.
    pub memory_bytes: Option<u64>,
    /// Serve connections on the legacy blocking thread-per-connection
    /// layer instead of the default event loop. Kept for differential
    /// testing: both layers must answer every deterministic frame type
    /// byte-identically.
    pub blocking: bool,
    /// Deterministic fault injection across both connection layers and
    /// the execution path. `None` (the default) injects nothing.
    pub chaos: Option<ChaosPlan>,
    /// The degrade-before-reject overload ladder.
    pub degrade: DegradeConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            admission: AdmissionConfig::default(),
            store: StoreConfig::default(),
            memory_bytes: None,
            blocking: false,
            chaos: None,
            degrade: DegradeConfig::default(),
        }
    }
}

/// The degrade-before-reject overload ladder: under combined queue and
/// memory-gauge pressure the server trades per-request speed for
/// survival *before* it sheds load, one rung at a time. Every rung is
/// invisible on the wire except for latency and the partial+resume
/// contract clients already hold: kernel downgrades keep cost accounting
/// and triangles byte-identical (the repo's policy-invariance contract),
/// deadline clamps only shrink deadlines a client already set, and cold
/// evictions only drop cache entries other graphs own. Each step taken
/// is counted in `Stats` (`admission_degraded_*`), so tests can pin that
/// the ladder engages before the first `rejected-busy`.
#[derive(Clone, Copy, Debug)]
pub struct DegradeConfig {
    /// Master switch; `false` jumps straight to rejection (pre-ladder
    /// behavior).
    pub enabled: bool,
    /// Pressure (max of queue fill and gauge fill, 0..=1) at which the
    /// kernel policy steps down one rung (bitset → adaptive → paper).
    pub policy_at: f64,
    /// Pressure at which request deadlines clamp to
    /// [`DegradeConfig::degraded_deadline_ms`], forcing the
    /// partial+resume path so slots recycle faster.
    pub deadline_at: f64,
    /// Pressure at which the policy drops all the way to paper-faithful
    /// and one cold cache entry is evicted per request.
    pub evict_at: f64,
    /// Deadline (ms) imposed on deadline-carrying requests past
    /// [`DegradeConfig::deadline_at`].
    pub degraded_deadline_ms: u64,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            enabled: true,
            policy_at: 0.60,
            deadline_at: 0.75,
            evict_at: 0.90,
            degraded_deadline_ms: 50,
        }
    }
}

#[derive(Default)]
pub(crate) struct RequestCounters {
    total: AtomicU64,
    register: AtomicU64,
    list: AtomicU64,
    count: AtomicU64,
    add_edges: AtomicU64,
    remove_edges: AtomicU64,
    list_new: AtomicU64,
    predict: AtomicU64,
    explain: AtomicU64,
    stats: AtomicU64,
    shutdown: AtomicU64,
    errors: AtomicU64,
    degraded_policy: AtomicU64,
    degraded_deadline: AtomicU64,
    degraded_evict: AtomicU64,
    pub(crate) accept_errors: AtomicU64,
}

pub(crate) struct Shared {
    pub(crate) cfg: ServeConfig,
    pub(crate) gauge: MemoryGauge,
    pub(crate) store: Arc<GraphStore>,
    pub(crate) admission: Admission,
    pub(crate) recorder: Arc<InMemoryRecorder>,
    pub(crate) shutting: AtomicBool,
    pub(crate) counters: RequestCounters,
    pub(crate) chaos: Option<Arc<ChaosHub>>,
    /// Connection-id well for the blocking layer (the event loop numbers
    /// its own); chaos keys I/O injections off these ids.
    pub(crate) next_conn: AtomicU64,
}

/// The service entry point.
pub struct Server;

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the connection layer [`ServeConfig::blocking`] selects on a
    /// background thread.
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServeConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let gauge = MemoryGauge::new();
        let blocking = cfg.blocking;
        let recorder = Arc::new(InMemoryRecorder::new());
        let chaos = cfg
            .chaos
            .map(|plan| Arc::new(ChaosHub::new(plan, Arc::clone(&recorder))));
        let store = Arc::new(
            GraphStore::new(cfg.store.clone(), gauge.clone())
                .with_recorder(Arc::clone(&recorder) as Arc<dyn Recorder>),
        );
        // The off-lane compaction worker: edit batches whose delta ratio
        // trips the threshold nudge it, so segment merges and autotuner
        // re-runs never block a connection layer. The handle drains and
        // joins when the server handle drops.
        let compactor = GraphStore::start_compactor(&store);
        let shared = Arc::new(Shared {
            store,
            admission: Admission::new(cfg.admission),
            recorder,
            shutting: AtomicBool::new(false),
            counters: RequestCounters::default(),
            chaos,
            next_conn: AtomicU64::new(0),
            gauge,
            cfg,
        });
        if blocking {
            let accept_shared = Arc::clone(&shared);
            let accept = std::thread::spawn(move || accept_loop(listener, accept_shared));
            Ok(ServerHandle {
                addr: local,
                shared,
                accept: Some(accept),
                waker: None,
                _compactor: compactor,
            })
        } else {
            let (thread, waker) = event_loop::spawn(listener, Arc::clone(&shared))?;
            Ok(ServerHandle {
                addr: local,
                shared,
                accept: Some(thread),
                waker: Some(waker),
                _compactor: compactor,
            })
        }
    }
}

/// A running server. Dropping it drains and joins.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    waker: Option<Arc<mio::Waker>>,
    /// Joined by its own `Drop` after the accept thread (field order).
    _compactor: CompactorHandle,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a graceful drain: stop accepting connections and new work,
    /// finish what is in flight. Returns immediately.
    pub fn shutdown(&self) {
        self.shared.shutting.store(true, Ordering::SeqCst);
        if let Some(waker) = &self.waker {
            let _ = waker.wake();
        }
    }

    /// Drains and blocks until every connection thread has finished.
    pub fn join(mut self) {
        self.shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Blocks until the server shuts down (a client's `Shutdown` request,
    /// or [`ServerHandle::shutdown`] from another thread).
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// What an accept loop does after `accept` fails. Classified in one
/// place so both connection layers react identically; public so the
/// fd-exhaustion tests can pin the classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcceptAction {
    /// Wait for the next readiness notification (`EAGAIN`).
    WaitReadable,
    /// Retry immediately: the error consumed only one handshake
    /// (`EINTR`, `ECONNABORTED`-style aborted connections).
    Retry,
    /// Count the error and back off briefly, keeping the listener open —
    /// fd exhaustion (`EMFILE`/`ENFILE`) clears when a connection
    /// closes, and dying instead would turn a transient limit into a
    /// full outage.
    Backoff(Duration),
}

/// Classifies one `accept` error into an [`AcceptAction`].
pub fn accept_error_action(e: &std::io::Error) -> AcceptAction {
    const ENFILE: i32 = 23;
    const EMFILE: i32 = 24;
    const ECONNABORTED: i32 = 103;
    const EPROTO: i32 = 71;
    match e.kind() {
        std::io::ErrorKind::WouldBlock => AcceptAction::WaitReadable,
        std::io::ErrorKind::Interrupted => AcceptAction::Retry,
        _ => match e.raw_os_error() {
            Some(ECONNABORTED) | Some(EPROTO) => AcceptAction::Retry,
            Some(EMFILE) | Some(ENFILE) => AcceptAction::Backoff(Duration::from_millis(10)),
            _ => AcceptAction::Backoff(Duration::from_millis(2)),
        },
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutting.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_shared = Arc::clone(&shared);
                let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                conns.push(std::thread::spawn(move || {
                    serve_conn(&conn_shared, id, stream)
                }));
            }
            Err(e) => match accept_error_action(&e) {
                // the listener is nonblocking: WouldBlock is the idle
                // poll, not an error
                AcceptAction::WaitReadable => std::thread::sleep(Duration::from_millis(2)),
                AcceptAction::Retry => {}
                AcceptAction::Backoff(pause) => {
                    shared
                        .counters
                        .accept_errors
                        .fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(pause);
                }
            },
        }
    }
    for c in conns {
        let _ = c.join();
    }
}

fn send(stream: &mut ChaosStream, shared: &Shared, resp: &Response) -> bool {
    note_response(shared, resp);
    write_all_resilient(stream, &encode_frame(resp.kind(), &resp.payload())).is_ok()
}

/// Floor of the idle-read backoff (also the first timeout after data).
const IDLE_BACKOFF_MIN: Duration = Duration::from_millis(25);
/// Ceiling of the idle-read backoff — an idle blocking connection wakes
/// at most ~1.25×/s, instead of the fixed 50 ms spin this replaced.
const IDLE_BACKOFF_MAX: Duration = Duration::from_millis(800);
/// Poll cadence while draining, so closure is noticed promptly.
const DRAIN_POLL: Duration = Duration::from_millis(50);
/// Grace a draining connection gets to finish a half-written frame.
const DRAIN_GRACE: Duration = Duration::from_secs(1);

/// One blocking connection: accumulate bytes, answer every complete
/// frame. The read timeout only paces the drain check — a timeout
/// mid-frame leaves the buffer intact, so slow writers never
/// desynchronize the stream — and doubles while the connection stays
/// idle, so parked connections cost near-zero CPU
/// (`tests/serve_idle.rs`).
fn serve_conn(shared: &Shared, conn_id: u64, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut stream = ChaosStream::new(stream, shared.chaos.clone(), conn_id);
    let mut acc: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 16 * 1024];
    let mut backoff = IDLE_BACKOFF_MIN;
    let mut timeout = Duration::ZERO; // differs from any real value, so the first pass sets one
    let mut drain_since: Option<Instant> = None;
    let mut next_seq: u64 = 0;
    loop {
        loop {
            match scan_frame(&acc) {
                Ok(None) => break,
                Ok(Some((kind, total))) => {
                    let seq = next_seq;
                    next_seq += 1;
                    let resp = match Request::decode(kind, &acc[6..total]) {
                        Ok(req) => handle_request(shared, conn_id, seq, req),
                        Err(e) => {
                            Response::Error(ErrorFrame::new(ErrorCode::Protocol, e.to_string()))
                        }
                    };
                    acc.drain(..total);
                    if !send(&mut stream, shared, &resp) {
                        return;
                    }
                }
                Err(e) => {
                    // framing is broken; report once and close
                    let frame_err = ErrorFrame::new(ErrorCode::Protocol, e.to_string());
                    send(&mut stream, shared, &Response::Error(frame_err));
                    return;
                }
            }
        }
        let want = if shared.shutting.load(Ordering::SeqCst) {
            DRAIN_POLL
        } else {
            backoff
        };
        if want != timeout {
            let _ = stream.get_ref().set_read_timeout(Some(want));
            timeout = want;
        }
        match stream.read(&mut tmp) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                backoff = IDLE_BACKOFF_MIN;
                drain_since = None;
                acc.extend_from_slice(&tmp[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutting.load(Ordering::SeqCst) {
                    let since = *drain_since.get_or_insert_with(Instant::now);
                    // grace for a half-written frame, then close
                    if acc.is_empty() || since.elapsed() >= DRAIN_GRACE {
                        return;
                    }
                } else {
                    backoff = (backoff * 2).min(IDLE_BACKOFF_MAX);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Tallies a response the way the wire sees it — error frames feed the
/// `responses_error` counter. Both connection layers call this exactly
/// once per response.
pub(crate) fn note_response(shared: &Shared, resp: &Response) {
    if matches!(resp, Response::Error(_)) {
        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// What the connection layer should do with one decoded request.
pub(crate) enum Dispatch {
    /// Answered at classification time, in frame order: `Stats`,
    /// `Shutdown`, and the drain gate. These never enter a queue, so a
    /// pipelined `Stats` behind a slow `List` answers immediately (the
    /// response still flushes in frame order).
    Inline(Response),
    /// Cheap control-plane work (`RegisterGraph`, `ModelPredict`): runs
    /// on the express lane, never behind a priced listing run.
    Express(Request),
    /// Priced data-plane work (`List`, `Count`): pulled by the fixed
    /// worker pool through the admission gate.
    Priced(Request),
}

/// Classifies one request at dispatch time. Counters and the drain gate
/// live here so they observe frame arrival order — identically in both
/// connection layers. In particular `Shutdown` flips the drain flag the
/// moment its frame is parsed, so a pipelined `[List, Shutdown]` still
/// answers the `List` but a later `[Shutdown, List]` rejects the `List`.
pub(crate) fn classify(shared: &Shared, req: Request) -> Dispatch {
    let c = &shared.counters;
    c.total.fetch_add(1, Ordering::Relaxed);
    match req {
        Request::Stats => {
            c.stats.fetch_add(1, Ordering::Relaxed);
            Dispatch::Inline(Response::StatsResult(stats_fields(shared)))
        }
        Request::Shutdown => {
            c.shutdown.fetch_add(1, Ordering::Relaxed);
            shared.shutting.store(true, Ordering::SeqCst);
            Dispatch::Inline(Response::ShutdownAck)
        }
        _ if shared.shutting.load(Ordering::SeqCst) => {
            Dispatch::Inline(Response::Error(ErrorFrame::new(
                ErrorCode::ShuttingDown,
                "server is draining and accepts no new work",
            )))
        }
        Request::RegisterGraph { .. } => {
            c.register.fetch_add(1, Ordering::Relaxed);
            Dispatch::Express(req)
        }
        Request::ModelPredict { .. } => {
            c.predict.fetch_add(1, Ordering::Relaxed);
            Dispatch::Express(req)
        }
        Request::ExplainPlan { .. } => {
            c.explain.fetch_add(1, Ordering::Relaxed);
            Dispatch::Express(req)
        }
        // Edits are appends (validate + delta-run push); the expensive
        // follow-up work — compaction — runs on the store's off lane, so
        // the express lane stays express.
        Request::AddEdges { .. } => {
            c.add_edges.fetch_add(1, Ordering::Relaxed);
            Dispatch::Express(req)
        }
        Request::RemoveEdges { .. } => {
            c.remove_edges.fetch_add(1, Ordering::Relaxed);
            Dispatch::Express(req)
        }
        Request::ListNewTriangles(_) => {
            c.list_new.fetch_add(1, Ordering::Relaxed);
            Dispatch::Priced(req)
        }
        Request::List(_) => {
            c.list.fetch_add(1, Ordering::Relaxed);
            Dispatch::Priced(req)
        }
        Request::Count(_) => {
            c.count.fetch_add(1, Ordering::Relaxed);
            Dispatch::Priced(req)
        }
    }
}

/// Executes one already-classified request. No gates and no counters —
/// [`classify`] applied both — so the response depends only on the
/// request and server state, never on which connection layer called it.
pub(crate) fn execute(shared: &Shared, req: Request) -> Response {
    match req {
        Request::RegisterGraph { name, n, edges } => {
            match shared.store.register(&name, n, &edges) {
                Ok((n, m)) => Response::Registered { n, m },
                Err(e) => Response::Error(ErrorFrame::new(ErrorCode::BadRequest, e.to_string())),
            }
        }
        Request::ModelPredict {
            graph,
            method,
            family,
        } => match predict(shared, &graph, &method, &family) {
            Ok(resp) => resp,
            Err(e) => Response::Error(e),
        },
        Request::ExplainPlan { graph } => match explain_plan(shared, &graph) {
            Ok(info) => Response::PlanResult(info),
            Err(e) => Response::Error(e),
        },
        Request::List(p) => match run_listing(shared, &p, true) {
            Ok(res) => Response::ListResult(res),
            Err(e) => Response::Error(e),
        },
        Request::Count(p) => match run_listing(shared, &p, false) {
            Ok(res) => Response::CountResult(res),
            Err(e) => Response::Error(e),
        },
        Request::AddEdges { graph, edges } => match shared.store.add_edges(&graph, &edges) {
            Ok(receipt) => Response::EditResult(edit_info(&receipt)),
            Err(e) => Response::Error(store_err(&e)),
        },
        Request::RemoveEdges { graph, edges } => match shared.store.remove_edges(&graph, &edges) {
            Ok(receipt) => Response::EditResult(edit_info(&receipt)),
            Err(e) => Response::Error(store_err(&e)),
        },
        Request::ListNewTriangles(p) => match run_delta(shared, &p) {
            Ok(res) => Response::NewTrianglesResult(res),
            Err(e) => Response::Error(e),
        },
        // classify() always answers these inline; if one reaches here
        // anyway, answer it the same way rather than panic.
        Request::Stats => Response::StatsResult(stats_fields(shared)),
        Request::Shutdown => {
            shared.shutting.store(true, Ordering::SeqCst);
            Response::ShutdownAck
        }
    }
}

fn handle_request(shared: &Shared, conn: u64, seq: u64, req: Request) -> Response {
    match classify(shared, req) {
        Dispatch::Inline(resp) => resp,
        Dispatch::Express(req) | Dispatch::Priced(req) => execute_guarded(shared, conn, seq, req),
    }
}

/// Ballast charged to the shared gauge for a scope; the `Drop` releases
/// it even when the guarded execution panics.
struct GaugeBallast {
    gauge: MemoryGauge,
    bytes: u64,
}

impl GaugeBallast {
    fn charge(gauge: &MemoryGauge, bytes: u64) -> GaugeBallast {
        gauge.add(bytes);
        GaugeBallast {
            gauge: gauge.clone(),
            bytes,
        }
    }
}

impl Drop for GaugeBallast {
    fn drop(&mut self) {
        self.gauge.release(self.bytes);
    }
}

/// [`execute`] wrapped in the chaos plan's execution faults and panic
/// isolation. Both connection layers run every Express/Priced request
/// through here, so a panicking request — injected or real — answers a
/// typed `Internal` error instead of losing a worker (event loop) or the
/// whole connection (blocking layer). Injected faults are drawn per
/// `(conn, seq)`, the same identity the I/O faults key on.
pub(crate) fn execute_guarded(shared: &Shared, conn: u64, seq: u64, mut req: Request) -> Response {
    let mut inject_panic = false;
    let mut _ballast: Option<GaugeBallast> = None;
    if let Some(hub) = &shared.chaos {
        match hub.plan.exec_fault(conn, seq) {
            Some(ExecFault::Panic) => {
                hub.note(&hub.stats.panics);
                inject_panic = true;
            }
            Some(ExecFault::GaugeSpike(bytes)) => {
                hub.note(&hub.stats.gauge_spikes);
                _ballast = Some(GaugeBallast::charge(&shared.gauge, bytes));
            }
            None => {}
        }
        if hub.plan.skews_deadline(conn, seq) {
            if let Request::List(p) | Request::Count(p) = &mut req {
                // Shrink-only skew: a deadline the client set gets
                // quartered (forcing the partial+resume path); requests
                // without a deadline stay deterministic-complete.
                if p.deadline_ms > 0 {
                    hub.note(&hub.stats.deadline_skews);
                    p.deadline_ms = (p.deadline_ms / 4).max(1);
                }
            }
        }
    }
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if inject_panic {
            panic!("injected fault: chaos panic (conn {conn} seq {seq})");
        }
        execute(shared, req)
    }))
    .unwrap_or_else(|_| {
        Response::Error(ErrorFrame::new(
            ErrorCode::Internal,
            "request execution panicked",
        ))
    })
}

fn bad(msg: impl Into<String>) -> ErrorFrame {
    ErrorFrame::new(ErrorCode::BadRequest, msg)
}

/// Typed mapping for store failures: an unknown graph keeps its distinct
/// code (clients treat it as "register first"), everything else —
/// unknown epochs, rejected edit batches — is a request-shaped error.
fn store_err(e: &StoreError) -> ErrorFrame {
    match e {
        StoreError::UnknownGraph(_) => ErrorFrame::new(ErrorCode::UnknownGraph, e.to_string()),
        _ => bad(e.to_string()),
    }
}

fn edit_info(r: &EditReceipt) -> EditInfo {
    EditInfo {
        epoch: r.epoch,
        applied: r.applied,
        m: r.m,
        delta_edges: r.delta_edges,
        delta_ratio: r.delta_ratio,
        compacting: r.compacting,
    }
}

fn parse_method(name: &str) -> Result<Method, ErrorFrame> {
    Method::from_name(name).ok_or_else(|| bad(format!("unknown method {name:?}")))
}

fn parse_ordering(name: &str) -> Result<OrderingKind, ErrorFrame> {
    OrderingKind::from_name(name).ok_or_else(|| bad(format!("unknown ordering {name:?}")))
}

fn predict(
    shared: &Shared,
    graph: &str,
    method: &str,
    family: &str,
) -> Result<Response, ErrorFrame> {
    let method = parse_method(method)?;
    let ordering = parse_ordering(family)?;
    let (prepared, _) = shared
        .store
        .prepare(graph, ordering)
        .map_err(|e| ErrorFrame::new(ErrorCode::UnknownGraph, e.to_string()))?;
    let price = price_request(method, &prepared.degrees_by_label);
    Ok(Response::Predicted {
        per_node: price.per_node,
        total_ops: price.total_ops,
        n: price.n,
    })
}

/// Resolves (computing and caching if needed) the graph's listing plan
/// and flattens it into the wire [`PlanInfo`] frame.
fn explain_plan(shared: &Shared, graph: &str) -> Result<PlanInfo, ErrorFrame> {
    let summary = shared
        .store
        .listing_plan(graph)
        .map_err(|e| ErrorFrame::new(ErrorCode::UnknownGraph, e.to_string()))?;
    let plan = &summary.plan;
    Ok(PlanInfo {
        ordering: plan.ordering.name().to_string(),
        method: plan.method_hint.to_string(),
        policy: plan.policy.name().to_string(),
        compressed: plan.compressed,
        predicted_ops: summary.predicted_ops,
        predicted_seconds: summary.predicted_seconds,
        default_ops: summary.default_ops,
        default_seconds: summary.default_seconds,
        evaluations: summary.evaluations,
        sampled: summary.sampled,
    })
}

/// Maps relabeled triangles back to original node IDs, each triple sorted
/// — the same convention as [`trilist_core::list_triangles`].
fn map_triangles<'a>(
    inverse: &'a [u32],
    triangles: &'a [(u32, u32, u32)],
) -> impl Iterator<Item = (u32, u32, u32)> + 'a {
    triangles.iter().map(move |&(x, y, z)| {
        let mut t = [
            inverse[x as usize],
            inverse[y as usize],
            inverse[z as usize],
        ];
        t.sort_unstable();
        (t[0], t[1], t[2])
    })
}

/// One rung down the kernel ladder: bitset → adaptive → paper-faithful.
fn downgrade_policy(policy: KernelPolicy) -> KernelPolicy {
    match policy {
        KernelPolicy::Bitset(_) => KernelPolicy::adaptive(),
        KernelPolicy::Adaptive(_) | KernelPolicy::PaperFaithful => KernelPolicy::PaperFaithful,
    }
}

/// Combined overload pressure in `0..=1`: the max of admission fill
/// (inflight + queued over capacity) and memory-gauge fill (cache
/// residency + in-flight runs over the server ceiling; 0 when no ceiling
/// is configured).
fn overload_pressure(shared: &Shared) -> f64 {
    let queue_fill = shared.admission.fill();
    let gauge_fill = match shared.cfg.memory_bytes {
        Some(ceiling) if ceiling > 0 => shared.gauge.used() as f64 / ceiling as f64,
        _ => 0.0,
    };
    queue_fill.max(gauge_fill)
}

fn run_listing(
    shared: &Shared,
    p: &ListParams,
    materialize: bool,
) -> Result<RunResult, ErrorFrame> {
    // Unpinned requests leave method/ordering/policy as empty strings;
    // the blanks resolve from the store's per-graph listing plan, so an
    // unpinned run is byte-identical to an explicit request naming the
    // plan's choices (pinned by tests/serve_differential.rs). Explicitly
    // pinned fields always win.
    let unpinned = p.method.is_empty() || p.family.is_empty() || p.policy.is_empty();
    let plan = if unpinned {
        Some(
            shared
                .store
                .listing_plan(&p.graph)
                .map_err(|e| ErrorFrame::new(ErrorCode::UnknownGraph, e.to_string()))?,
        )
    } else {
        None
    };
    let method = match &plan {
        Some(s) if p.method.is_empty() => s.plan.method_hint,
        _ => parse_method(&p.method)?,
    };
    if !Method::FUNDAMENTAL.contains(&method) {
        return Err(bad(format!(
            "method {method} is not served (the parallel runtime covers T1, T2, E1, E4)"
        )));
    }
    let ordering = match &plan {
        Some(s) if p.family.is_empty() => s.plan.ordering,
        _ => parse_ordering(&p.family)?,
    };
    let mut policy = match &plan {
        Some(s) if p.policy.is_empty() => s.plan.policy,
        _ => KernelPolicy::from_name(&p.policy)
            .ok_or_else(|| bad(format!("unknown kernel policy {:?}", p.policy)))?,
    };
    let (prepared, cache_hit) = shared
        .store
        .prepare(&p.graph, ordering)
        .map_err(|e| ErrorFrame::new(ErrorCode::UnknownGraph, e.to_string()))?;

    // Degrade-before-reject: under pressure, trade speed for survival
    // one rung at a time before the admission gate sheds anything.
    // Kernel downgrades are wire-invisible (cost accounting and
    // triangles are policy-invariant), so completed responses stay
    // byte-identical to an unpressured run.
    let mut deadline_ms = p.deadline_ms;
    let ladder = shared.cfg.degrade;
    if ladder.enabled {
        let pressure = overload_pressure(shared);
        if pressure >= ladder.policy_at {
            let stepped = if pressure >= ladder.evict_at {
                KernelPolicy::PaperFaithful
            } else {
                downgrade_policy(policy)
            };
            if std::mem::discriminant(&stepped) != std::mem::discriminant(&policy) {
                policy = stepped;
                shared
                    .counters
                    .degraded_policy
                    .fetch_add(1, Ordering::Relaxed);
                shared.recorder.add(Counter::ServeDegradations, 1);
            }
            if pressure >= ladder.deadline_at
                && deadline_ms > 0
                && deadline_ms > ladder.degraded_deadline_ms
            {
                deadline_ms = ladder.degraded_deadline_ms;
                shared
                    .counters
                    .degraded_deadline
                    .fetch_add(1, Ordering::Relaxed);
                shared.recorder.add(Counter::ServeDegradations, 1);
            }
            if pressure >= ladder.evict_at && shared.store.evict_cold(&p.graph) {
                shared
                    .counters
                    .degraded_evict
                    .fetch_add(1, Ordering::Relaxed);
                shared.recorder.add(Counter::ServeDegradations, 1);
            }
        }
    }

    let price = price_request(method, &prepared.degrees_by_label);
    shared
        .admission
        .check_price(&price)
        .map_err(|r| ErrorFrame::new(ErrorCode::RejectedCost, r.to_string()))?;
    let permit = shared
        .admission
        .admit()
        .map_err(|r| ErrorFrame::new(ErrorCode::RejectedBusy, r.to_string()))?;

    let mut budget = RunBudget::unlimited().with_gauge(shared.gauge.clone());
    if deadline_ms > 0 {
        budget = budget.with_deadline(Duration::from_millis(deadline_ms));
    }
    let ceiling = if p.memory_bytes > 0 {
        Some(p.memory_bytes)
    } else {
        shared.cfg.memory_bytes
    };
    if let Some(bytes) = ceiling {
        budget = budget.with_memory_bytes(bytes);
    }
    let threads = if p.threads > 0 {
        p.threads as usize
    } else {
        shared.cfg.workers
    };
    let recorder: Arc<dyn Recorder> = Arc::clone(&shared.recorder) as Arc<dyn Recorder>;
    let opts = ResilientOpts {
        parallel: ParallelOpts {
            threads,
            policy,
            // Serve-sized chunks: the default 1024-op chunks exist for
            // fine-grained budget checks in long batch runs; per-request
            // scheduling overhead dominates at service request sizes, and
            // cost/triangle accounting is chunk-count-invariant (pinned by
            // tests/serve_differential.rs).
            target_chunk_ops: 32768,
        },
        budget,
        recorder: Some(recorder),
        oracle: matches!(method, Method::T1 | Method::T2).then(|| Arc::clone(&prepared.oracle)),
        // the cached kernel context is reusable whenever the request asks
        // for exactly the policy it was built under (the store's plan) —
        // paper-policy requests never take it, and a mismatched policy
        // falls back to per-worker builds
        kernels: (policy == prepared.kernels.policy()
            && !matches!(policy, KernelPolicy::PaperFaithful))
        .then(|| Arc::clone(&prepared.kernels)),
        ..ResilientOpts::default()
    };

    // list from the layout the plan chose; cost accounting and triangle
    // output are layout-invariant (pinned by tests/serve_differential.rs)
    let src = match &prepared.csr {
        Some(c) => GraphSource::Compressed(c),
        None => GraphSource::Plain(&prepared.dg),
    };
    let outcome = if p.resume.is_empty() {
        list_resilient_src(src, method, &opts)
    } else {
        let rp: ResumePoint = p
            .resume
            .parse()
            .map_err(|e: ResumeParseError| bad(e.to_string()))?;
        if rp.method != method {
            return Err(bad(format!(
                "resume token is for {}, request names {}",
                rp.method, method
            )));
        }
        rp.run_src(src, &opts)
    };
    drop(permit);
    let outcome = outcome.map_err(|e| bad(e.to_string()))?;
    Ok(wire_result(&prepared, cache_hit, materialize, outcome))
}

fn wire_result(
    prepared: &Prepared,
    cache_hit: bool,
    materialize: bool,
    outcome: RunOutcome,
) -> RunResult {
    match outcome {
        RunOutcome::Complete(run) => RunResult {
            complete: true,
            stop_reason: String::new(),
            cache_hit,
            cost: run.cost,
            resume: String::new(),
            chunks: if materialize {
                run.piece_counts
            } else {
                vec![]
            },
            triangles: if materialize {
                map_triangles(&prepared.inverse, &run.triangles).collect()
            } else {
                vec![]
            },
        },
        RunOutcome::Partial(pr) => {
            let (chunks, triangles) = if materialize {
                let mut chunks = Vec::with_capacity(pr.completed.len());
                let mut tris = Vec::new();
                for piece in &pr.completed {
                    chunks.push((piece.chunk, piece.triangles.len() as u32));
                    tris.extend(map_triangles(&prepared.inverse, &piece.triangles));
                }
                (chunks, tris)
            } else {
                (vec![], vec![])
            };
            RunResult {
                complete: false,
                stop_reason: pr.reason.to_string(),
                cache_hit,
                cost: pr.cost(),
                resume: pr.resume.to_string(),
                chunks,
                triangles,
            }
        }
    }
}

/// Executes one `ListNewTriangles` request: fold the epoch window's
/// delta runs into net edge changes, prepare the graph at the window's
/// end epoch, and enumerate only the triangles touching a net-new edge.
///
/// The target epoch is pinned for the whole run, so a background
/// compaction landing mid-request (or between the links of a resume
/// chain) cannot garbage-collect the segments the epoch materializes
/// from — and because compaction never renumbers epochs and the relabel
/// seed is epoch-mixed, a chain interrupted and resumed across a
/// compaction is byte-identical to one that never saw it
/// (`tests/serve_dynamic.rs`).
fn run_delta(shared: &Shared, p: &DeltaParams) -> Result<DeltaRunResult, ErrorFrame> {
    let latest = shared
        .store
        .latest_epoch(&p.graph)
        .map_err(|e| store_err(&e))?;
    let to = if p.to_epoch == DeltaParams::LATEST {
        latest
    } else {
        p.to_epoch
    };
    let _pin = shared
        .store
        .pin(&p.graph, Some(to))
        .map_err(|e| store_err(&e))?;
    let (net_new, net_removed) = shared
        .store
        .delta_edges(&p.graph, p.from_epoch, to)
        .map_err(|e| store_err(&e))?;

    // Blank family/policy resolve from the graph's autotuned plan, like
    // unpinned List/Count requests.
    let unpinned = p.family.is_empty() || p.policy.is_empty();
    let plan = if unpinned {
        Some(
            shared
                .store
                .listing_plan(&p.graph)
                .map_err(|e| store_err(&e))?,
        )
    } else {
        None
    };
    let ordering = match &plan {
        Some(s) if p.family.is_empty() => s.plan.ordering,
        _ => parse_ordering(&p.family)?,
    };
    let policy = match &plan {
        Some(s) if p.policy.is_empty() => s.plan.policy,
        _ => KernelPolicy::from_name(&p.policy)
            .ok_or_else(|| bad(format!("unknown kernel policy {:?}", p.policy)))?,
    };
    let (prepared, cache_hit, _) = shared
        .store
        .prepare_at(&p.graph, ordering, Some(to))
        .map_err(|e| store_err(&e))?;

    // The delta driver works in label space: map each net-new edge
    // through the epoch's relabeling, normalize to (lo, hi), and sort —
    // the dedup convention (minimal-rank owning edge) needs a canonical
    // order.
    let mut forward = vec![0u32; prepared.inverse.len()];
    for (label, &orig) in prepared.inverse.iter().enumerate() {
        forward[orig as usize] = label as u32;
    }
    let mut label_edges: Vec<(u32, u32)> = net_new
        .iter()
        .map(|&(u, v)| {
            let (a, b) = (forward[u as usize], forward[v as usize]);
            (a.min(b), a.max(b))
        })
        .collect();
    label_edges.sort_unstable();

    let price = price_delta(&prepared.degrees_by_label, &label_edges);
    shared
        .admission
        .check_price(&price)
        .map_err(|r| ErrorFrame::new(ErrorCode::RejectedCost, r.to_string()))?;
    let permit = shared
        .admission
        .admit()
        .map_err(|r| ErrorFrame::new(ErrorCode::RejectedBusy, r.to_string()))?;

    let mut budget = RunBudget::unlimited().with_gauge(shared.gauge.clone());
    if p.deadline_ms > 0 {
        budget = budget.with_deadline(Duration::from_millis(p.deadline_ms));
    }
    let ceiling = if p.memory_bytes > 0 {
        Some(p.memory_bytes)
    } else {
        shared.cfg.memory_bytes
    };
    if let Some(bytes) = ceiling {
        budget = budget.with_memory_bytes(bytes);
    }
    let threads = if p.threads > 0 {
        p.threads as usize
    } else {
        shared.cfg.workers
    };
    let opts = DeltaOpts {
        threads,
        budget,
        ..DeltaOpts::default()
    };

    let src = match &prepared.csr {
        Some(c) => GraphSource::Compressed(c),
        None => GraphSource::Plain(&prepared.dg),
    };
    // Reuse the cached kernel context only when the request asks for
    // exactly the policy it was built under; paper-policy requests build
    // their own paper-faithful context, like run_listing.
    let built = (policy != prepared.kernels.policy()
        || matches!(policy, KernelPolicy::PaperFaithful))
    .then(|| Kernels::build_src(policy, src));
    let kernels: &Kernels = match &built {
        Some(k) => k,
        None => &prepared.kernels,
    };
    let outcome = if p.resume.is_empty() {
        list_new_triangles_src(src, kernels, &label_edges, &opts)
    } else {
        let rp: DeltaResumePoint = p
            .resume
            .parse()
            .map_err(|e: ResumeParseError| bad(e.to_string()))?;
        rp.run_src(src, kernels, &label_edges, &opts)
            .map_err(|e| bad(e.to_string()))?
    };
    drop(permit);

    let mut chunks = Vec::new();
    let mut triangles = Vec::new();
    for piece in outcome.pieces() {
        chunks.push((piece.chunk, piece.triangles.len() as u32));
        triangles.extend(map_triangles(&prepared.inverse, &piece.triangles));
    }
    let (complete, stop_reason, resume) = match &outcome {
        DeltaOutcome::Complete { .. } => (true, String::new(), String::new()),
        DeltaOutcome::Partial { resume, reason, .. } => {
            (false, reason.to_string(), resume.to_string())
        }
    };
    Ok(DeltaRunResult {
        from_epoch: p.from_epoch,
        to_epoch: to,
        new_edges: label_edges.len() as u64,
        removed_edges: net_removed.len() as u64,
        result: RunResult {
            complete,
            stop_reason,
            cache_hit,
            cost: outcome.cost(),
            resume,
            chunks,
            triangles,
        },
    })
}

/// Every server counter, in a stable order the client and tests can rely
/// on: request counts, admission, cache, gauge, then recorder telemetry.
fn stats_fields(shared: &Shared) -> Vec<(String, u64)> {
    let c = &shared.counters;
    let a = shared.admission.stats();
    let s = shared.store.stats();
    let mut out: Vec<(String, u64)> = vec![
        ("requests_total".into(), c.total.load(Ordering::Relaxed)),
        (
            "requests_register".into(),
            c.register.load(Ordering::Relaxed),
        ),
        ("requests_list".into(), c.list.load(Ordering::Relaxed)),
        ("requests_count".into(), c.count.load(Ordering::Relaxed)),
        (
            "requests_add_edges".into(),
            c.add_edges.load(Ordering::Relaxed),
        ),
        (
            "requests_remove_edges".into(),
            c.remove_edges.load(Ordering::Relaxed),
        ),
        (
            "requests_list_new".into(),
            c.list_new.load(Ordering::Relaxed),
        ),
        ("requests_predict".into(), c.predict.load(Ordering::Relaxed)),
        ("requests_explain".into(), c.explain.load(Ordering::Relaxed)),
        ("requests_stats".into(), c.stats.load(Ordering::Relaxed)),
        (
            "requests_shutdown".into(),
            c.shutdown.load(Ordering::Relaxed),
        ),
        ("responses_error".into(), c.errors.load(Ordering::Relaxed)),
        (
            "accept_errors".into(),
            c.accept_errors.load(Ordering::Relaxed),
        ),
        ("admission_admitted".into(), a.admitted),
        ("admission_queued".into(), a.queued),
        ("admission_rejected_busy".into(), a.rejected_busy),
        ("admission_rejected_cost".into(), a.rejected_cost),
        ("admission_inflight".into(), a.inflight),
        (
            "admission_degraded_policy".into(),
            c.degraded_policy.load(Ordering::Relaxed),
        ),
        (
            "admission_degraded_deadline".into(),
            c.degraded_deadline.load(Ordering::Relaxed),
        ),
        (
            "admission_degraded_evict".into(),
            c.degraded_evict.load(Ordering::Relaxed),
        ),
        ("cache_hits".into(), s.hits),
        ("cache_misses".into(), s.misses),
        ("cache_evictions".into(), s.evictions),
        ("cache_cold_evictions".into(), s.cold_evictions),
        ("cache_entries".into(), s.entries),
        ("cache_bytes".into(), s.bytes),
        ("plans_cached".into(), s.plans),
        ("plan_bytes".into(), s.plan_bytes),
        ("graphs_registered".into(), s.graphs),
        ("delta_runs".into(), s.delta_runs),
        ("delta_edges".into(), s.delta_edges),
        ("delta_bytes".into(), s.delta_bytes),
        ("retained_segments".into(), s.retained_segments),
        ("segment_bytes".into(), s.segment_bytes),
        ("epoch_pins".into(), s.epoch_pins),
        ("compactions".into(), s.compactions),
        ("gauge_bytes".into(), shared.gauge.used()),
        (
            "memory_ceiling_bytes".into(),
            shared.cfg.memory_bytes.unwrap_or(0),
        ),
    ];
    if let Some(hub) = &shared.chaos {
        out.extend(hub.stats.fields());
    }
    for counter in Counter::ALL {
        out.push((
            format!("recorder_{}", counter.name()),
            shared.recorder.counter(counter),
        ));
    }
    out.push(("recorder_spans".into(), shared.recorder.span_count()));
    out.push(("recorder_span_ns".into(), shared.recorder.span_total_ns()));
    out
}
