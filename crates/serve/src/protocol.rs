//! The `trilist-serve` wire protocol: length-prefixed, versioned binary
//! frames carrying typed requests and responses.
//!
//! # Frame grammar
//!
//! ```text
//! frame   := len:u32le  version:u8(=1)  kind:u8  payload
//! len     := 2 + |payload|            (capped at MAX_FRAME_BYTES)
//! str     := len:u32le utf8-bytes     (validated before allocation)
//! arr<T>  := count:u32le T*           (count validated before allocation)
//! bool    := u8 ∈ {0, 1}
//! f64     := raw IEEE-754 bits as u64le (bit-exact round-trip)
//! ```
//!
//! Request kinds occupy `0x01..=0x0A`, response kinds `0x81..=0x89`, and
//! `0xFF` is the typed error frame. Every decode failure surfaces as a
//! [`WireError`] — the decoder has no panicking paths and never allocates
//! beyond the bytes actually received (`tests/serve_props.rs`).

use crate::codec::{Reader, WireError, Writer};
use std::io::{Read, Write};
use trilist_core::CostReport;

/// Protocol version carried in every frame header.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard cap on `len`: a frame larger than this is rejected before its
/// body is read, bounding what one connection can make the server buffer.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// A request frame, client → server.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Register an undirected simple graph under a name.
    RegisterGraph {
        /// Name later requests refer to.
        name: String,
        /// Node count.
        n: u32,
        /// Undirected edges (`u < v` not required; validation is the
        /// server's [`trilist_graph::Graph::from_edges`]).
        edges: Vec<(u32, u32)>,
    },
    /// List triangles.
    List(ListParams),
    /// Count triangles (same execution, no triangle payload back).
    Count(ListParams),
    /// Price a request with the paper's cost model without running it.
    ModelPredict {
        /// Registered graph name.
        graph: String,
        /// Method name (`T1`, `E4`, …).
        method: String,
        /// Permutation family name (`desc`, `rr`, …).
        family: String,
    },
    /// Report the autotuner's [`PlanInfo`] for a registered graph — the
    /// plan unpinned `List`/`Count` requests execute under.
    ExplainPlan {
        /// Registered graph name.
        graph: String,
    },
    /// Append a batch of new undirected edges to a registered graph,
    /// creating a new epoch. Validation is all-or-nothing: a batch
    /// containing a duplicate, a self-loop, an out-of-range endpoint, or
    /// an edge already present applies nothing.
    AddEdges {
        /// Registered graph name.
        graph: String,
        /// Undirected edges to insert (order within the batch is
        /// irrelevant; the resulting epoch is batch-order independent).
        edges: Vec<(u32, u32)>,
    },
    /// Remove a batch of existing edges, creating a new epoch. Same
    /// all-or-nothing validation as `AddEdges`.
    RemoveEdges {
        /// Registered graph name.
        graph: String,
        /// Undirected edges to delete (must all be present).
        edges: Vec<(u32, u32)>,
    },
    /// List only the triangles that exist at `to_epoch` but not at
    /// `from_epoch` — every triangle containing at least one net-new
    /// edge of the window — without re-listing the whole graph.
    ListNewTriangles(DeltaParams),
    /// Fetch server counters (cache, admission, recorder, gauge).
    Stats,
    /// Graceful drain: stop accepting work, finish in-flight requests.
    Shutdown,
}

/// Parameters shared by `List` and `Count`.
#[derive(Clone, Debug, PartialEq)]
pub struct ListParams {
    /// Registered graph name.
    pub graph: String,
    /// Method name (`T1`, `T2`, `E1`, `E4`).
    pub method: String,
    /// Permutation family name (`asc`, `desc`, `rr`, `crr`, `uniform`,
    /// `degen`).
    pub family: String,
    /// Kernel policy name (`paper` or `adaptive`).
    pub policy: String,
    /// Listing threads (0 = server default).
    pub threads: u16,
    /// Per-request deadline in milliseconds (0 = none).
    pub deadline_ms: u64,
    /// Per-request memory ceiling in bytes (0 = server default).
    pub memory_bytes: u64,
    /// Resume token from a previous partial response (empty = fresh run).
    pub resume: String,
}

impl ListParams {
    /// Fresh-run parameters with server-default knobs.
    pub fn new(graph: &str, method: &str, family: &str, policy: &str) -> Self {
        ListParams {
            graph: graph.to_string(),
            method: method.to_string(),
            family: family.to_string(),
            policy: policy.to_string(),
            threads: 0,
            deadline_ms: 0,
            memory_bytes: 0,
            resume: String::new(),
        }
    }
}

/// Parameters for `ListNewTriangles`: an epoch window plus the same
/// execution knobs as [`ListParams`] (minus `method` — the delta driver
/// is an E1-style iteration over the window's net-new edges).
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaParams {
    /// Registered graph name.
    pub graph: String,
    /// Window start (the epoch whose triangles are "old").
    pub from_epoch: u64,
    /// Window end. [`DeltaParams::LATEST`] resolves to the graph's
    /// latest epoch at execution time; a resumed chain should carry the
    /// resolved value from the first response so edits landing mid-chain
    /// cannot shift the window.
    pub to_epoch: u64,
    /// Permutation family name (empty = the graph's autotuned plan).
    pub family: String,
    /// Kernel policy name (empty = the graph's autotuned plan).
    pub policy: String,
    /// Listing threads (0 = server default).
    pub threads: u16,
    /// Per-request deadline in milliseconds (0 = none).
    pub deadline_ms: u64,
    /// Per-request memory ceiling in bytes (0 = server default).
    pub memory_bytes: u64,
    /// Resume token from a previous partial response (empty = fresh run).
    pub resume: String,
}

impl DeltaParams {
    /// Sentinel `to_epoch` meaning "the latest epoch when the request
    /// executes" (`0` cannot serve — it is a valid epoch).
    pub const LATEST: u64 = u64::MAX;

    /// Fresh-run parameters with server-default knobs and the plan's
    /// family/policy.
    pub fn new(graph: &str, from_epoch: u64, to_epoch: u64) -> Self {
        DeltaParams {
            graph: graph.to_string(),
            from_epoch,
            to_epoch,
            family: String::new(),
            policy: String::new(),
            threads: 0,
            deadline_ms: 0,
            memory_bytes: 0,
            resume: String::new(),
        }
    }
}

/// A response frame, server → client.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Graph accepted.
    Registered {
        /// Node count as parsed.
        n: u32,
        /// Undirected edge count.
        m: u64,
    },
    /// Outcome of a `List` request.
    ListResult(RunResult),
    /// Outcome of a `Count` request (no triangles on the wire).
    CountResult(RunResult),
    /// Cost-model price for a prospective request.
    Predicted {
        /// Expected operations per node (Proposition 4).
        per_node: f64,
        /// Expected total operations.
        total_ops: f64,
        /// Nodes priced over.
        n: u64,
    },
    /// The autotuner's verdict for a graph.
    PlanResult(PlanInfo),
    /// Named counters, in a stable server-defined order.
    StatsResult(Vec<(String, u64)>),
    /// Outcome of an `AddEdges`/`RemoveEdges` batch.
    EditResult(EditInfo),
    /// Outcome of a `ListNewTriangles` request.
    NewTrianglesResult(DeltaRunResult),
    /// Drain acknowledged; in-flight requests will finish.
    ShutdownAck,
    /// Typed failure.
    Error(ErrorFrame),
}

/// The `AddEdges`/`RemoveEdges` answer: the epoch the batch created and
/// the store's compaction posture after it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EditInfo {
    /// The epoch this batch created (the graph's new latest).
    pub epoch: u64,
    /// Edges the batch toggled.
    pub applied: u64,
    /// Undirected edge count at the new epoch.
    pub m: u64,
    /// Edges edited since the last compaction, across all batches.
    pub delta_edges: u64,
    /// `delta_edges / max(compacted m, 1)` — the compaction trigger
    /// input.
    pub delta_ratio: f64,
    /// Whether this batch nudged the background compaction lane.
    pub compacting: bool,
}

/// The `ListNewTriangles` answer: the resolved epoch window, the window's
/// net edge churn, and a [`RunResult`] whose triangles are exactly the
/// new triangles of the window (each containing ≥ 1 net-new edge). The
/// embedded result's resume token and piece table follow the same chain
/// contract as `List` — [`merge_pieces`] over the chain's `result`s
/// reconstructs the exact sequential order.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaRunResult {
    /// Window start, as requested.
    pub from_epoch: u64,
    /// Window end, resolved ([`DeltaParams::LATEST`] never echoes back).
    pub to_epoch: u64,
    /// Net-new edges in the window (inserted and still present).
    pub new_edges: u64,
    /// Net-removed edges in the window (present before, gone after).
    pub removed_edges: u64,
    /// The run itself: cost accounting, triangles, resume continuity.
    pub result: RunResult,
}

/// The `ExplainPlan` answer: the stored [`ListingPlan`] by name, plus the
/// ranking context (predicted winner vs paper-default cost, candidates
/// evaluated, whether the degree sample was a reservoir).
///
/// [`ListingPlan`]: trilist_core::ListingPlan
#[derive(Clone, Debug, PartialEq)]
pub struct PlanInfo {
    /// Chosen ordering name (`desc`, …, `split`, `refined`).
    pub ordering: String,
    /// Chosen method name (`T1`, `T2`, `E1`, `E4`).
    pub method: String,
    /// Chosen kernel policy name (`paper`, `adaptive`, `bitset`).
    pub policy: String,
    /// Whether runs list from the compressed CSR.
    pub compressed: bool,
    /// Model-predicted elementary operations of the winner.
    pub predicted_ops: f64,
    /// Winner operations scaled through the machine profile (seconds).
    pub predicted_seconds: f64,
    /// Predicted operations of the paper default (E1 under θ_D).
    pub default_ops: f64,
    /// Paper-default operations in profile seconds.
    pub default_seconds: f64,
    /// Candidates the autotuner evaluated (0 = no autotuning mode).
    pub evaluations: u64,
    /// Whether family pricing ran on a reservoir degree sample.
    pub sampled: bool,
}

/// One executed (possibly partial) listing/counting run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Did every chunk complete?
    pub complete: bool,
    /// Stop reason when partial (empty when complete).
    pub stop_reason: String,
    /// Was the prepared graph served from cache?
    pub cache_hit: bool,
    /// Exact operation accounting, byte-identical to an in-process run.
    pub cost: CostReport,
    /// Resume token for the unvisited remainder (empty when complete).
    /// Feed it back via [`ListParams::resume`] to continue the run.
    pub resume: String,
    /// `(global chunk index, triangle count)` per piece, ascending and
    /// aligned with `triangles`. A resume chain's responses carry
    /// interleaved chunk indices; merging all pieces by index (see
    /// [`merge_pieces`]) reconstructs the exact sequential order. Empty
    /// for `Count`.
    pub chunks: Vec<(u32, u32)>,
    /// Triangles in original node IDs (each triple sorted ascending), in
    /// deterministic chunk order. Always empty for `Count`.
    pub triangles: Vec<(u32, u32, u32)>,
}

/// One `(global chunk index, triangles)` piece of a (possibly partial)
/// run, as split back out of a [`RunResult`] by [`RunResult::pieces`].
pub type Piece = (u32, Vec<(u32, u32, u32)>);

impl RunResult {
    /// Splits the flat triangle list back into `(chunk index, triangles)`
    /// pieces using the piece table. Pieces whose counts disagree with the
    /// triangle list yield `None` (a malformed or hand-edited response).
    pub fn pieces(&self) -> Option<Vec<Piece>> {
        let total: usize = self.chunks.iter().map(|&(_, k)| k as usize).sum();
        if total != self.triangles.len() {
            return None;
        }
        let mut at = 0usize;
        let mut out = Vec::with_capacity(self.chunks.len());
        for &(chunk, count) in &self.chunks {
            let next = at + count as usize;
            out.push((chunk, self.triangles[at..next].to_vec()));
            at = next;
        }
        Some(out)
    }
}

/// Client-side merge of a resume chain: every piece from every response,
/// ordered by global chunk index — byte-identical to the triangle list of
/// one uninterrupted run. Returns `None` if any response's piece table is
/// inconsistent or two responses claim the same chunk.
pub fn merge_pieces(results: &[RunResult]) -> Option<Vec<(u32, u32, u32)>> {
    let mut by_chunk = std::collections::BTreeMap::new();
    for res in results {
        for (chunk, tris) in res.pieces()? {
            if by_chunk.insert(chunk, tris).is_some() {
                return None;
            }
        }
    }
    Some(by_chunk.into_values().flatten().collect())
}

/// Typed error codes. Distinct codes let clients tell load-shedding
/// (retryable) apart from caller bugs (not retryable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed frame or field.
    Protocol,
    /// The named graph is not registered.
    UnknownGraph,
    /// Unknown method/family/policy, invalid resume token, or an invalid
    /// graph on registration.
    BadRequest,
    /// Admission control: concurrency limit and queue are full.
    RejectedBusy,
    /// Admission control: the cost model priced the request over the
    /// server's operations ceiling.
    RejectedCost,
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::Protocol => 1,
            ErrorCode::UnknownGraph => 2,
            ErrorCode::BadRequest => 3,
            ErrorCode::RejectedBusy => 4,
            ErrorCode::RejectedCost => 5,
            ErrorCode::ShuttingDown => 6,
            ErrorCode::Internal => 7,
        }
    }

    fn from_byte(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::UnknownGraph,
            3 => ErrorCode::BadRequest,
            4 => ErrorCode::RejectedBusy,
            5 => ErrorCode::RejectedCost,
            6 => ErrorCode::ShuttingDown,
            7 => ErrorCode::Internal,
            _ => return Err(WireError::Invalid("unknown error code")),
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ErrorCode::Protocol => "protocol",
            ErrorCode::UnknownGraph => "unknown-graph",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::RejectedBusy => "rejected-busy",
            ErrorCode::RejectedCost => "rejected-cost",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
        })
    }
}

/// The error response payload.
#[derive(Clone, Debug, PartialEq)]
pub struct ErrorFrame {
    /// What class of failure.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorFrame {
    /// Convenience constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ErrorFrame {
            code,
            message: message.into(),
        }
    }
}

const KIND_REGISTER: u8 = 0x01;
const KIND_LIST: u8 = 0x02;
const KIND_COUNT: u8 = 0x03;
const KIND_PREDICT: u8 = 0x04;
const KIND_STATS: u8 = 0x05;
const KIND_SHUTDOWN: u8 = 0x06;
const KIND_EXPLAIN_PLAN: u8 = 0x07;
const KIND_ADD_EDGES: u8 = 0x08;
const KIND_REMOVE_EDGES: u8 = 0x09;
const KIND_LIST_NEW: u8 = 0x0A;
const KIND_REGISTERED: u8 = 0x81;
const KIND_LIST_RESULT: u8 = 0x82;
const KIND_COUNT_RESULT: u8 = 0x83;
const KIND_PREDICTED: u8 = 0x84;
const KIND_STATS_RESULT: u8 = 0x85;
const KIND_SHUTDOWN_ACK: u8 = 0x86;
const KIND_PLAN_RESULT: u8 = 0x87;
const KIND_EDIT_RESULT: u8 = 0x88;
const KIND_LIST_NEW_RESULT: u8 = 0x89;
const KIND_ERROR: u8 = 0xFF;

fn put_cost(w: &mut Writer, c: &CostReport) {
    w.u64(c.triangles);
    w.u64(c.lookups);
    w.u64(c.local);
    w.u64(c.remote);
    w.u64(c.hash_inserts);
    w.u64(c.pointer_advances);
    w.bool(c.overflowed);
}

fn get_cost(r: &mut Reader<'_>) -> Result<CostReport, WireError> {
    Ok(CostReport {
        triangles: r.u64()?,
        lookups: r.u64()?,
        local: r.u64()?,
        remote: r.u64()?,
        hash_inserts: r.u64()?,
        pointer_advances: r.u64()?,
        overflowed: r.bool()?,
    })
}

fn put_list_params(w: &mut Writer, p: &ListParams) {
    w.string(&p.graph);
    w.string(&p.method);
    w.string(&p.family);
    w.string(&p.policy);
    w.u16(p.threads);
    w.u64(p.deadline_ms);
    w.u64(p.memory_bytes);
    w.string(&p.resume);
}

fn get_list_params(r: &mut Reader<'_>) -> Result<ListParams, WireError> {
    Ok(ListParams {
        graph: r.string()?,
        method: r.string()?,
        family: r.string()?,
        policy: r.string()?,
        threads: r.u16()?,
        deadline_ms: r.u64()?,
        memory_bytes: r.u64()?,
        resume: r.string()?,
    })
}

fn put_run_result(w: &mut Writer, res: &RunResult) {
    w.bool(res.complete);
    w.string(&res.stop_reason);
    w.bool(res.cache_hit);
    put_cost(w, &res.cost);
    w.string(&res.resume);
    w.array(&res.chunks, |w, &(chunk, count)| {
        w.u32(chunk);
        w.u32(count);
    });
    w.array(&res.triangles, |w, &(x, y, z)| {
        w.u32(x);
        w.u32(y);
        w.u32(z);
    });
}

fn put_delta_params(w: &mut Writer, p: &DeltaParams) {
    w.string(&p.graph);
    w.u64(p.from_epoch);
    w.u64(p.to_epoch);
    w.string(&p.family);
    w.string(&p.policy);
    w.u16(p.threads);
    w.u64(p.deadline_ms);
    w.u64(p.memory_bytes);
    w.string(&p.resume);
}

fn get_delta_params(r: &mut Reader<'_>) -> Result<DeltaParams, WireError> {
    Ok(DeltaParams {
        graph: r.string()?,
        from_epoch: r.u64()?,
        to_epoch: r.u64()?,
        family: r.string()?,
        policy: r.string()?,
        threads: r.u16()?,
        deadline_ms: r.u64()?,
        memory_bytes: r.u64()?,
        resume: r.string()?,
    })
}

fn get_run_result(r: &mut Reader<'_>) -> Result<RunResult, WireError> {
    Ok(RunResult {
        complete: r.bool()?,
        stop_reason: r.string()?,
        cache_hit: r.bool()?,
        cost: get_cost(r)?,
        resume: r.string()?,
        chunks: r.array(8, |r| Ok((r.u32()?, r.u32()?)))?,
        triangles: r.array(12, |r| Ok((r.u32()?, r.u32()?, r.u32()?)))?,
    })
}

impl Request {
    /// The frame kind byte.
    pub fn kind(&self) -> u8 {
        match self {
            Request::RegisterGraph { .. } => KIND_REGISTER,
            Request::List(_) => KIND_LIST,
            Request::Count(_) => KIND_COUNT,
            Request::ModelPredict { .. } => KIND_PREDICT,
            Request::ExplainPlan { .. } => KIND_EXPLAIN_PLAN,
            Request::AddEdges { .. } => KIND_ADD_EDGES,
            Request::RemoveEdges { .. } => KIND_REMOVE_EDGES,
            Request::ListNewTriangles(_) => KIND_LIST_NEW,
            Request::Stats => KIND_STATS,
            Request::Shutdown => KIND_SHUTDOWN,
        }
    }

    /// Encodes the payload (header excluded).
    pub fn payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Request::RegisterGraph { name, n, edges } => {
                w.string(name);
                w.u32(*n);
                w.array(edges, |w, &(u, v)| {
                    w.u32(u);
                    w.u32(v);
                });
            }
            Request::List(p) | Request::Count(p) => put_list_params(&mut w, p),
            Request::ModelPredict {
                graph,
                method,
                family,
            } => {
                w.string(graph);
                w.string(method);
                w.string(family);
            }
            Request::ExplainPlan { graph } => w.string(graph),
            Request::AddEdges { graph, edges } | Request::RemoveEdges { graph, edges } => {
                w.string(graph);
                w.array(edges, |w, &(u, v)| {
                    w.u32(u);
                    w.u32(v);
                });
            }
            Request::ListNewTriangles(p) => put_delta_params(&mut w, p),
            Request::Stats | Request::Shutdown => {}
        }
        w.into_bytes()
    }

    /// Decodes a request from its kind byte and payload.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(payload);
        let req = match kind {
            KIND_REGISTER => Request::RegisterGraph {
                name: r.string()?,
                n: r.u32()?,
                edges: r.array(8, |r| Ok((r.u32()?, r.u32()?)))?,
            },
            KIND_LIST => Request::List(get_list_params(&mut r)?),
            KIND_COUNT => Request::Count(get_list_params(&mut r)?),
            KIND_PREDICT => Request::ModelPredict {
                graph: r.string()?,
                method: r.string()?,
                family: r.string()?,
            },
            KIND_EXPLAIN_PLAN => Request::ExplainPlan { graph: r.string()? },
            KIND_ADD_EDGES => Request::AddEdges {
                graph: r.string()?,
                edges: r.array(8, |r| Ok((r.u32()?, r.u32()?)))?,
            },
            KIND_REMOVE_EDGES => Request::RemoveEdges {
                graph: r.string()?,
                edges: r.array(8, |r| Ok((r.u32()?, r.u32()?)))?,
            },
            KIND_LIST_NEW => Request::ListNewTriangles(get_delta_params(&mut r)?),
            KIND_STATS => Request::Stats,
            KIND_SHUTDOWN => Request::Shutdown,
            other => return Err(WireError::UnknownKind(other)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// The frame kind byte.
    pub fn kind(&self) -> u8 {
        match self {
            Response::Registered { .. } => KIND_REGISTERED,
            Response::ListResult(_) => KIND_LIST_RESULT,
            Response::CountResult(_) => KIND_COUNT_RESULT,
            Response::Predicted { .. } => KIND_PREDICTED,
            Response::PlanResult(_) => KIND_PLAN_RESULT,
            Response::StatsResult(_) => KIND_STATS_RESULT,
            Response::EditResult(_) => KIND_EDIT_RESULT,
            Response::NewTrianglesResult(_) => KIND_LIST_NEW_RESULT,
            Response::ShutdownAck => KIND_SHUTDOWN_ACK,
            Response::Error(_) => KIND_ERROR,
        }
    }

    /// Encodes the payload (header excluded).
    pub fn payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Response::Registered { n, m } => {
                w.u32(*n);
                w.u64(*m);
            }
            Response::ListResult(res) | Response::CountResult(res) => put_run_result(&mut w, res),
            Response::Predicted {
                per_node,
                total_ops,
                n,
            } => {
                w.f64(*per_node);
                w.f64(*total_ops);
                w.u64(*n);
            }
            Response::PlanResult(info) => {
                w.string(&info.ordering);
                w.string(&info.method);
                w.string(&info.policy);
                w.bool(info.compressed);
                w.f64(info.predicted_ops);
                w.f64(info.predicted_seconds);
                w.f64(info.default_ops);
                w.f64(info.default_seconds);
                w.u64(info.evaluations);
                w.bool(info.sampled);
            }
            Response::StatsResult(fields) => {
                w.array(fields, |w, (name, value)| {
                    w.string(name);
                    w.u64(*value);
                });
            }
            Response::EditResult(info) => {
                w.u64(info.epoch);
                w.u64(info.applied);
                w.u64(info.m);
                w.u64(info.delta_edges);
                w.f64(info.delta_ratio);
                w.bool(info.compacting);
            }
            Response::NewTrianglesResult(res) => {
                w.u64(res.from_epoch);
                w.u64(res.to_epoch);
                w.u64(res.new_edges);
                w.u64(res.removed_edges);
                put_run_result(&mut w, &res.result);
            }
            Response::ShutdownAck => {}
            Response::Error(e) => {
                w.u8(e.code.to_byte());
                w.string(&e.message);
            }
        }
        w.into_bytes()
    }

    /// Decodes a response from its kind byte and payload.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(payload);
        let resp = match kind {
            KIND_REGISTERED => Response::Registered {
                n: r.u32()?,
                m: r.u64()?,
            },
            KIND_LIST_RESULT => Response::ListResult(get_run_result(&mut r)?),
            KIND_COUNT_RESULT => Response::CountResult(get_run_result(&mut r)?),
            KIND_PREDICTED => Response::Predicted {
                per_node: r.f64()?,
                total_ops: r.f64()?,
                n: r.u64()?,
            },
            KIND_PLAN_RESULT => Response::PlanResult(PlanInfo {
                ordering: r.string()?,
                method: r.string()?,
                policy: r.string()?,
                compressed: r.bool()?,
                predicted_ops: r.f64()?,
                predicted_seconds: r.f64()?,
                default_ops: r.f64()?,
                default_seconds: r.f64()?,
                evaluations: r.u64()?,
                sampled: r.bool()?,
            }),
            KIND_STATS_RESULT => {
                Response::StatsResult(r.array(12, |r| Ok((r.string()?, r.u64()?)))?)
            }
            KIND_EDIT_RESULT => Response::EditResult(EditInfo {
                epoch: r.u64()?,
                applied: r.u64()?,
                m: r.u64()?,
                delta_edges: r.u64()?,
                delta_ratio: r.f64()?,
                compacting: r.bool()?,
            }),
            KIND_LIST_NEW_RESULT => Response::NewTrianglesResult(DeltaRunResult {
                from_epoch: r.u64()?,
                to_epoch: r.u64()?,
                new_edges: r.u64()?,
                removed_edges: r.u64()?,
                result: get_run_result(&mut r)?,
            }),
            KIND_SHUTDOWN_ACK => Response::ShutdownAck,
            KIND_ERROR => Response::Error(ErrorFrame {
                code: ErrorCode::from_byte(r.u8()?)?,
                message: r.string()?,
            }),
            other => return Err(WireError::UnknownKind(other)),
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Wraps a kind + payload into a full frame (`len`, version, kind, body).
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let len = 2 + payload.len() as u32;
    let mut out = Vec::with_capacity(4 + len as usize);
    out.extend_from_slice(&len.to_le_bytes());
    out.push(PROTOCOL_VERSION);
    out.push(kind);
    out.extend_from_slice(payload);
    out
}

/// Scans an accumulation buffer for one complete frame without consuming
/// it: `Ok(None)` means more bytes are needed (a short header — even a
/// 3-byte one — is *never* an error, because more of it may still be in
/// flight); `Ok(Some((kind, total)))` means `buf[..total]` holds a whole
/// frame of that kind; `Err` means the bytes already present violate the
/// framing and the connection cannot resync.
///
/// Both the blocking connection loop and the event-loop state machine
/// parse through this one function, so the two servers reject exactly the
/// same byte streams with exactly the same typed [`WireError`]s — and
/// neither has a panicking path on a short read (the `try_into().unwrap()`
/// this replaced could not panic either, but only by virtue of a length
/// check several lines away; the bounds-checked [`Reader`] makes the
/// safety local).
pub fn scan_frame(buf: &[u8]) -> Result<Option<(u8, usize)>, WireError> {
    let mut r = Reader::new(buf);
    let len = match r.u32() {
        Ok(len) => len,
        Err(WireError::UnexpectedEof { .. }) => return Ok(None),
        Err(e) => return Err(e),
    };
    if len < 2 {
        return Err(WireError::Invalid("frame length below header size"));
    }
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversized {
            declared: len as u64,
            limit: MAX_FRAME_BYTES as u64,
        });
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let version = buf[4];
    if version != PROTOCOL_VERSION {
        return Err(WireError::BadVersion(version));
    }
    Ok(Some((buf[5], total)))
}

/// Splits a standalone byte buffer into `(kind, payload)`, validating the
/// header exactly as the streaming reader does. Used by the fuzz suite to
/// drive the decoder without a socket.
pub fn decode_frame(buf: &[u8]) -> Result<(u8, &[u8]), WireError> {
    let mut r = Reader::new(buf);
    let len = r.u32()?;
    if len < 2 {
        return Err(WireError::Invalid("frame length below header size"));
    }
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversized {
            declared: len as u64,
            limit: MAX_FRAME_BYTES as u64,
        });
    }
    let version = r.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = r.u8()?;
    let body = r.bytes(len as usize - 2)?;
    r.finish()?;
    Ok((kind, body))
}

/// A framed-stream failure: transport or protocol.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (including EOF mid-frame).
    Io(std::io::Error),
    /// The bytes violated the protocol.
    Wire(WireError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport: {e}"),
            FrameError::Wire(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

/// Reads one frame from a stream: header first, then exactly the declared
/// body. The length is validated against [`MAX_FRAME_BYTES`] *before* the
/// body buffer is allocated.
pub fn read_frame(stream: &mut impl Read) -> Result<(u8, Vec<u8>), FrameError> {
    let mut head = [0u8; 6];
    stream.read_exact(&mut head)?;
    // Parse the fixed header through the bounds-checked Reader rather than
    // indexing + `try_into().unwrap()`: the unwrap was unreachable (the
    // array is 6 bytes by construction) but the Reader makes that a typed
    // guarantee instead of an invariant the next edit could silently break.
    let mut r = Reader::new(&head);
    let len = r.u32()?;
    if len < 2 {
        return Err(WireError::Invalid("frame length below header size").into());
    }
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversized {
            declared: len as u64,
            limit: MAX_FRAME_BYTES as u64,
        }
        .into());
    }
    let version = r.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(WireError::BadVersion(version).into());
    }
    let kind = r.u8()?;
    let mut body = vec![0u8; len as usize - 2];
    stream.read_exact(&mut body)?;
    Ok((kind, body))
}

/// Writes one frame to a stream.
pub fn write_frame(stream: &mut impl Write, kind: u8, payload: &[u8]) -> std::io::Result<()> {
    stream.write_all(&encode_frame(kind, payload))?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_frame_rejects_bad_headers_with_typed_errors() {
        // Short header: transport error (EOF), never a panic.
        let mut short: &[u8] = &[3, 0, 0];
        assert!(matches!(read_frame(&mut short), Err(FrameError::Io(_))));

        // Wrong protocol version.
        let mut frame = encode_frame(KIND_STATS, &[]);
        frame[4] ^= 0xFF;
        let mut cursor: &[u8] = &frame;
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Wire(WireError::BadVersion(_)))
        ));

        // Declared length below the 2-byte header minimum.
        let mut tiny = encode_frame(KIND_STATS, &[]);
        tiny[0] = 1;
        let mut cursor: &[u8] = &tiny;
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Wire(WireError::Invalid(_)))
        ));

        // Declared length beyond the frame cap: rejected before the body
        // buffer is allocated.
        let mut huge = encode_frame(KIND_STATS, &[]);
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor: &[u8] = &huge;
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Wire(WireError::Oversized { .. }))
        ));

        // Body shorter than declared: transport error.
        let mut truncated = encode_frame(KIND_STATS, &[1, 2, 3, 4]);
        truncated.truncate(truncated.len() - 2);
        let mut cursor: &[u8] = &truncated;
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Io(_))));

        // And a well-formed frame still parses.
        let good = encode_frame(KIND_STATS, &[]);
        let mut cursor: &[u8] = &good;
        let (kind, body) = read_frame(&mut cursor).unwrap();
        assert_eq!(kind, KIND_STATS);
        assert!(body.is_empty());
    }

    fn round_trip_request(req: &Request) {
        let frame = encode_frame(req.kind(), &req.payload());
        let (kind, body) = decode_frame(&frame).unwrap();
        assert_eq!(&Request::decode(kind, body).unwrap(), req);
    }

    fn round_trip_response(resp: &Response) {
        let frame = encode_frame(resp.kind(), &resp.payload());
        let (kind, body) = decode_frame(&frame).unwrap();
        assert_eq!(&Response::decode(kind, body).unwrap(), resp);
    }

    #[test]
    fn every_frame_type_round_trips() {
        round_trip_request(&Request::RegisterGraph {
            name: "k4".into(),
            n: 4,
            edges: vec![(0, 1), (2, 3)],
        });
        round_trip_request(&Request::List(ListParams::new("g", "T1", "desc", "paper")));
        round_trip_request(&Request::Count(ListParams {
            resume: "trilist-resume v1 E4 n=10 0:0-10".into(),
            ..ListParams::new("g", "E4", "crr", "adaptive")
        }));
        round_trip_request(&Request::ModelPredict {
            graph: "g".into(),
            method: "T2".into(),
            family: "rr".into(),
        });
        round_trip_request(&Request::ExplainPlan { graph: "g".into() });
        round_trip_request(&Request::AddEdges {
            graph: "g".into(),
            edges: vec![(0, 7), (3, 4)],
        });
        round_trip_request(&Request::RemoveEdges {
            graph: "g".into(),
            edges: vec![(1, 2)],
        });
        round_trip_request(&Request::ListNewTriangles(DeltaParams::new(
            "g",
            0,
            DeltaParams::LATEST,
        )));
        round_trip_request(&Request::ListNewTriangles(DeltaParams {
            family: "rr".into(),
            policy: "bitset".into(),
            threads: 3,
            deadline_ms: 12,
            memory_bytes: 1 << 20,
            resume: "trilist-delta-resume v1 n=10 edges=4 1:2-4".into(),
            ..DeltaParams::new("g", 2, 5)
        }));
        round_trip_request(&Request::Stats);
        round_trip_request(&Request::Shutdown);
        round_trip_response(&Response::Registered { n: 10, m: 45 });
        round_trip_response(&Response::ListResult(RunResult {
            complete: false,
            stop_reason: "deadline exceeded".into(),
            cache_hit: true,
            cost: CostReport {
                triangles: 3,
                lookups: 17,
                overflowed: true,
                ..CostReport::default()
            },
            resume: "trilist-resume v1 T1 n=10 1:5-10".into(),
            chunks: vec![(0, 1), (2, 1)],
            triangles: vec![(0, 1, 2), (4, 5, 9)],
        }));
        round_trip_response(&Response::CountResult(RunResult {
            complete: true,
            stop_reason: String::new(),
            cache_hit: false,
            cost: CostReport::default(),
            resume: String::new(),
            chunks: vec![],
            triangles: vec![],
        }));
        round_trip_response(&Response::Predicted {
            per_node: 3.25,
            total_ops: -0.0,
            n: 7,
        });
        round_trip_response(&Response::PlanResult(PlanInfo {
            ordering: "refined".into(),
            method: "E4".into(),
            policy: "bitset".into(),
            compressed: true,
            predicted_ops: 1234.5,
            predicted_seconds: 0.125,
            default_ops: 2048.0,
            default_seconds: -0.0,
            evaluations: 96,
            sampled: true,
        }));
        round_trip_response(&Response::StatsResult(vec![
            ("cache_hits".into(), 3),
            ("gauge_bytes".into(), u64::MAX),
        ]));
        round_trip_response(&Response::EditResult(EditInfo {
            epoch: 3,
            applied: 2,
            m: 41,
            delta_edges: 6,
            delta_ratio: 0.15,
            compacting: true,
        }));
        round_trip_response(&Response::NewTrianglesResult(DeltaRunResult {
            from_epoch: 1,
            to_epoch: 3,
            new_edges: 2,
            removed_edges: 1,
            result: RunResult {
                complete: false,
                stop_reason: "deadline exceeded".into(),
                cache_hit: true,
                cost: CostReport {
                    triangles: 1,
                    lookups: 9,
                    ..CostReport::default()
                },
                resume: "trilist-delta-resume v1 n=10 edges=2 1:1-2".into(),
                chunks: vec![(0, 1)],
                triangles: vec![(2, 5, 8)],
            },
        }));
        round_trip_response(&Response::ShutdownAck);
        round_trip_response(&Response::Error(ErrorFrame::new(
            ErrorCode::RejectedBusy,
            "queue full",
        )));
    }

    #[test]
    fn frame_header_violations_are_typed() {
        assert!(matches!(
            decode_frame(&[1, 0, 0]),
            Err(WireError::UnexpectedEof { .. })
        ));
        // len < 2
        assert!(matches!(
            decode_frame(&[1, 0, 0, 0, 1, 5]),
            Err(WireError::Invalid(_))
        ));
        // oversized len, rejected before body read
        let huge = (MAX_FRAME_BYTES + 1).to_le_bytes();
        assert!(matches!(
            decode_frame(&[huge[0], huge[1], huge[2], huge[3], 1, 2]),
            Err(WireError::Oversized { .. })
        ));
        // wrong version
        assert!(matches!(
            decode_frame(&[2, 0, 0, 0, 9, 5]),
            Err(WireError::BadVersion(9))
        ));
        // unknown kinds
        assert!(matches!(
            Request::decode(0x7E, &[]),
            Err(WireError::UnknownKind(0x7E))
        ));
        assert!(matches!(
            Response::decode(0x02, &[]),
            Err(WireError::UnknownKind(0x02))
        ));
        // trailing bytes after a complete message
        assert!(matches!(
            Request::decode(KIND_STATS, &[0]),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn scan_frame_short_headers_want_more_bytes() {
        // The regression this guards: a partial length prefix (0–3 bytes)
        // must read as "incomplete", not panic or error.
        assert_eq!(scan_frame(&[]), Ok(None));
        assert_eq!(scan_frame(&[7]), Ok(None));
        assert_eq!(scan_frame(&[7, 0]), Ok(None));
        assert_eq!(scan_frame(&[7, 0, 0]), Ok(None));
        // Full length prefix but incomplete body: still incomplete.
        assert_eq!(scan_frame(&[7, 0, 0, 0]), Ok(None));
        assert_eq!(scan_frame(&[7, 0, 0, 0, 1, 5, 0]), Ok(None));
    }

    #[test]
    fn scan_frame_finds_exactly_one_frame() {
        let frame = encode_frame(KIND_STATS, &[]);
        assert_eq!(scan_frame(&frame), Ok(Some((KIND_STATS, frame.len()))));
        // A second pipelined frame behind it does not confuse the scan.
        let mut two = frame.clone();
        two.extend_from_slice(&encode_frame(KIND_SHUTDOWN, &[]));
        assert_eq!(scan_frame(&two), Ok(Some((KIND_STATS, frame.len()))));
        // And scanning past the first finds the second.
        assert_eq!(
            scan_frame(&two[frame.len()..]),
            Ok(Some((KIND_SHUTDOWN, frame.len())))
        );
    }

    #[test]
    fn scan_frame_header_violations_are_typed() {
        // len < 2: unrecoverable framing error even with only the header.
        assert!(matches!(
            scan_frame(&[1, 0, 0, 0, 1, 5]),
            Err(WireError::Invalid(_))
        ));
        // Oversized length rejected from the 4-byte prefix alone, before
        // any body arrives (the cap is what bounds per-conn buffering).
        let huge = (MAX_FRAME_BYTES + 1).to_le_bytes();
        assert!(matches!(
            scan_frame(&huge),
            Err(WireError::Oversized { .. })
        ));
        // Version is only judged once the whole frame is present, so a
        // garbled version still reads as incomplete until then.
        assert_eq!(scan_frame(&[2, 0, 0, 0, 9]), Ok(None));
        assert!(matches!(
            scan_frame(&[2, 0, 0, 0, 9, 5]),
            Err(WireError::BadVersion(9))
        ));
    }

    #[test]
    fn piece_merge_reconstructs_sequential_order() {
        let base = RunResult {
            complete: false,
            stop_reason: "deadline exceeded".into(),
            cache_hit: false,
            cost: CostReport::default(),
            resume: String::new(),
            chunks: vec![],
            triangles: vec![],
        };
        // First response finished chunks 0 and 2, the resumed one 1 and 3.
        let first = RunResult {
            chunks: vec![(0, 2), (2, 1)],
            triangles: vec![(0, 1, 2), (0, 1, 3), (7, 8, 9)],
            ..base.clone()
        };
        let second = RunResult {
            complete: true,
            chunks: vec![(1, 1), (3, 1)],
            triangles: vec![(4, 5, 6), (10, 11, 12)],
            ..base.clone()
        };
        assert_eq!(
            merge_pieces(&[first.clone(), second.clone()]).unwrap(),
            vec![(0, 1, 2), (0, 1, 3), (4, 5, 6), (7, 8, 9), (10, 11, 12)]
        );
        // Inconsistent piece table → None, duplicate chunk → None.
        let broken = RunResult {
            chunks: vec![(0, 5)],
            ..first.clone()
        };
        assert!(broken.pieces().is_none());
        assert!(merge_pieces(&[broken]).is_none());
        assert!(merge_pieces(&[first.clone(), first]).is_none());
    }

    #[test]
    fn nan_round_trip_is_bit_exact() {
        let bits = 0x7FF8_0000_DEAD_BEEFu64;
        let resp = Response::Predicted {
            per_node: f64::from_bits(bits),
            total_ops: 0.0,
            n: 0,
        };
        let decoded = Response::decode(resp.kind(), &resp.payload()).unwrap();
        match decoded {
            Response::Predicted { per_node, .. } => assert_eq!(per_node.to_bits(), bits),
            other => panic!("wrong response {other:?}"),
        }
    }
}
