//! # trilist-serve
//!
//! A concurrent triangle-listing service over the repo's runtime: a
//! length-prefixed binary wire protocol ([`protocol`]), a registered-graph
//! store with an LRU cache of prepared listing artifacts ([`store`]), and
//! cost-model admission control ([`admission`]), glued together by a
//! multi-threaded TCP [`server`] and a blocking [`client`].
//!
//! The service exists to demonstrate — and test, differentially — that the
//! determinism guarantees of the listing runtime survive a process
//! boundary: a `List` request answered over the wire returns triangles and
//! a [`CostReport`](trilist_core::CostReport) byte-identical to an
//! in-process [`par_list`](trilist_core::par_list) call, including runs
//! interrupted by a deadline and continued by a follow-up request carrying
//! the [`ResumePoint`](trilist_core::ResumePoint) token.
//!
//! ```no_run
//! use trilist_serve::{Client, ListParams, ServeConfig, Server};
//!
//! let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! client.register_graph("k4", 4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
//! let run = client.list(ListParams::new("k4", "T1", "desc", "paper")).unwrap();
//! assert_eq!(run.cost.triangles, 4);
//! server.join();
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod chaos;
pub mod codec;
pub mod protocol;
pub mod server;
pub mod store;

mod client;
mod event_loop;

pub use admission::{Admission, AdmissionConfig, AdmissionStats, Permit, Rejection};
pub use chaos::{ChaosPlan, ChaosStats, ExecFault, IoFault, IoOp};
pub use client::{ChainResult, Client, ClientError, RetryPolicy};
pub use codec::{Reader, WireError, Writer};
pub use protocol::{
    decode_frame, encode_frame, merge_pieces, read_frame, scan_frame, write_frame, DeltaParams,
    DeltaRunResult, EditInfo, ErrorCode, ErrorFrame, FrameError, ListParams, PlanInfo, Request,
    Response, RunResult, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
pub use server::{
    accept_error_action, AcceptAction, DegradeConfig, ServeConfig, Server, ServerHandle,
};
pub use store::{
    autotune_plan, prepare_graph, prepare_graph_with, prepare_seed_at, prepare_seed_for,
    CompactReport, CompactorHandle, EditReceipt, EpochPin, GraphStore, PlanMode, PlanSummary,
    Prepared, StoreConfig, StoreError, StoreStats,
};
