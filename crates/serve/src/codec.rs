//! Serde-free byte codec for the wire protocol: little-endian primitives,
//! length-prefixed strings and arrays, and a bounds-checked reader that
//! never allocates more than the bytes actually present.
//!
//! The repo's convention (resume points, measured-vs-model JSON) is that
//! every serialized format is hand-rolled and property-tested; the wire
//! protocol follows it. Two rules make the decoder fuzz-safe:
//!
//! 1. **Every read is bounds-checked** against the remaining buffer; a
//!    short buffer yields [`WireError::UnexpectedEof`], never a panic.
//! 2. **Every declared length is validated before allocation**: a string
//!    or array length is compared against the bytes that could possibly
//!    back it (`remaining / element_size`), so a hostile 4 GiB length
//!    prefix on a 10-byte frame is rejected without reserving anything.

/// A decode failure. Every variant is a *typed* protocol error — the
/// decoder has no panicking paths (`tests/serve_props.rs` fuzzes this).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before a fixed-size field.
    UnexpectedEof {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// A declared length exceeds what the frame (or the protocol cap)
    /// could possibly back.
    Oversized {
        /// The declared length.
        declared: u64,
        /// The maximum the decoder would accept here.
        limit: u64,
    },
    /// The frame header carried an unsupported protocol version.
    BadVersion(u8),
    /// The frame kind byte is not a known request or response.
    UnknownKind(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Bytes remained after a complete message was decoded.
    TrailingBytes(usize),
    /// A field value was structurally invalid (e.g. a boolean that is
    /// neither 0 nor 1).
    Invalid(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected eof: needed {needed} bytes, had {remaining}")
            }
            WireError::Oversized { declared, limit } => {
                write!(f, "declared length {declared} exceeds limit {limit}")
            }
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind 0x{k:02x}"),
            WireError::BadUtf8 => f.write_str("string field is not valid utf-8"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::Invalid(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Bounds-checked cursor over a received payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    /// A `bool` encoded as exactly 0 or 1.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bool byte must be 0 or 1")),
        }
    }

    /// Little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// An `f64` carried as its raw IEEE-754 bits — bit-exact round-trip,
    /// NaN payloads included.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u32`-length-prefixed UTF-8 string. The declared length is
    /// validated against the remaining bytes before anything is copied.
    pub fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(WireError::Oversized {
                declared: len as u64,
                limit: self.remaining() as u64,
            });
        }
        std::str::from_utf8(self.bytes(len)?)
            .map(str::to_owned)
            .map_err(|_| WireError::BadUtf8)
    }

    /// A `u32`-count-prefixed array decoded by `item`, with the count
    /// validated against `remaining / min_item_bytes` before allocating.
    pub fn array<T>(
        &mut self,
        min_item_bytes: usize,
        item: impl Fn(&mut Reader<'a>) -> Result<T, WireError>,
    ) -> Result<Vec<T>, WireError> {
        let count = self.u32()? as usize;
        let fit = self.remaining() / min_item_bytes.max(1);
        if count > fit {
            return Err(WireError::Oversized {
                declared: count as u64,
                limit: fit as u64,
            });
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(item(self)?);
        }
        Ok(out)
    }

    /// Asserts the message consumed the whole payload.
    pub fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::TrailingBytes(n)),
        }
    }
}

/// Append-only encoder mirroring [`Reader`].
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// One byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// A `bool` as 0/1.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// An `f64` as raw IEEE-754 bits.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// A `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// A `u32`-count-prefixed array encoded by `item`.
    pub fn array<T>(&mut self, items: &[T], item: impl Fn(&mut Writer, &T)) {
        self.u32(items.len() as u32);
        for it in items {
            item(self, it);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.bool(true);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64(-0.0);
        w.string("héllo\n\"");
        w.array(&[(1u32, 2u32), (3, 4)], |w, &(a, b)| {
            w.u32(a);
            w.u32(b);
        });
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.string().unwrap(), "héllo\n\"");
        let pairs = r.array(8, |r| Ok((r.u32()?, r.u32()?))).unwrap();
        assert_eq!(pairs, vec![(1, 2), (3, 4)]);
        r.finish().unwrap();
    }

    #[test]
    fn hostile_lengths_rejected_before_allocation() {
        // 4 GiB string length on a 4-byte buffer
        let mut r = Reader::new(&[0xFF, 0xFF, 0xFF, 0xFF]);
        assert!(matches!(r.string(), Err(WireError::Oversized { .. })));
        // array count far beyond what the payload could back
        let mut w = Writer::new();
        w.u32(1_000_000);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.array(8, |r| r.u32()),
            Err(WireError::Oversized { .. })
        ));
        // short fixed field
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(
            r.u32(),
            Err(WireError::UnexpectedEof {
                needed: 4,
                remaining: 2
            })
        );
        // bad bool and trailing bytes
        let mut r = Reader::new(&[9, 0]);
        assert!(matches!(r.bool(), Err(WireError::Invalid(_))));
        assert!(matches!(r.finish(), Err(WireError::TrailingBytes(1))));
    }
}
