//! The nonblocking connection layer: one event-loop thread multiplexing
//! every connection through readiness notifications (epoll via the
//! vendored [`mio`] shim), with request execution decoupled onto a fixed
//! worker pool.
//!
//! # Shape
//!
//! ```text
//!            ┌────────────── event-loop thread ──────────────┐
//! accept ──▶ │ per-conn state machine:                       │
//!            │   read buffer → scan_frame → decode →         │
//!            │   classify ──▶ Inline response (Stats, gates) │──▶ write
//!            │            └─▶ Job {seq} ──▶ executor lanes   │  coalesced,
//!            │ completions (via Waker) ──▶ pending[seq] ─────│  seq order
//!            └───────────────────────────────────────────────┘
//!                 express lane (Register/Predict, 2 workers)
//!                 priced lane (List/Count, max_inflight + max_queue
//!                 workers — so `Admission::admit` inside a worker never
//!                 blocks longer than the blocking layer would, and the
//!                 `queued` counter still measures real queue waits)
//! ```
//!
//! # Invariants
//!
//! - **Frame-order responses.** Every parsed frame gets a sequence
//!   number; responses flush strictly in sequence order no matter how
//!   out-of-order execution completes. A slow `List` therefore never
//!   blocks the *execution* of pipelined `Stats`/`ModelPredict` behind
//!   it — only the flush order.
//! - **`RegisterGraph` is a per-connection barrier.** It waits for the
//!   connection's earlier jobs and holds back its later ones, so a
//!   pipelined `[Register g, List g]` behaves exactly as if issued
//!   sequentially.
//! - **Submit-time shedding.** The priced lane bounds its backlog at
//!   `max_inflight + max_queue`; beyond that, requests are rejected busy
//!   with the same wire message the blocking layer produces
//!   ([`crate::admission::Admission::shed_busy`]).
//! - **Backpressure, not unbounded buffering.** A connection stops being
//!   read (its `READABLE` interest is dropped) while it has
//!   [`PER_CONN_BACKLOG`] responses outstanding or
//!   [`OUT_HIGH_WATER`] unflushed bytes; level-triggered readiness
//!   resumes it losslessly.
//! - **Idle costs nothing.** With no draining in progress the loop
//!   blocks in the kernel with no timeout; completions and shutdown
//!   arrive through an eventfd [`Waker`] (`tests/serve_idle.rs`).

use crate::chaos::ChaosStream;
use crate::protocol::{encode_frame, scan_frame, ErrorCode, ErrorFrame, Request, Response};
use crate::server::{
    accept_error_action, classify, execute, execute_guarded, note_response, AcceptAction, Dispatch,
    Shared,
};
use mio::{Events, Interest, Poll, Registry, Token, Waker};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::TcpListener;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const LISTENER: Token = Token(0);
const WAKER: Token = Token(1);
/// Connection ids map to tokens offset past the two fixed tokens; ids
/// are never reused, so a stale event for a closed connection simply
/// misses the map.
const CONN_BASE: usize = 2;

/// Events drained per poll call (level-triggered: anything beyond the
/// batch is redelivered next call).
const EVENTS_CAP: usize = 1024;
/// Shared read scratch size; one allocation for the whole loop.
const READ_CHUNK: usize = 64 * 1024;
/// Reads per readiness event before yielding to other connections.
const MAX_READS_PER_EVENT: usize = 16;
/// Outstanding responses (queued + executing + unflushed) per connection
/// before its reads pause.
const PER_CONN_BACKLOG: usize = 128;
/// Unflushed response bytes per connection before its reads pause.
const OUT_HIGH_WATER: usize = 8 << 20;
/// Express-lane workers (Register/Predict): enough that one expensive
/// prepare does not serialize the control plane.
const EXPRESS_WORKERS: usize = 2;
/// Poll cadence while draining (idle polls otherwise block forever).
const DRAIN_POLL: Duration = Duration::from_millis(50);
/// Grace a draining connection gets to finish a half-written frame —
/// the same grace the blocking layer gives.
const DRAIN_GRACE: Duration = Duration::from_secs(1);

/// Starts the event loop on a background thread. The returned [`Waker`]
/// interrupts its poll — [`crate::server::ServerHandle::shutdown`] sets
/// the drain flag and wakes.
pub(crate) fn spawn(
    listener: TcpListener,
    shared: Arc<Shared>,
) -> std::io::Result<(JoinHandle<()>, Arc<Waker>)> {
    let poll = Poll::new()?;
    let waker = Arc::new(Waker::new(poll.registry(), WAKER)?);
    let loop_waker = Arc::clone(&waker);
    let thread = std::thread::Builder::new()
        .name("serve-loop".into())
        .spawn(move || run(poll, listener, shared, loop_waker))?;
    Ok((thread, waker))
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// Executor: two lanes of workers, completions routed back via the waker.
// ---------------------------------------------------------------------

struct Job {
    conn: u64,
    seq: u64,
    barrier: bool,
    priced: bool,
    req: Request,
}

struct Completion {
    conn: u64,
    seq: u64,
    barrier: bool,
    resp: Response,
}

#[derive(Default)]
struct LaneState {
    jobs: VecDeque<Job>,
    active: usize,
    stop: bool,
}

#[derive(Default)]
struct Lane {
    state: Mutex<LaneState>,
    ready: Condvar,
}

struct DoneQueue {
    completed: Mutex<Vec<Completion>>,
    waker: Arc<Waker>,
}

impl DoneQueue {
    fn push(&self, c: Completion) {
        let first = {
            let mut q = lock(&self.completed);
            q.push(c);
            q.len() == 1
        };
        // One wake per drain cycle: later pushes land in the same batch
        // the loop is already waking for.
        if first {
            let _ = self.waker.wake();
        }
    }

    fn take(&self) -> Vec<Completion> {
        std::mem::take(&mut *lock(&self.completed))
    }
}

struct Executor {
    express: Arc<Lane>,
    priced: Arc<Lane>,
    /// Priced backlog bound *and* priced worker count: with exactly
    /// `max_inflight + max_queue` workers, at most `max_inflight` are
    /// admitted and at most `max_queue` wait inside `admit()` —
    /// reproducing the blocking layer's admission dynamics (including
    /// the `queued` counter) with a fixed pool.
    priced_cap: usize,
    done: Arc<DoneQueue>,
    workers: Vec<JoinHandle<()>>,
}

impl Executor {
    fn start(shared: Arc<Shared>, waker: Arc<Waker>) -> Executor {
        let a = shared.cfg.admission;
        let priced_cap = a.max_inflight.max(1) + a.max_queue;
        let done = Arc::new(DoneQueue {
            completed: Mutex::new(Vec::new()),
            waker,
        });
        let express: Arc<Lane> = Arc::default();
        let priced: Arc<Lane> = Arc::default();
        let mut workers = Vec::with_capacity(EXPRESS_WORKERS + priced_cap);
        for lane in std::iter::repeat_n(&express, EXPRESS_WORKERS)
            .chain(std::iter::repeat_n(&priced, priced_cap))
        {
            let lane = Arc::clone(lane);
            let shared = Arc::clone(&shared);
            let done = Arc::clone(&done);
            workers.push(std::thread::spawn(move || worker(&lane, &shared, &done)));
        }
        Executor {
            express,
            priced,
            priced_cap,
            done,
            workers,
        }
    }

    fn submit_express(&self, job: Job) {
        lock(&self.express.state).jobs.push_back(job);
        self.express.ready.notify_one();
    }

    /// Queues a priced job, or rejects it when the lane already holds
    /// `max_inflight + max_queue` requests — the executor-side mirror of
    /// the admission gate's busy rejection. The rejected `Job` travels
    /// back by value so the caller can answer it without a clone; this
    /// is the shed path, not the hot path, so the large `Err` is fine.
    #[allow(clippy::result_large_err)]
    fn submit_priced(&self, job: Job) -> Result<(), Job> {
        let mut st = lock(&self.priced.state);
        if st.active + st.jobs.len() >= self.priced_cap {
            return Err(job);
        }
        st.jobs.push_back(job);
        drop(st);
        self.priced.ready.notify_one();
        Ok(())
    }

    fn shutdown(self) {
        for lane in [&self.express, &self.priced] {
            lock(&lane.state).stop = true;
            lane.ready.notify_all();
        }
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker(lane: &Lane, shared: &Shared, done: &DoneQueue) {
    loop {
        let job = {
            let mut st = lock(&lane.state);
            loop {
                if let Some(job) = st.jobs.pop_front() {
                    st.active += 1;
                    break job;
                }
                if st.stop {
                    return;
                }
                st = lane.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Job {
            conn,
            seq,
            barrier,
            req,
            ..
        } = job;
        // A panicking request — injected by the chaos plan or real — must
        // not deplete the pool: execute_guarded's catch_unwind answers a
        // typed Internal error and the worker keeps serving.
        let resp = execute_guarded(shared, conn, seq, req);
        lock(&lane.state).active -= 1;
        done.push(Completion {
            conn,
            seq,
            barrier,
            resp,
        });
    }
}

// ---------------------------------------------------------------------
// Per-connection state machine.
// ---------------------------------------------------------------------

struct Conn {
    id: u64,
    token: Token,
    stream: ChaosStream,
    /// Inbound bytes not yet forming a complete frame.
    acc: Vec<u8>,
    /// Coalesced outbound bytes: responses append here in flush order and
    /// one `write` drains as much as the socket takes.
    out: Vec<u8>,
    /// Written prefix of `out`.
    out_at: usize,
    /// Encoded responses waiting for their turn in sequence order.
    pending: BTreeMap<u64, Vec<u8>>,
    /// Sequence number the next parsed frame gets.
    next_seq: u64,
    /// Sequence number whose response flushes next.
    next_flush: u64,
    /// Parsed jobs not yet handed to the executor (held back by a
    /// barrier, or parsed behind one).
    jobs: VecDeque<Job>,
    /// Jobs handed to the executor whose completion has not routed back.
    inflight: usize,
    /// A `RegisterGraph` is executing; nothing later may start.
    barrier_inflight: bool,
    /// Peer closed its write side (or the socket errored on read).
    read_closed: bool,
    /// Unrecoverable framing violation: the error frame is queued, no
    /// further bytes are parsed, and the connection closes once flushed.
    fatal: bool,
    /// Interest currently registered with the poll, `(read, write)`;
    /// `(false, false)` = deregistered.
    registered: (bool, bool),
}

impl Conn {
    fn new(id: u64, token: Token, stream: ChaosStream) -> Conn {
        Conn {
            id,
            token,
            stream,
            acc: Vec::new(),
            out: Vec::new(),
            out_at: 0,
            pending: BTreeMap::new(),
            next_seq: 0,
            next_flush: 0,
            jobs: VecDeque::new(),
            inflight: 0,
            barrier_inflight: false,
            read_closed: false,
            fatal: false,
            registered: (false, false),
        }
    }

    /// Moves every response whose turn has come from `pending` into the
    /// coalesced write buffer.
    fn promote(&mut self) {
        while let Some(frame) = self.pending.remove(&self.next_flush) {
            self.out.extend_from_slice(&frame);
            self.next_flush += 1;
        }
    }

    /// Writes as much of `out` as the socket takes. `Err` means the
    /// connection is dead.
    fn try_write(&mut self) -> std::io::Result<()> {
        while self.out_at < self.out.len() {
            match self.stream.write(&self.out[self.out_at..]) {
                Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_at += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.out_at == self.out.len() {
            self.out.clear();
            self.out_at = 0;
        }
        Ok(())
    }

    fn backlog(&self) -> usize {
        self.pending.len() + self.jobs.len() + self.inflight
    }

    fn flushed(&self) -> bool {
        self.out_at >= self.out.len()
    }

    /// Nothing queued, executing, or unflushed.
    fn quiesced(&self) -> bool {
        self.inflight == 0 && self.jobs.is_empty() && self.pending.is_empty() && self.flushed()
    }

    /// Should this connection close now?
    fn finished(&self) -> bool {
        (self.read_closed || self.fatal) && self.quiesced()
    }

    /// Reconciles the registered interest with what the state machine
    /// wants: reads pause under backpressure, writes arm only while
    /// bytes wait, and a connection wanting neither deregisters (its
    /// next completion re-arms it).
    fn update_interest(&mut self, registry: &Registry) {
        let want_read = !self.read_closed
            && !self.fatal
            && self.backlog() < PER_CONN_BACKLOG
            && self.out.len() - self.out_at < OUT_HIGH_WATER;
        let want_write = !self.flushed();
        let desired = (want_read, want_write);
        if desired == self.registered {
            return;
        }
        let fd = self.stream.as_raw_fd();
        match desired {
            (false, false) => {
                let _ = registry.deregister(fd);
            }
            (r, w) => {
                let interest = match (r, w) {
                    (true, true) => Interest::READABLE | Interest::WRITABLE,
                    (true, false) => Interest::READABLE,
                    _ => Interest::WRITABLE,
                };
                let result = if self.registered == (false, false) {
                    registry.register(fd, self.token, interest)
                } else {
                    registry.reregister(fd, self.token, interest)
                };
                if result.is_err() {
                    // Treat a failed (re)registration as a dead socket.
                    self.read_closed = true;
                }
            }
        }
        self.registered = desired;
    }
}

/// Encodes and queues one response under its sequence number, feeding
/// the error counter exactly as the blocking layer's `send` does.
/// Whether answering this request on the loop thread is bounded work: a
/// `ModelPredict` that would hit the prepared cache, answer a cheap
/// typed error (unknown family or graph), or nothing at all. A predict
/// that would *build* a cache entry is not bounded — it goes to the
/// express lane like everything else.
fn predict_is_bounded(shared: &Shared, req: &Request) -> bool {
    let Request::ModelPredict { graph, family, .. } = req else {
        return false;
    };
    match trilist_order::OrderingKind::from_name(family) {
        None => true, // answers BadRequest immediately
        Some(k) => shared.store.graph(graph).is_none() || shared.store.has_prepared(graph, k),
    }
}

fn queue_response(conn: &mut Conn, shared: &Shared, seq: u64, resp: &Response) {
    note_response(shared, resp);
    conn.pending
        .insert(seq, encode_frame(resp.kind(), &resp.payload()));
    conn.promote();
}

/// Hands the connection's front jobs to the executor until a barrier (or
/// an empty queue) stops the pump.
fn pump_jobs(conn: &mut Conn, shared: &Shared, executor: &Executor) {
    while !conn.barrier_inflight {
        let Some(front) = conn.jobs.front() else {
            break;
        };
        if front.barrier && conn.inflight > 0 {
            break; // barrier waits for everything already running
        }
        let Some(job) = conn.jobs.pop_front() else {
            break; // unreachable: front() above was Some
        };
        let (seq, barrier) = (job.seq, job.barrier);
        if job.priced {
            match executor.submit_priced(job) {
                Ok(()) => conn.inflight += 1,
                Err(_job) => {
                    let rejection = shared.admission.shed_busy();
                    queue_response(
                        conn,
                        shared,
                        seq,
                        &Response::Error(ErrorFrame::new(
                            ErrorCode::RejectedBusy,
                            rejection.to_string(),
                        )),
                    );
                    continue;
                }
            }
        } else {
            executor.submit_express(job);
            conn.inflight += 1;
        }
        if barrier {
            conn.barrier_inflight = true;
            break; // nothing later starts until the barrier completes
        }
    }
}

/// Parses every complete frame in the accumulation buffer and dispatches
/// it: inline answers queue immediately, execution jobs enter the
/// per-connection queue (frame order) and pump into the executor.
fn process_frames(conn: &mut Conn, shared: &Shared, executor: &Executor) {
    while !conn.fatal {
        match scan_frame(&conn.acc) {
            Ok(None) => break,
            Ok(Some((kind, total))) => {
                let seq = conn.next_seq;
                conn.next_seq += 1;
                match Request::decode(kind, &conn.acc[6..total]) {
                    Ok(req) => match classify(shared, req) {
                        Dispatch::Inline(resp) => queue_response(conn, shared, seq, &resp),
                        Dispatch::Express(req) => {
                            // Fast path: a ModelPredict with nothing queued
                            // ahead on this connection and no prepared-cache
                            // build to trigger is bounded work — answer it on
                            // the loop thread and skip the executor round
                            // trip. (Anything queued ahead would break frame
                            // order; a cold cache would stall the loop.)
                            if conn.inflight == 0
                                && conn.jobs.is_empty()
                                && predict_is_bounded(shared, &req)
                            {
                                let resp = execute(shared, req);
                                queue_response(conn, shared, seq, &resp);
                            } else {
                                conn.jobs.push_back(Job {
                                    conn: conn.id,
                                    seq,
                                    barrier: matches!(req, Request::RegisterGraph { .. }),
                                    priced: false,
                                    req,
                                });
                                pump_jobs(conn, shared, executor);
                            }
                        }
                        Dispatch::Priced(req) => {
                            conn.jobs.push_back(Job {
                                conn: conn.id,
                                seq,
                                barrier: false,
                                priced: true,
                                req,
                            });
                            pump_jobs(conn, shared, executor);
                        }
                    },
                    Err(e) => {
                        // A malformed body poisons only its own frame.
                        queue_response(
                            conn,
                            shared,
                            seq,
                            &Response::Error(ErrorFrame::new(ErrorCode::Protocol, e.to_string())),
                        );
                    }
                }
                conn.acc.drain(..total);
            }
            Err(e) => {
                // Framing is broken: answer once, then close after flush —
                // exactly the blocking layer's report-once-and-close.
                let seq = conn.next_seq;
                conn.next_seq += 1;
                queue_response(
                    conn,
                    shared,
                    seq,
                    &Response::Error(ErrorFrame::new(ErrorCode::Protocol, e.to_string())),
                );
                conn.fatal = true;
                conn.acc.clear();
            }
        }
    }
}

// ---------------------------------------------------------------------
// The loop.
// ---------------------------------------------------------------------

fn accept_all(
    listener: &TcpListener,
    registry: &Registry,
    shared: &Shared,
    conns: &mut HashMap<u64, Conn>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                let stream = ChaosStream::new(stream, shared.chaos.clone(), id);
                let mut conn = Conn::new(id, Token(CONN_BASE + id as usize), stream);
                conn.update_interest(registry);
                conns.insert(id, conn);
            }
            Err(e) => match accept_error_action(&e) {
                AcceptAction::WaitReadable => break,
                AcceptAction::Retry => {}
                AcceptAction::Backoff(pause) => {
                    // EMFILE and friends: count it, pause briefly, and
                    // break out — the listener stays registered, so a
                    // level-triggered poll retries once fds free up
                    // instead of the loop dying or spinning hot.
                    shared
                        .counters
                        .accept_errors
                        .fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(pause);
                    break;
                }
            },
        }
    }
}

fn close_conn(registry: &Registry, conns: &mut HashMap<u64, Conn>, id: u64) {
    if let Some(conn) = conns.remove(&id) {
        if conn.registered != (false, false) {
            let _ = registry.deregister(conn.stream.as_raw_fd());
        }
    }
}

/// Handles one readiness event for one connection. Returns `false` when
/// the connection died and must be closed.
fn conn_event(
    conn: &mut Conn,
    shared: &Shared,
    executor: &Executor,
    scratch: &mut [u8],
    readable: bool,
    writable: bool,
) -> bool {
    if writable && conn.try_write().is_err() {
        return false;
    }
    if readable && !conn.read_closed && !conn.fatal {
        for _ in 0..MAX_READS_PER_EVENT {
            match conn.stream.read(scratch) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.acc.extend_from_slice(&scratch[..n]);
                    if n < scratch.len() {
                        break; // drained; level-trigger redelivers if not
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.read_closed = true;
                    break;
                }
            }
        }
        process_frames(conn, shared, executor);
        if conn.try_write().is_err() {
            return false;
        }
    }
    true
}

fn run(mut poll: Poll, listener: TcpListener, shared: Arc<Shared>, waker: Arc<Waker>) {
    let registry = poll.registry().clone();
    if registry
        .register(listener.as_raw_fd(), LISTENER, Interest::READABLE)
        .is_err()
    {
        return;
    }
    let executor = Executor::start(Arc::clone(&shared), Arc::clone(&waker));
    let mut events = Events::with_capacity(EVENTS_CAP);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut listener_open = true;
    let mut drain_since: Option<Instant> = None;

    loop {
        if drain_since.is_none() && shared.shutting.load(Ordering::SeqCst) {
            drain_since = Some(Instant::now());
            if listener_open {
                let _ = registry.deregister(listener.as_raw_fd());
                listener_open = false;
            }
        }
        if let Some(since) = drain_since {
            let expired = since.elapsed() >= DRAIN_GRACE;
            let closable: Vec<u64> = conns
                .values()
                .filter(|c| {
                    c.quiesced() && (c.acc.is_empty() || expired || c.read_closed || c.fatal)
                })
                .map(|c| c.id)
                .collect();
            for id in closable {
                close_conn(&registry, &mut conns, id);
            }
            if conns.is_empty() {
                break;
            }
        }

        let timeout = drain_since.map(|_| DRAIN_POLL);
        if poll.poll(&mut events, timeout).is_err() {
            break;
        }

        let mut accept_ready = false;
        let mut ready: Vec<(u64, bool, bool)> = Vec::with_capacity(events.len());
        for ev in events.iter() {
            match ev.token() {
                LISTENER => accept_ready = true,
                WAKER => waker.drain(),
                Token(t) => {
                    ready.push(((t - CONN_BASE) as u64, ev.is_readable(), ev.is_writable()))
                }
            }
        }

        if accept_ready && listener_open {
            accept_all(&listener, &registry, &shared, &mut conns);
        }

        for (id, readable, writable) in ready {
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            if !conn_event(conn, &shared, &executor, &mut scratch, readable, writable)
                || conn.finished()
            {
                close_conn(&registry, &mut conns, id);
            } else {
                conn.update_interest(&registry);
            }
        }

        for c in executor.done.take() {
            // The connection may have died while its request executed;
            // the response is then simply dropped.
            let Some(conn) = conns.get_mut(&c.conn) else {
                continue;
            };
            conn.inflight -= 1;
            if c.barrier {
                conn.barrier_inflight = false;
            }
            queue_response(conn, &shared, c.seq, &c.resp);
            pump_jobs(conn, &shared, &executor);
            let dead = conn.try_write().is_err();
            if dead || conn.finished() {
                close_conn(&registry, &mut conns, c.conn);
            } else {
                conn.update_interest(&registry);
            }
        }
    }

    executor.shutdown();
}
