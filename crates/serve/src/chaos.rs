//! Deterministic chaos injection for the serve stack.
//!
//! [`ChaosPlan`] extends the PR 3 fault-injection philosophy
//! ([`trilist_core::FaultPlan`]) up through the connection layers: every
//! injection is a pure function of `(seed, conn_id, event_index)` — the
//! same splitmix64 chain, via [`trilist_core::fault_roll`] — so a chaos
//! run replays exactly from its seed, independent of thread interleaving
//! and poll batching. The plan drives two injection surfaces:
//!
//! * **I/O faults**, applied by [`ChaosStream`] around every socket
//!   `read`/`write` the server performs: short reads and writes (frame
//!   reassembly and coalesced-write stress), spurious
//!   `WouldBlock`/`EINTR` storms, mid-frame connection resets, and
//!   slowloris-style stalls. Each syscall attempt on a connection draws
//!   one monotonically increasing event index.
//! * **Execution faults**, applied by the server's guarded executor
//!   around every request body: worker-lane panics (absorbed by
//!   `catch_unwind`, answered as typed `Internal` errors), memory-gauge
//!   pressure spikes (ballast charged for the duration of the request),
//!   and deadline clock skew (a request's deadline shrinks, forcing the
//!   partial-result + resume path).
//!
//! The injected failure set is exactly what the protocol already claims
//! to survive, so `tests/serve_chaos.rs` can hold every *completed*
//! response byte-identical to a fault-free oracle.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use trilist_core::{fault_roll, Counter, InMemoryRecorder, Recorder};

// Injection-family salts (ASCII tags, mirroring FaultPlan's convention).
const SALT_RESET: u64 = 0x5253_4554; // "RSET"
const SALT_WOULDBLOCK: u64 = 0x5742_4c4b; // "WBLK"
const SALT_EINTR: u64 = 0x494e_5452; // "INTR"
const SALT_SHORT_READ: u64 = 0x5348_5244; // "SHRD"
const SALT_SHORT_WRITE: u64 = 0x5348_5752; // "SHWR"
const SALT_STALL: u64 = 0x5354_4c4c; // "STLL"
const SALT_SHORT_LEN: u64 = 0x534c_454e; // "SLEN"
const SALT_PANIC: u64 = 0x5850_414e; // "XPAN"
const SALT_SPIKE: u64 = 0x4753_504b; // "GSPK"
const SALT_SKEW: u64 = 0x534b_4557; // "SKEW"

/// Which syscall an I/O fault decision is for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoOp {
    /// A socket `read`.
    Read,
    /// A socket `write`.
    Write,
}

/// One injected I/O fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFault {
    /// Shut the socket down and fail with `ConnectionReset`.
    Reset,
    /// Fail with a spurious `WouldBlock` (level-triggered readiness
    /// redelivers; the blocking layer treats it as an idle timeout).
    WouldBlock,
    /// Fail with `Interrupted` — both layers retry.
    Interrupted,
    /// Sleep this long, then perform the operation (slowloris pacing).
    Stall(Duration),
    /// Clamp the operation to at most this many bytes (short read/write).
    Short(usize),
}

/// One injected execution fault, drawn per `(conn, seq)` request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecFault {
    /// Panic before the request body runs (the worker lane's
    /// `catch_unwind` must absorb it into a typed `Internal` error).
    Panic,
    /// Charge this much ballast to the shared memory gauge for the
    /// duration of the request.
    GaugeSpike(u64),
}

/// Seeded, schedule-independent fault plan for the serve stack. Rates
/// are per-mille over injection opportunities (syscalls for I/O faults,
/// requests for execution faults).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed feeding every per-event hash.
    pub seed: u64,
    /// Per-mille of reads clamped to a tiny prefix (1–16 bytes).
    pub short_read_permille: u16,
    /// Per-mille of writes clamped to a tiny prefix (1–16 bytes).
    pub short_write_permille: u16,
    /// Per-mille of syscalls failing with a spurious `WouldBlock`.
    pub wouldblock_permille: u16,
    /// Per-mille of syscalls failing with `EINTR`.
    pub eintr_permille: u16,
    /// Per-mille of syscalls that reset the connection mid-frame.
    pub reset_permille: u16,
    /// Per-mille of syscalls delayed by [`ChaosPlan::stall`] first.
    pub stall_permille: u16,
    /// Slowloris pacing applied to stalled syscalls.
    pub stall: Duration,
    /// Per-mille of requests whose worker lane panics.
    pub panic_permille: u16,
    /// Per-mille of requests that spike the shared memory gauge.
    pub gauge_spike_permille: u16,
    /// Ballast charged by a gauge spike.
    pub gauge_spike_bytes: u64,
    /// Per-mille of requests whose deadline clock skews (the deadline
    /// shrinks to a quarter, forcing the partial + resume path; requests
    /// without a deadline are unaffected so completeness stays
    /// deterministic).
    pub skew_permille: u16,
}

impl ChaosPlan {
    /// A mixed plan exercising every fault kind at rates that stress the
    /// stack while leaving every retry loop convergent.
    pub fn seeded(seed: u64) -> Self {
        ChaosPlan {
            seed,
            short_read_permille: 120,
            short_write_permille: 120,
            wouldblock_permille: 80,
            eintr_permille: 60,
            reset_permille: 12,
            stall_permille: 20,
            stall: Duration::from_micros(200),
            panic_permille: 40,
            gauge_spike_permille: 30,
            gauge_spike_bytes: 8 << 20,
            skew_permille: 60,
        }
    }

    /// The fault injected into syscall attempt `event` on connection
    /// `conn`, if any. Precedence when several rates select the same
    /// event: reset, then stall, then `WouldBlock`, then `EINTR`, then
    /// short. Pure in `(seed, op, conn, event)`.
    pub fn io_fault(&self, op: IoOp, conn: u64, event: u64) -> Option<IoFault> {
        if fault_roll(self.seed, SALT_RESET, conn, event) < self.reset_permille {
            return Some(IoFault::Reset);
        }
        if fault_roll(self.seed, SALT_STALL, conn, event) < self.stall_permille {
            return Some(IoFault::Stall(self.stall));
        }
        if fault_roll(self.seed, SALT_WOULDBLOCK, conn, event) < self.wouldblock_permille {
            return Some(IoFault::WouldBlock);
        }
        if fault_roll(self.seed, SALT_EINTR, conn, event) < self.eintr_permille {
            return Some(IoFault::Interrupted);
        }
        let (salt, rate) = match op {
            IoOp::Read => (SALT_SHORT_READ, self.short_read_permille),
            IoOp::Write => (SALT_SHORT_WRITE, self.short_write_permille),
        };
        if fault_roll(self.seed, salt, conn, event) < rate {
            let cap = 1 + (fault_roll(self.seed, SALT_SHORT_LEN, conn, event) % 16) as usize;
            return Some(IoFault::Short(cap));
        }
        None
    }

    /// The fault injected into the execution of request `seq` on
    /// connection `conn`, if any. Panic takes precedence over a gauge
    /// spike. Pure in `(seed, conn, seq)`.
    pub fn exec_fault(&self, conn: u64, seq: u64) -> Option<ExecFault> {
        if fault_roll(self.seed, SALT_PANIC, conn, seq) < self.panic_permille {
            return Some(ExecFault::Panic);
        }
        if fault_roll(self.seed, SALT_SPIKE, conn, seq) < self.gauge_spike_permille {
            return Some(ExecFault::GaugeSpike(self.gauge_spike_bytes));
        }
        None
    }

    /// Whether request `seq` on connection `conn` runs under a skewed
    /// (quartered) deadline. Pure in `(seed, conn, seq)`.
    pub fn skews_deadline(&self, conn: u64, seq: u64) -> bool {
        fault_roll(self.seed, SALT_SKEW, conn, seq) < self.skew_permille
    }
}

/// Monotonic injection counters, one set per server.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Reads clamped short.
    pub short_reads: AtomicU64,
    /// Writes clamped short.
    pub short_writes: AtomicU64,
    /// Spurious `WouldBlock` failures.
    pub would_blocks: AtomicU64,
    /// Injected `EINTR` failures.
    pub eintrs: AtomicU64,
    /// Injected connection resets.
    pub resets: AtomicU64,
    /// Stalled (paced) syscalls.
    pub stalls: AtomicU64,
    /// Injected worker-lane panics.
    pub panics: AtomicU64,
    /// Injected memory-gauge spikes.
    pub gauge_spikes: AtomicU64,
    /// Requests run under a skewed deadline.
    pub deadline_skews: AtomicU64,
}

impl ChaosStats {
    /// Every injected fault so far.
    pub fn total(&self) -> u64 {
        self.short_reads.load(Ordering::Relaxed)
            + self.short_writes.load(Ordering::Relaxed)
            + self.would_blocks.load(Ordering::Relaxed)
            + self.eintrs.load(Ordering::Relaxed)
            + self.resets.load(Ordering::Relaxed)
            + self.stalls.load(Ordering::Relaxed)
            + self.panics.load(Ordering::Relaxed)
            + self.gauge_spikes.load(Ordering::Relaxed)
            + self.deadline_skews.load(Ordering::Relaxed)
    }

    /// Counter fields in a stable order, for the `Stats` response.
    pub fn fields(&self) -> Vec<(String, u64)> {
        vec![
            (
                "chaos_short_reads".into(),
                self.short_reads.load(Ordering::Relaxed),
            ),
            (
                "chaos_short_writes".into(),
                self.short_writes.load(Ordering::Relaxed),
            ),
            (
                "chaos_would_blocks".into(),
                self.would_blocks.load(Ordering::Relaxed),
            ),
            ("chaos_eintrs".into(), self.eintrs.load(Ordering::Relaxed)),
            ("chaos_resets".into(), self.resets.load(Ordering::Relaxed)),
            ("chaos_stalls".into(), self.stalls.load(Ordering::Relaxed)),
            ("chaos_panics".into(), self.panics.load(Ordering::Relaxed)),
            (
                "chaos_gauge_spikes".into(),
                self.gauge_spikes.load(Ordering::Relaxed),
            ),
            (
                "chaos_deadline_skews".into(),
                self.deadline_skews.load(Ordering::Relaxed),
            ),
        ]
    }
}

/// A server's chaos context: the plan, its injection counters, and the
/// recorder feeding [`Counter::ChaosInjections`].
pub(crate) struct ChaosHub {
    pub(crate) plan: ChaosPlan,
    pub(crate) stats: ChaosStats,
    recorder: Arc<InMemoryRecorder>,
}

impl ChaosHub {
    pub(crate) fn new(plan: ChaosPlan, recorder: Arc<InMemoryRecorder>) -> ChaosHub {
        ChaosHub {
            plan,
            stats: ChaosStats::default(),
            recorder,
        }
    }

    /// Records one injection: bumps a detail counter and the recorder's
    /// aggregate.
    pub(crate) fn note(&self, detail: &AtomicU64) {
        detail.fetch_add(1, Ordering::Relaxed);
        self.recorder.add(Counter::ChaosInjections, 1);
    }
}

/// A `TcpStream` wrapper injecting the plan's I/O faults. Without a hub
/// it is a zero-cost passthrough, so both connection layers always speak
/// through it. Each `read`/`write` call draws one event index; the
/// counter advances on injected faults too, so the trace stays a pure
/// function of how many syscalls the connection attempted.
pub(crate) struct ChaosStream {
    inner: TcpStream,
    hub: Option<Arc<ChaosHub>>,
    conn: u64,
    event: u64,
}

impl ChaosStream {
    pub(crate) fn new(inner: TcpStream, hub: Option<Arc<ChaosHub>>, conn: u64) -> ChaosStream {
        ChaosStream {
            inner,
            hub,
            conn,
            event: 0,
        }
    }

    /// The wrapped socket (for `set_read_timeout` and friends).
    pub(crate) fn get_ref(&self) -> &TcpStream {
        &self.inner
    }

    /// Draws the fault for the next syscall attempt, bumping counters.
    fn next_fault(&mut self, op: IoOp) -> Option<IoFault> {
        let hub = self.hub.as_ref()?;
        let event = self.event;
        self.event += 1;
        let fault = hub.plan.io_fault(op, self.conn, event)?;
        let counter = match (fault, op) {
            (IoFault::Reset, _) => &hub.stats.resets,
            (IoFault::WouldBlock, _) => &hub.stats.would_blocks,
            (IoFault::Interrupted, _) => &hub.stats.eintrs,
            (IoFault::Stall(_), _) => &hub.stats.stalls,
            (IoFault::Short(_), IoOp::Read) => &hub.stats.short_reads,
            (IoFault::Short(_), IoOp::Write) => &hub.stats.short_writes,
        };
        hub.note(counter);
        Some(fault)
    }

    fn apply(&mut self, op: IoOp, len: usize) -> Result<usize, io::Error> {
        match self.next_fault(op) {
            None => Ok(len),
            Some(IoFault::Reset) => {
                let _ = self.inner.shutdown(Shutdown::Both);
                Err(io::ErrorKind::ConnectionReset.into())
            }
            Some(IoFault::WouldBlock) => Err(io::ErrorKind::WouldBlock.into()),
            Some(IoFault::Interrupted) => Err(io::ErrorKind::Interrupted.into()),
            Some(IoFault::Stall(d)) => {
                std::thread::sleep(d);
                Ok(len)
            }
            // Never clamp to 0: a zero-length read means EOF to callers.
            Some(IoFault::Short(cap)) => Ok(cap.min(len).max(1)),
        }
    }
}

impl Read for ChaosStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let take = self.apply(IoOp::Read, buf.len())?.min(buf.len());
        self.inner.read(&mut buf[..take])
    }
}

impl Write for ChaosStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let take = self.apply(IoOp::Write, buf.len())?.min(buf.len());
        self.inner.write(&buf[..take])
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl AsRawFd for ChaosStream {
    fn as_raw_fd(&self) -> RawFd {
        self.inner.as_raw_fd()
    }
}

/// `write_all` that survives injected `EINTR`/`WouldBlock` on a blocking
/// socket (std's `write_all` gives up on `WouldBlock`, which a chaos
/// stream — or a socket with a write timeout — can surface spuriously).
pub(crate) fn write_all_resilient<W: Write>(w: &mut W, mut buf: &[u8]) -> io::Result<()> {
    while !buf.is_empty() {
        match w.write(buf) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_micros(500));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_trace() {
        let a = ChaosPlan::seeded(7);
        let b = ChaosPlan::seeded(7);
        for conn in 0..8 {
            for event in 0..256 {
                assert_eq!(
                    a.io_fault(IoOp::Read, conn, event),
                    b.io_fault(IoOp::Read, conn, event)
                );
                assert_eq!(
                    a.io_fault(IoOp::Write, conn, event),
                    b.io_fault(IoOp::Write, conn, event)
                );
                assert_eq!(a.exec_fault(conn, event), b.exec_fault(conn, event));
                assert_eq!(a.skews_deadline(conn, event), b.skews_deadline(conn, event));
            }
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let a = ChaosPlan::seeded(1);
        let b = ChaosPlan::seeded(2);
        let differs = (0..2048).any(|e| {
            a.io_fault(IoOp::Read, 0, e) != b.io_fault(IoOp::Read, 0, e)
                || a.exec_fault(0, e) != b.exec_fault(0, e)
        });
        assert!(differs, "different seeds must draw different traces");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = ChaosPlan::seeded(3);
        let mut resets = 0u32;
        let trials = 20_000;
        for e in 0..trials {
            if matches!(plan.io_fault(IoOp::Read, 0, e), Some(IoFault::Reset)) {
                resets += 1;
            }
        }
        let permille = resets * 1000 / trials as u32;
        assert!(
            (4..=30).contains(&permille),
            "reset rate {permille}permille far from configured 12"
        );
    }

    #[test]
    fn short_faults_never_clamp_to_zero() {
        let plan = ChaosPlan::seeded(11);
        for e in 0..4096 {
            if let Some(IoFault::Short(cap)) = plan.io_fault(IoOp::Read, 1, e) {
                assert!(cap >= 1);
            }
        }
    }
}
