//! Admission control: a concurrency gate with a bounded wait queue, plus
//! a cost-model price ceiling.
//!
//! Requests are priced *before* they run, with the paper's own unified
//! cost model (Proposition 4 via [`trilist_model::price_request`]): the
//! prepared relabeling gives the degrees-by-label, one O(n) pass gives
//! expected operations, and anything over the configured ceiling is
//! rejected with the price attached — the model doing load shedding, not
//! just analysis. Under the ceiling, a request must still win an
//! execution slot: at most `max_inflight` run concurrently, at most
//! `max_queue` wait, and everything beyond that is rejected as busy
//! (closed-loop clients see backpressure instead of unbounded latency).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use trilist_model::RequestPrice;

/// Admission knobs.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Requests executing concurrently (clamped to at least 1).
    pub max_inflight: usize,
    /// Requests allowed to wait for a slot; beyond this, reject busy.
    pub max_queue: usize,
    /// Expected-operations ceiling from the cost model; `None` disables
    /// price rejections.
    pub max_predicted_ops: Option<f64>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: 4,
            max_queue: 16,
            max_predicted_ops: None,
        }
    }
}

/// Why a request was not admitted.
#[derive(Clone, Debug, PartialEq)]
pub enum Rejection {
    /// All execution slots and all queue positions are taken.
    Busy {
        /// The configured concurrency limit.
        max_inflight: usize,
        /// The configured queue bound.
        max_queue: usize,
    },
    /// The cost model priced the request above the ceiling.
    TooExpensive {
        /// Model-predicted total operations.
        predicted_ops: f64,
        /// The configured ceiling.
        ceiling: f64,
    },
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::Busy {
                max_inflight,
                max_queue,
            } => write!(f, "busy: {max_inflight} in flight and {max_queue} queued"),
            Rejection::TooExpensive {
                predicted_ops,
                ceiling,
            } => write!(
                f,
                "predicted {predicted_ops:.0} operations exceeds ceiling {ceiling:.0}"
            ),
        }
    }
}

#[derive(Default)]
struct Slots {
    inflight: usize,
    waiting: usize,
}

/// Monotonic admission counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests granted an execution slot.
    pub admitted: u64,
    /// Requests that waited in the queue before admission.
    pub queued: u64,
    /// Requests rejected because slots and queue were full.
    pub rejected_busy: u64,
    /// Requests rejected by the price ceiling.
    pub rejected_cost: u64,
    /// Requests executing right now.
    pub inflight: u64,
}

/// The gate. One per server.
pub struct Admission {
    cfg: AdmissionConfig,
    slots: Mutex<Slots>,
    freed: Condvar,
    admitted: AtomicU64,
    queued: AtomicU64,
    rejected_busy: AtomicU64,
    rejected_cost: AtomicU64,
}

fn lock(m: &Mutex<Slots>) -> MutexGuard<'_, Slots> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Admission {
    /// A fresh gate.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Admission {
            cfg,
            slots: Mutex::new(Slots::default()),
            freed: Condvar::new(),
            admitted: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            rejected_cost: AtomicU64::new(0),
        }
    }

    /// Applies the price ceiling. Call before [`Admission::admit`] so an
    /// over-budget request never occupies a slot or queue position.
    pub fn check_price(&self, price: &RequestPrice) -> Result<(), Rejection> {
        if let Some(ceiling) = self.cfg.max_predicted_ops {
            if price.exceeds(ceiling) {
                self.rejected_cost.fetch_add(1, Ordering::Relaxed);
                return Err(Rejection::TooExpensive {
                    predicted_ops: price.total_ops,
                    ceiling,
                });
            }
        }
        Ok(())
    }

    /// Claims an execution slot, waiting in the bounded queue if all
    /// slots are taken. The returned [`Permit`] frees the slot on drop.
    pub fn admit(&self) -> Result<Permit<'_>, Rejection> {
        let max_inflight = self.cfg.max_inflight.max(1);
        let mut slots = lock(&self.slots);
        if slots.inflight >= max_inflight {
            if slots.waiting >= self.cfg.max_queue {
                self.rejected_busy.fetch_add(1, Ordering::Relaxed);
                return Err(Rejection::Busy {
                    max_inflight,
                    max_queue: self.cfg.max_queue,
                });
            }
            slots.waiting += 1;
            self.queued.fetch_add(1, Ordering::Relaxed);
            while slots.inflight >= max_inflight {
                slots = self
                    .freed
                    .wait(slots)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            slots.waiting -= 1;
        }
        slots.inflight += 1;
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(Permit { gate: self })
    }

    /// Records a busy rejection decided *outside* [`Admission::admit`] —
    /// the event loop's executor sheds at submit time, before a worker is
    /// occupied — and returns the same [`Rejection::Busy`] the in-band
    /// path produces, so the wire message and the `rejected_busy` counter
    /// are identical across connection layers.
    pub fn shed_busy(&self) -> Rejection {
        self.rejected_busy.fetch_add(1, Ordering::Relaxed);
        Rejection::Busy {
            max_inflight: self.cfg.max_inflight.max(1),
            max_queue: self.cfg.max_queue,
        }
    }

    /// Fraction of combined capacity (execution slots plus queue
    /// positions) currently occupied, in `0..=1` — the queue half of the
    /// overload-pressure signal the degradation ladder reads.
    pub fn fill(&self) -> f64 {
        let cap = (self.cfg.max_inflight.max(1) + self.cfg.max_queue) as f64;
        let slots = lock(&self.slots);
        ((slots.inflight + slots.waiting) as f64 / cap).min(1.0)
    }

    /// Current counters.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            rejected_cost: self.rejected_cost.load(Ordering::Relaxed),
            inflight: lock(&self.slots).inflight as u64,
        }
    }
}

/// An execution slot; dropping it wakes one queued waiter.
pub struct Permit<'a> {
    gate: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut slots = lock(&self.gate.slots);
        slots.inflight = slots.inflight.saturating_sub(1);
        drop(slots);
        self.gate.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn slots_queue_and_reject() {
        let gate = Admission::new(AdmissionConfig {
            max_inflight: 1,
            max_queue: 0,
            max_predicted_ops: None,
        });
        let p = gate.admit().unwrap();
        assert!(matches!(gate.admit(), Err(Rejection::Busy { .. })));
        assert_eq!(gate.stats().rejected_busy, 1);
        assert_eq!(gate.stats().inflight, 1);
        drop(p);
        assert_eq!(gate.stats().inflight, 0);
        let _p2 = gate.admit().unwrap();
        assert_eq!(gate.stats().admitted, 2);
    }

    #[test]
    fn queued_waiter_runs_after_release() {
        let gate = std::sync::Arc::new(Admission::new(AdmissionConfig {
            max_inflight: 1,
            max_queue: 4,
            max_predicted_ops: None,
        }));
        let peak = std::sync::Arc::new(AtomicUsize::new(0));
        let permit = gate.admit().unwrap();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let gate = std::sync::Arc::clone(&gate);
                let peak = std::sync::Arc::clone(&peak);
                std::thread::spawn(move || {
                    let _p = gate.admit().expect("queue has room");
                    let now = gate.stats().inflight as usize;
                    peak.fetch_max(now, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(2));
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(gate.stats().queued, 3, "all three waited");
        drop(permit);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(peak.load(Ordering::Relaxed), 1, "never more than 1 slot");
        assert_eq!(gate.stats().admitted, 4);
        assert_eq!(gate.stats().inflight, 0);
    }

    #[test]
    fn price_ceiling_rejects_with_the_price() {
        let gate = Admission::new(AdmissionConfig {
            max_inflight: 4,
            max_queue: 4,
            max_predicted_ops: Some(100.0),
        });
        let cheap = RequestPrice {
            per_node: 1.0,
            total_ops: 99.0,
            n: 99,
        };
        let dear = RequestPrice {
            per_node: 2.0,
            total_ops: 200.0,
            n: 100,
        };
        assert!(gate.check_price(&cheap).is_ok());
        match gate.check_price(&dear) {
            Err(Rejection::TooExpensive {
                predicted_ops,
                ceiling,
            }) => {
                assert_eq!(predicted_ops, 200.0);
                assert_eq!(ceiling, 100.0);
            }
            other => panic!("expected price rejection, got {other:?}"),
        }
        assert_eq!(gate.stats().rejected_cost, 1);
    }
}
