//! Standalone `trilist-serve` server.
//!
//! ```text
//! trilist_serve [--addr HOST:PORT] [--workers N] [--max-inflight N]
//!               [--max-queue N] [--max-ops F] [--memory-bytes N]
//!               [--cache-entries N] [--cache-bytes N] [--blocking]
//!               [--chaos-seed N] [--no-degrade]
//! ```
//!
//! `--blocking` selects the legacy thread-per-connection layer instead
//! of the default event loop (kept for differential testing).
//!
//! `--chaos-seed N` arms deterministic fault injection: every connection
//! suffers seeded short reads/writes, `WouldBlock`/`EINTR` storms,
//! resets, stalls, worker panics, gauge spikes, and deadline skew — the
//! same seed reproduces the same fault schedule. For drills only; never
//! arm it on a server anyone depends on.
//!
//! `--no-degrade` disables the degrade-before-reject overload ladder
//! (kernel downgrade → deadline clamp → cold-cache eviction), restoring
//! the older shed-immediately behavior.
//!
//! Runs until a client sends `Shutdown` (or the process is killed).

use trilist_serve::{ChaosPlan, ServeConfig, Server};

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(raw) = value else {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    };
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: could not parse {raw:?}");
        std::process::exit(2);
    })
}

fn main() {
    let mut addr = "127.0.0.1:7171".to_string();
    let mut cfg = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse("--addr", args.next()),
            "--workers" => cfg.workers = parse("--workers", args.next()),
            "--max-inflight" => cfg.admission.max_inflight = parse("--max-inflight", args.next()),
            "--max-queue" => cfg.admission.max_queue = parse("--max-queue", args.next()),
            "--max-ops" => cfg.admission.max_predicted_ops = Some(parse("--max-ops", args.next())),
            "--memory-bytes" => cfg.memory_bytes = Some(parse("--memory-bytes", args.next())),
            "--cache-entries" => cfg.store.max_entries = parse("--cache-entries", args.next()),
            "--cache-bytes" => cfg.store.cache_bytes = Some(parse("--cache-bytes", args.next())),
            "--blocking" => cfg.blocking = true,
            "--chaos-seed" => {
                cfg.chaos = Some(ChaosPlan::seeded(parse("--chaos-seed", args.next())));
            }
            "--no-degrade" => cfg.degrade.enabled = false,
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    if let Some(plan) = &cfg.chaos {
        eprintln!(
            "trilist-serve CHAOS ARMED (seed {}): faults will be injected",
            plan.seed
        );
        // Injected worker panics are caught and answered; keep their
        // backtraces out of the log.
        trilist_core::silence_injected_panics();
    }
    let server = Server::bind(addr.as_str(), cfg).unwrap_or_else(|e| {
        eprintln!("bind {addr}: {e}");
        std::process::exit(1);
    });
    println!("trilist-serve listening on {}", server.addr());
    server.wait();
    println!("trilist-serve drained");
}
