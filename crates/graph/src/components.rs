//! Connected components and structural summaries.
//!
//! Random graphs with a prescribed degree sequence decompose into a giant
//! component plus dust when `E[D(D−2)] > 0` (Molloy–Reed \[30\], cited for
//! the construction model); these helpers let the harness sanity-check
//! generated graphs and report their shape.

use crate::csr::{Graph, NodeId};

/// Component labels (0-based, in discovery order) for every node.
pub fn component_labels(g: &Graph) -> Vec<u32> {
    let n = g.n();
    let mut labels = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack: Vec<NodeId> = Vec::new();
    for start in 0..n as NodeId {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = next;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &w in g.neighbors(v) {
                if labels[w as usize] == u32::MAX {
                    labels[w as usize] = next;
                    stack.push(w);
                }
            }
        }
        next += 1;
    }
    labels
}

/// Sizes of all connected components, descending.
pub fn component_sizes(g: &Graph) -> Vec<usize> {
    let labels = component_labels(g);
    let count = labels
        .iter()
        .copied()
        .max()
        .map(|m| m as usize + 1)
        .unwrap_or(0);
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

/// Size of the largest connected component (0 for the empty graph).
pub fn giant_component_size(g: &Graph) -> usize {
    component_sizes(g).first().copied().unwrap_or(0)
}

/// A compact structural summary for logging in the harness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphSummary {
    /// Node count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree `2m/n`.
    pub mean_degree: f64,
    /// Number of connected components.
    pub components: usize,
    /// Fraction of nodes in the largest component.
    pub giant_fraction: f64,
}

/// Computes the summary.
pub fn summarize(g: &Graph) -> GraphSummary {
    let sizes = component_sizes(g);
    let n = g.n();
    GraphSummary {
        n,
        m: g.m(),
        max_degree: g.max_degree(),
        mean_degree: if n == 0 {
            0.0
        } else {
            2.0 * g.m() as f64 / n as f64
        },
        components: sizes.len(),
        giant_fraction: if n == 0 {
            0.0
        } else {
            sizes.first().copied().unwrap_or(0) as f64 / n as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(component_sizes(&g), vec![4]);
        assert_eq!(giant_component_size(&g), 4);
    }

    #[test]
    fn two_components_and_isolate() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        assert_eq!(component_sizes(&g), vec![3, 2, 1]);
        let labels = component_labels(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[3], labels[5]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(component_sizes(&g), Vec::<usize>::new());
        assert_eq!(giant_component_size(&g), 0);
        let s = summarize(&g);
        assert_eq!(s.components, 0);
        assert_eq!(s.giant_fraction, 0.0);
    }

    #[test]
    fn summary_fields() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let s = summarize(&g);
        assert_eq!(s.n, 5);
        assert_eq!(s.m, 3);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.components, 3);
        assert!((s.giant_fraction - 0.6).abs() < 1e-12);
        assert!((s.mean_degree - 1.2).abs() < 1e-12);
    }

    #[test]
    fn dense_power_law_graph_has_giant_component() {
        use crate::dist::{sample_degree_sequence, DiscretePareto, Truncated};
        use crate::gen::{GraphGenerator, ResidualSampler};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let dist = Truncated::new(DiscretePareto::paper_beta(1.7), 40);
        let (seq, _) = sample_degree_sequence(&dist, 1_000, &mut rng);
        let g = ResidualSampler.generate(&seq, &mut rng).graph;
        // E[D] ≈ 30 ⟹ essentially everything is in the giant component
        assert!(summarize(&g).giant_fraction > 0.99);
    }
}
