//! The classical configuration (stub-matching) model with erasure.
//!
//! Places `d_i` stubs of each node in an array, shuffles, pairs consecutive
//! stubs, and erases self-loops and duplicate edges \[8\], \[30\]. As §7.2 notes,
//! erasure noticeably distorts the realized degrees once Pareto `α < 2` under
//! linear truncation — which is exactly why the paper (and we) also provide
//! the residual-degree sampler. The configuration model remains useful as a
//! fast baseline and as a cross-check for the residual sampler.

use super::{Generated, GraphGenerator};
use crate::builder::GraphBuilder;
use crate::degree::DegreeSequence;
use rand::seq::SliceRandom;
use rand::Rng;

/// Stub-matching generator with loop/duplicate erasure.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConfigurationModel;

impl GraphGenerator for ConfigurationModel {
    fn generate<R: Rng + ?Sized>(&self, target: &DegreeSequence, rng: &mut R) -> Generated {
        assert!(
            target.has_even_sum(),
            "degree sum must be even (call make_even first)"
        );
        let n = target.n();
        let total = target.sum() as usize;
        let mut stubs: Vec<u32> = Vec::with_capacity(total);
        for (v, &d) in target.as_slice().iter().enumerate() {
            stubs.extend(std::iter::repeat_n(v as u32, d as usize));
        }
        stubs.shuffle(rng);
        let mut builder = GraphBuilder::new(n);
        for pair in stubs.chunks_exact(2) {
            builder.add_edge(pair[0], pair[1]);
        }
        let (graph, stats) = builder
            .finish()
            .expect("stub pairing yields valid node ids");
        let shortfall = Generated::compute_shortfall(target, &graph);
        Generated {
            graph,
            shortfall,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{sample_degree_sequence, DiscretePareto, Truncated};
    use rand::SeedableRng;

    #[test]
    fn realizes_light_tail_almost_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let target = DegreeSequence::new(vec![2; 100]);
        let g = ConfigurationModel.generate(&target, &mut rng);
        // 2-regular target: erasure losses are small but possible
        assert!(g.graph.n() == 100);
        assert!(g.shortfall <= 20, "shortfall {}", g.shortfall);
        assert_eq!(
            g.shortfall,
            2 * (g.stats.loops_dropped + g.stats.duplicates_dropped)
        );
    }

    #[test]
    fn produces_simple_graph_under_heavy_tail() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let dist = Truncated::new(
            DiscretePareto {
                alpha: 1.5,
                beta: 15.0,
            },
            100,
        );
        let (target, _) = sample_degree_sequence(&dist, 500, &mut rng);
        let g = ConfigurationModel.generate(&target, &mut rng);
        // simplicity is enforced structurally by GraphBuilder + Graph
        assert_eq!(g.graph.n(), 500);
        for v in 0..500u32 {
            assert!(g.graph.degree(v) as u32 <= target.as_slice()[v as usize]);
        }
        assert_eq!(g.shortfall, Generated::compute_shortfall(&target, &g.graph));
    }

    #[test]
    fn empty_sequence() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let target = DegreeSequence::new(vec![0; 5]);
        let g = ConfigurationModel.generate(&target, &mut rng);
        assert_eq!(g.graph.m(), 0);
        assert_eq!(g.shortfall, 0);
    }
}
