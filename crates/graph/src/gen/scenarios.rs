//! Adversarial scenario corpus: deterministic graph shapes the `G(n, p̄)`
//! analysis never generates.
//!
//! Berry et al. ("Why do simple algorithms for triangle enumeration work
//! in the real world?") locate exactly where degree-sequence theory and
//! practice diverge: community structure, dense cores wrapped in sparse
//! periphery, hub pile-ups, and near-bipartite regions. Each generator
//! here builds one such shape as a pure function of its parameters —
//! edges come out of closed-form rules plus a splitmix64 stream with a
//! fixed seed, so every fixture is byte-identical across runs and
//! machines. The autotuner's never-regress contract
//! (`tests/scenario_corpus.rs`) is pinned against this corpus.

use crate::csr::Graph;

/// Deterministic splitmix64 stream for scenario randomness.
struct Stream(u64);

impl Stream {
    fn new(seed: u64) -> Self {
        Stream(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    /// Bernoulli with probability `num/den`.
    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

fn dedup(n: usize, mut edges: Vec<(u32, u32)>) -> Graph {
    for e in edges.iter_mut() {
        if e.0 > e.1 {
            *e = (e.1, e.0);
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges.retain(|&(u, v)| u != v);
    Graph::from_edges(n, &edges).expect("scenario edges are in range")
}

/// Planted communities: `communities` dense blocks of `block` nodes each
/// (intra-block edge probability 60%), stitched by a sparse random
/// inter-block matching. Triangles concentrate inside blocks while the
/// global degree sequence stays nearly flat — the degree-position families
/// cannot see the blocks, a structural ordering can.
pub fn planted_community(communities: usize, block: usize, seed: u64) -> Graph {
    let n = communities * block;
    let mut s = Stream::new(seed ^ 0x636f_6d6d); // "comm"
    let mut edges = Vec::new();
    for c in 0..communities {
        let base = (c * block) as u32;
        for i in 0..block as u32 {
            for j in (i + 1)..block as u32 {
                if s.chance(3, 5) {
                    edges.push((base + i, base + j));
                }
            }
        }
    }
    // sparse stitching: every node gets ~1 inter-community edge
    for v in 0..n as u32 {
        let c = v as usize / block;
        let other = (c + 1 + s.below(communities.max(2) as u64 - 1) as usize) % communities;
        if other != c {
            let w = (other * block) as u32 + s.below(block as u64) as u32;
            edges.push((v, w));
        }
    }
    dedup(n, edges)
}

/// Dense core + sparse periphery: a near-clique of `core` nodes (90%
/// intra-core edges) surrounded by `periphery` tree-like nodes each
/// attached to 2 random core members. The core's degeneracy dwarfs the
/// global average degree, the regime Berry et al. call out.
pub fn core_periphery(core: usize, periphery: usize, seed: u64) -> Graph {
    let n = core + periphery;
    let mut s = Stream::new(seed ^ 0x636f_7265); // "core"
    let mut edges = Vec::new();
    for i in 0..core as u32 {
        for j in (i + 1)..core as u32 {
            if s.chance(9, 10) {
                edges.push((i, j));
            }
        }
    }
    for p in 0..periphery as u32 {
        let v = core as u32 + p;
        let a = s.below(core as u64) as u32;
        let b = s.below(core as u64) as u32;
        edges.push((v, a));
        edges.push((v, b));
    }
    dedup(n, edges)
}

/// Star/hub pile-up: `hubs` hub nodes each fanning out to a private set of
/// `leaves` leaf nodes, with the hubs themselves forming a clique and 10%
/// of leaf pairs under the same hub connected. Equal-degree hubs with
/// radically different closed neighborhoods — the raw-degree tie-break's
/// worst case.
pub fn hub_pileup(hubs: usize, leaves: usize, seed: u64) -> Graph {
    let n = hubs * (1 + leaves);
    let mut s = Stream::new(seed ^ 0x6875_6273); // "hubs"
    let mut edges = Vec::new();
    for h in 0..hubs as u32 {
        for h2 in (h + 1)..hubs as u32 {
            edges.push((h, h2));
        }
        let base = hubs as u32 + h * leaves as u32;
        for l in 0..leaves as u32 {
            edges.push((h, base + l));
            for l2 in (l + 1)..leaves as u32 {
                if s.chance(1, 10) {
                    edges.push((base + l, base + l2));
                }
            }
        }
    }
    dedup(n, edges)
}

/// Near-bipartite: two sides of `side` nodes with 30% cross edges and only
/// `defects` random same-side edges. Almost every wedge is open; the few
/// triangles all pass through a defect edge.
pub fn near_bipartite(side: usize, defects: usize, seed: u64) -> Graph {
    let n = 2 * side;
    let mut s = Stream::new(seed ^ 0x6269_7061); // "bipa"
    let mut edges = Vec::new();
    for u in 0..side as u32 {
        for v in 0..side as u32 {
            if s.chance(3, 10) {
                edges.push((u, side as u32 + v));
            }
        }
    }
    for _ in 0..defects {
        let offset = if s.chance(1, 2) { 0 } else { side as u32 };
        let a = offset + s.below(side as u64) as u32;
        let b = offset + s.below(side as u64) as u32;
        if a != b {
            edges.push((a, b));
        }
    }
    dedup(n, edges)
}

/// Triangle-free by construction: a random bipartite graph (40% cross
/// edges, no defects). Every method must report zero triangles while
/// still paying its full wedge-scanning cost.
pub fn triangle_free(side: usize, seed: u64) -> Graph {
    let n = 2 * side;
    let mut s = Stream::new(seed ^ 0x7472_6565); // "tree"
    let mut edges = Vec::new();
    for u in 0..side as u32 {
        for v in 0..side as u32 {
            if s.chance(2, 5) {
                edges.push((u, side as u32 + v));
            }
        }
    }
    dedup(n, edges)
}

/// A named corpus fixture.
pub struct Scenario {
    /// Stable fixture name (used by tests, goldens, and BENCH tables).
    pub name: &'static str,
    /// Builds the fixture graph (deterministic).
    pub build: fn() -> Graph,
}

/// The corpus at its standard sizes — the set the never-regress tests and
/// `BENCH_autotune.json` pins run over.
pub const CORPUS: [Scenario; 5] = [
    Scenario {
        name: "planted_community",
        build: || planted_community(8, 24, 1),
    },
    Scenario {
        name: "core_periphery",
        build: || core_periphery(28, 400, 2),
    },
    Scenario {
        name: "hub_pileup",
        build: || hub_pileup(10, 30, 3),
    },
    Scenario {
        name: "near_bipartite",
        build: || near_bipartite(100, 12, 4),
    },
    Scenario {
        name: "triangle_free",
        build: || triangle_free(100, 5),
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        for sc in CORPUS {
            let a = (sc.build)();
            let b = (sc.build)();
            assert_eq!(a.n(), b.n(), "{}", sc.name);
            assert_eq!(a.m(), b.m(), "{}", sc.name);
            for v in 0..a.n() as u32 {
                assert_eq!(a.neighbors(v), b.neighbors(v), "{} node {v}", sc.name);
            }
        }
    }

    #[test]
    fn corpus_names_unique_and_nonempty_graphs() {
        let names: std::collections::HashSet<_> = CORPUS.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), CORPUS.len());
        for sc in CORPUS {
            let g = (sc.build)();
            assert!(g.n() > 0 && g.m() > 0, "{} is degenerate", sc.name);
        }
    }

    #[test]
    fn triangle_free_has_no_triangles() {
        let g = triangle_free(60, 9);
        // brute force over wedges
        for u in 0..g.n() as u32 {
            for &v in g.neighbors(u) {
                for &w in g.neighbors(v) {
                    assert!(
                        !(w > v && v > u && g.has_edge(w, u)),
                        "triangle {u},{v},{w}"
                    );
                }
            }
        }
    }

    #[test]
    fn near_bipartite_triangles_touch_defects() {
        // with zero defects the construction is exactly bipartite
        let g = near_bipartite(40, 0, 9);
        for u in 0..g.n() as u32 {
            for &v in g.neighbors(u) {
                for &w in g.neighbors(v) {
                    assert!(
                        !(w > v && v > u && g.has_edge(w, u)),
                        "triangle {u},{v},{w}"
                    );
                }
            }
        }
    }

    #[test]
    fn hub_pileup_hub_degrees_tie() {
        let hubs = 6;
        let leaves = 10;
        let g = hub_pileup(hubs, leaves, 1);
        let hub_degree = g.degree(0);
        for h in 1..hubs as u32 {
            assert_eq!(g.degree(h), hub_degree, "hub {h}");
        }
        assert_eq!(hub_degree, hubs - 1 + leaves);
    }
}
