//! Chung–Lu and Erdős–Rényi generators.
//!
//! The paper's cost analysis rests on the edge-existence probability
//! `p_ij ≈ d_i d_j / 2m` of the traditional degree-sequence model
//! (eq. 10, citing \[1\], \[15\]). The Chung–Lu model *defines* edges with
//! exactly that probability, so it is the natural instrument for testing
//! eq. (10)-based predictions independently of the realization machinery;
//! Erdős–Rényi `G(n, p)` \[19\] is the classical homogeneous baseline the
//! introduction contrasts power-law graphs against.

use super::{Generated, GraphGenerator};
use crate::builder::BuilderStats;
use crate::csr::Graph;
use crate::degree::DegreeSequence;
use rand::Rng;

/// Chung–Lu random graph: edge `{i, j}` (for `i ≠ j`) appears independently
/// with probability `min(1, w_i w_j / Σw)` where `w` is the target degree
/// sequence. Expected degrees equal targets when `max_i w_i² ≤ Σw` — the
/// AMRC condition of Definition 1 in distribution form.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChungLu;

impl GraphGenerator for ChungLu {
    fn generate<R: Rng + ?Sized>(&self, target: &DegreeSequence, rng: &mut R) -> Generated {
        let n = target.n();
        let w = target.as_slice();
        let total: f64 = target.sum() as f64;
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        if total > 0.0 {
            // O(n²) pair sweep: Chung–Lu here is a validation instrument for
            // eq. (10), not the scale generator (that is ResidualSampler),
            // so clarity wins over the skip-sampling optimization.
            for i in 0..n {
                let wi = w[i] as f64;
                if wi == 0.0 {
                    continue;
                }
                let mut j = i + 1;
                while j < n {
                    // probability for the current candidate
                    let p = (wi * w[j] as f64 / total).min(1.0);
                    if p >= 1.0 {
                        adj[i].push(j as u32);
                        adj[j].push(i as u32);
                        j += 1;
                        continue;
                    }
                    if p <= 0.0 {
                        j += 1;
                        continue;
                    }
                    if rng.gen_bool(p) {
                        adj[i].push(j as u32);
                        adj[j].push(i as u32);
                    }
                    j += 1;
                }
            }
        }
        let graph = Graph::from_adjacency(adj).expect("chung-lu emits simple adjacency");
        let shortfall = target.sum().saturating_sub(2 * graph.m() as u64);
        Generated {
            graph,
            shortfall,
            stats: BuilderStats::default(),
        }
    }
}

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p`.
#[derive(Clone, Copy, Debug)]
pub struct Gnp {
    /// Edge probability.
    pub p: f64,
}

impl Gnp {
    /// Generates one graph.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Graph {
        assert!((0.0..=1.0).contains(&self.p));
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        if self.p > 0.0 {
            if self.p >= 1.0 {
                for i in 0..n {
                    for j in (i + 1)..n {
                        adj[i].push(j as u32);
                        adj[j].push(i as u32);
                    }
                }
            } else {
                // geometric skip-sampling within each row of the strictly-
                // upper triangle: O(n + m) expected time
                let q = (1.0 - self.p).ln();
                for i in 0..n {
                    let mut j = i;
                    loop {
                        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                        let skip = (u.ln() / q).floor() as usize + 1;
                        j = match j.checked_add(skip) {
                            Some(next) => next,
                            None => break,
                        };
                        if j >= n {
                            break;
                        }
                        adj[i].push(j as u32);
                        adj[j].push(i as u32);
                    }
                }
            }
        }
        Graph::from_adjacency(adj).expect("gnp emits simple adjacency")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn chung_lu_expected_degrees() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let target = DegreeSequence::new(vec![10; 400]);
        let reps = 30;
        let mut sum = 0.0;
        for _ in 0..reps {
            let g = ChungLu.generate(&target, &mut rng);
            sum += 2.0 * g.graph.m() as f64 / 400.0;
        }
        let mean_degree = sum / reps as f64;
        assert!(
            (mean_degree - 10.0).abs() < 0.5,
            "mean degree {mean_degree}"
        );
    }

    #[test]
    fn chung_lu_edge_probability_matches_eq10() {
        // empirically P(edge between the two hubs) ≈ w_i w_j / Σw
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut degrees = vec![2u32; 100];
        degrees[0] = 12;
        degrees[1] = 9;
        let target = DegreeSequence::new(degrees);
        let p_want = 12.0 * 9.0 / target.sum() as f64;
        let reps = 4_000;
        let mut hits = 0;
        for _ in 0..reps {
            if ChungLu.generate(&target, &mut rng).graph.has_edge(0, 1) {
                hits += 1;
            }
        }
        let p_got = hits as f64 / reps as f64;
        assert!((p_got - p_want).abs() < 0.03, "got {p_got} want {p_want}");
    }

    #[test]
    fn chung_lu_zero_sequence() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let g = ChungLu.generate(&DegreeSequence::new(vec![0; 10]), &mut rng);
        assert_eq!(g.graph.m(), 0);
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 300;
        let p = 0.1;
        let reps = 20;
        let mut sum = 0.0;
        for _ in 0..reps {
            sum += Gnp { p }.generate(n, &mut rng).m() as f64;
        }
        let mean = sum / reps as f64;
        let want = p * (n * (n - 1) / 2) as f64;
        assert!((mean - want).abs() / want < 0.05, "mean {mean} want {want}");
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        assert_eq!(Gnp { p: 0.0 }.generate(50, &mut rng).m(), 0);
        let complete = Gnp { p: 1.0 }.generate(20, &mut rng);
        assert_eq!(complete.m(), 190);
        let empty = Gnp { p: 0.5 }.generate(0, &mut rng);
        assert_eq!(empty.n(), 0);
    }

    #[test]
    fn gnp_no_duplicate_or_loop() {
        // Graph::from_adjacency rejects both, so surviving construction is
        // the assertion; run several seeds
        for seed in 0..10 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let g = Gnp { p: 0.3 }.generate(60, &mut rng);
            assert!(g.m() > 0);
        }
    }
}
