//! Random graph generators that realize a prescribed degree sequence (§7.2).

mod chung_lu;
mod config;
mod residual;
pub mod scenarios;

pub use chung_lu::{ChungLu, Gnp};
pub use config::ConfigurationModel;
pub use residual::ResidualSampler;
pub use scenarios::{
    core_periphery, hub_pileup, near_bipartite, planted_community, triangle_free, Scenario, CORPUS,
};

use crate::builder::BuilderStats;
use crate::csr::Graph;
use crate::degree::DegreeSequence;
use rand::Rng;

/// A generated graph plus bookkeeping about how closely the target degree
/// sequence was realized.
#[derive(Clone, Debug)]
pub struct Generated {
    /// The simple graph.
    pub graph: Graph,
    /// Total degree shortfall `Σ_i (target_i − realized_i)`; the paper's
    /// residual sampler achieves exact realization "with the exception of
    /// possibly one last edge" (shortfall ≤ 2), while the configuration
    /// model's erasure step loses more as the tail gets heavier.
    pub shortfall: u64,
    /// Erasure statistics (loops/duplicates dropped), when applicable.
    pub stats: BuilderStats,
}

impl Generated {
    /// Shortfall between target and realized degree sums.
    pub fn compute_shortfall(target: &DegreeSequence, graph: &Graph) -> u64 {
        let realized: u64 = (0..graph.n() as u32).map(|v| graph.degree(v) as u64).sum();
        target.sum() - realized
    }
}

/// A generator of simple graphs realizing (approximately) a degree sequence.
pub trait GraphGenerator {
    /// Generates one graph for `target`.
    fn generate<R: Rng + ?Sized>(&self, target: &DegreeSequence, rng: &mut R) -> Generated;
}
