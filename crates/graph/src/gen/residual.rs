//! Residual-degree proportional sampler (§7.2).
//!
//! A variation of the sequential importance sampler of Blitzstein–Diaconis
//! \[11\]: nodes are completed one at a time (largest target degree first);
//! each partner is drawn **in proportion to its residual degree**, excluding
//! the node itself and its already-attached neighbors, so the realized graph
//! is simple *by construction* — no erasure, and therefore no degree
//! distortion. Selection uses a Fenwick tree over residual degrees, giving
//! `O(m log n)` total time; the paper reports generating 10M-node graphs in
//! seconds with the equivalent interval-tree structure.
//!
//! With the exception of possibly a few trailing edges (reported as
//! [`Generated::shortfall`]), the output realizes the target sequence
//! exactly.

use super::{Generated, GraphGenerator};
use crate::builder::BuilderStats;
use crate::csr::Graph;
use crate::degree::DegreeSequence;
use crate::fenwick::Fenwick;
use rand::Rng;

/// The §7.2 generator: neighbor selection proportional to residual degree
/// with exclusion of the current node and its existing neighbors.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResidualSampler;

impl GraphGenerator for ResidualSampler {
    fn generate<R: Rng + ?Sized>(&self, target: &DegreeSequence, rng: &mut R) -> Generated {
        assert!(target.has_even_sum(), "degree sum must be even (call make_even first)");
        let n = target.n();
        let degrees = target.as_slice();
        let mut residual: Vec<u64> = degrees.iter().map(|&d| d as u64).collect();
        let mut fenwick = Fenwick::from_weights(&residual);
        let mut adj: Vec<Vec<u32>> = degrees.iter().map(|&d| Vec::with_capacity(d as usize)).collect();

        // Complete high-degree nodes first: they are the hardest to finish
        // once the residual pool thins out.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(degrees[v as usize]));

        for &u in &order {
            let ui = u as usize;
            if residual[ui] == 0 {
                continue;
            }
            // Exclude u and its current neighbors from selection.
            fenwick.set(ui, 0);
            for &w in &adj[ui] {
                fenwick.set(w as usize, 0);
            }
            while residual[ui] > 0 {
                let total = fenwick.total();
                if total == 0 {
                    // No eligible partner remains; leave the shortfall.
                    break;
                }
                let v = fenwick.select(rng.gen_range(0..total)) as u32;
                let vi = v as usize;
                debug_assert!(v != u && !adj[ui].contains(&v));
                debug_assert!(residual[vi] > 0);
                adj[ui].push(v);
                adj[vi].push(u);
                residual[ui] -= 1;
                residual[vi] -= 1;
                // v is now a neighbor: keep it excluded until u is finished.
                fenwick.set(vi, 0);
            }
            // Restore residual weights of u and all its neighbors.
            fenwick.set(ui, residual[ui]);
            for &w in adj[ui].clone().iter() {
                fenwick.set(w as usize, residual[w as usize]);
            }
        }

        let shortfall: u64 = residual.iter().sum();
        let graph = Graph::from_adjacency(adj).expect("residual sampler builds a simple graph");
        debug_assert_eq!(shortfall, Generated::compute_shortfall(target, &graph));
        Generated { graph, shortfall, stats: BuilderStats::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{sample_degree_sequence, DiscretePareto, Truncated, Truncation};
    use rand::SeedableRng;

    #[test]
    fn realizes_regular_sequence_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for d in [2u32, 3, 4] {
            let target = DegreeSequence::new(vec![d; 60]);
            let g = ResidualSampler.generate(&target, &mut rng);
            assert_eq!(g.shortfall, 0, "d={d}");
            for v in 0..60u32 {
                assert_eq!(g.graph.degree(v) as u32, d);
            }
        }
    }

    #[test]
    fn realizes_star_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut degrees = vec![1u32; 9];
        degrees.insert(0, 9);
        let target = DegreeSequence::new(degrees);
        let g = ResidualSampler.generate(&target, &mut rng);
        assert_eq!(g.shortfall, 0);
        assert_eq!(g.graph.degree(0), 9);
    }

    #[test]
    fn heavy_tail_root_truncation_small_shortfall() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let n = 2_000;
        let t = Truncation::Root.t_n(n);
        let dist = Truncated::new(DiscretePareto { alpha: 1.5, beta: 15.0 }, t);
        for _ in 0..5 {
            let (target, _) = sample_degree_sequence(&dist, n, &mut rng);
            let g = ResidualSampler.generate(&target, &mut rng);
            // AMRC sequences should realize (nearly) exactly.
            assert!(g.shortfall <= 2, "shortfall {}", g.shortfall);
            // realized degree never exceeds the target
            for v in 0..n as u32 {
                assert!(g.graph.degree(v) as u32 <= target.as_slice()[v as usize]);
            }
        }
    }

    #[test]
    fn heavy_tail_linear_truncation_still_simple() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 1_000;
        let dist = Truncated::new(DiscretePareto { alpha: 1.2, beta: 6.0 }, (n - 1) as u64);
        let (target, _) = sample_degree_sequence(&dist, n, &mut rng);
        let g = ResidualSampler.generate(&target, &mut rng);
        // Linear truncation with α=1.2 can be non-graphical; simplicity must
        // hold regardless, and shortfall should stay a tiny fraction of 2m.
        let frac = g.shortfall as f64 / target.sum() as f64;
        assert!(frac < 0.05, "shortfall fraction {frac}");
    }

    #[test]
    fn beats_configuration_model_on_heavy_tails() {
        use crate::gen::ConfigurationModel;
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let n = 1_000;
        let dist = Truncated::new(DiscretePareto { alpha: 1.5, beta: 15.0 }, (n - 1) as u64);
        let (target, _) = sample_degree_sequence(&dist, n, &mut rng);
        let residual = ResidualSampler.generate(&target, &mut rng);
        let config = ConfigurationModel.generate(&target, &mut rng);
        assert!(
            residual.shortfall <= config.shortfall,
            "residual {} vs config {}",
            residual.shortfall,
            config.shortfall
        );
    }

    #[test]
    fn zero_degrees_are_isolated() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let target = DegreeSequence::new(vec![0, 2, 2, 2, 0]);
        let g = ResidualSampler.generate(&target, &mut rng);
        assert_eq!(g.graph.degree(0), 0);
        assert_eq!(g.graph.degree(4), 0);
        assert_eq!(g.shortfall, 0);
    }
}
