//! Residual-degree proportional sampler (§7.2).
//!
//! A variation of the sequential importance sampler of Blitzstein–Diaconis
//! \[11\]: nodes are completed one at a time (largest target degree first);
//! each partner is drawn **in proportion to its residual degree**, excluding
//! the node itself and its already-attached neighbors, so the realized graph
//! is simple *by construction* — no erasure, and therefore no degree
//! distortion. Selection uses a Fenwick tree over residual degrees, giving
//! `O(m log n)` total time; the paper reports generating 10M-node graphs in
//! seconds with the equivalent interval-tree structure.
//!
//! With the exception of possibly a few trailing edges (reported as
//! [`Generated::shortfall`]), the output realizes the target sequence
//! exactly.

use super::{Generated, GraphGenerator};
use crate::builder::BuilderStats;
use crate::csr::Graph;
use crate::degree::DegreeSequence;
use crate::fenwick::Fenwick;
use rand::Rng;

/// The §7.2 generator: neighbor selection proportional to residual degree
/// with exclusion of the current node and its existing neighbors.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResidualSampler;

impl GraphGenerator for ResidualSampler {
    fn generate<R: Rng + ?Sized>(&self, target: &DegreeSequence, rng: &mut R) -> Generated {
        assert!(
            target.has_even_sum(),
            "degree sum must be even (call make_even first)"
        );
        let n = target.n();
        let degrees = target.as_slice();
        let mut residual: Vec<u64> = degrees.iter().map(|&d| d as u64).collect();
        let mut fenwick = Fenwick::from_weights(&residual);
        let mut adj: Vec<Vec<u32>> = degrees
            .iter()
            .map(|&d| Vec::with_capacity(d as usize))
            .collect();

        // Complete high-degree nodes first: they are the hardest to finish
        // once the residual pool thins out.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(degrees[v as usize]));

        for &u in &order {
            let ui = u as usize;
            if residual[ui] == 0 {
                continue;
            }
            // Exclude u and its current neighbors from selection.
            fenwick.set(ui, 0);
            for &w in &adj[ui] {
                fenwick.set(w as usize, 0);
            }
            while residual[ui] > 0 {
                let total = fenwick.total();
                if total == 0 {
                    // No eligible partner remains; leave the shortfall.
                    break;
                }
                let v = fenwick.select(rng.gen_range(0..total)) as u32;
                let vi = v as usize;
                debug_assert!(v != u && !adj[ui].contains(&v));
                debug_assert!(residual[vi] > 0);
                adj[ui].push(v);
                adj[vi].push(u);
                residual[ui] -= 1;
                residual[vi] -= 1;
                // v is now a neighbor: keep it excluded until u is finished.
                fenwick.set(vi, 0);
            }
            // Restore residual weights of u and all its neighbors.
            fenwick.set(ui, residual[ui]);
            for &w in adj[ui].clone().iter() {
                fenwick.set(w as usize, residual[w as usize]);
            }
        }

        repair_stranded(&mut adj, &mut residual);

        let shortfall: u64 = residual.iter().sum();
        let graph = Graph::from_adjacency(adj).expect("residual sampler builds a simple graph");
        debug_assert_eq!(shortfall, Generated::compute_shortfall(target, &graph));
        Generated {
            graph,
            shortfall,
            stats: BuilderStats::default(),
        }
    }
}

/// Absorbs stranded residual stubs by edge switching.
///
/// The greedy pass can finish with residual degree left on nodes whose only
/// eligible partners are themselves or existing neighbors (e.g. the last
/// node of a 2-regular sequence whose two stubs face each other). Those
/// sequences are still graphical; the standard repair (Blitzstein–Diaconis
/// \[11\], also the switch step of McKay–Wormald) rewires an existing edge
/// `(a, b)` into `(u, a)` and `(v, b)`, which consumes one stub at `u` and
/// one at `v` while leaving every other degree unchanged. Simplicity is
/// preserved by construction; any residue that no switch can absorb (a
/// genuinely non-graphical tail) remains as the reported shortfall.
fn repair_stranded(adj: &mut [Vec<u32>], residual: &mut [u64]) {
    loop {
        // the two stubs to connect this round: the heaviest-residual node,
        // twice if it holds ≥ 2 stubs, else paired with the runner-up
        let mut stubs: Vec<u32> = Vec::with_capacity(2);
        let mut order: Vec<u32> = (0..adj.len() as u32)
            .filter(|&v| residual[v as usize] > 0)
            .collect();
        order.sort_by_key(|&v| std::cmp::Reverse(residual[v as usize]));
        for &v in &order {
            stubs.push(v);
            if residual[v as usize] >= 2 && stubs.len() < 2 {
                stubs.push(v);
            }
            if stubs.len() == 2 {
                break;
            }
        }
        let [u, v] = stubs[..] else { return };
        let (ui, vi) = (u as usize, v as usize);

        if u != v && !adj[ui].contains(&v) {
            adj[ui].push(v);
            adj[vi].push(u);
        } else {
            // switch: find an edge (a, b) with a ∉ N(u)∪{u,v} and
            // b ∉ N(v)∪{u,v}, replace it by (u, a) and (v, b)
            let Some((a, b)) = find_switch_edge(adj, u, v) else {
                return;
            };
            let (ai, bi) = (a as usize, b as usize);
            let pos = adj[ai]
                .iter()
                .position(|&w| w == b)
                .expect("edge listed at a");
            adj[ai].swap_remove(pos);
            let pos = adj[bi]
                .iter()
                .position(|&w| w == a)
                .expect("edge listed at b");
            adj[bi].swap_remove(pos);
            adj[ui].push(a);
            adj[ai].push(u);
            adj[vi].push(b);
            adj[bi].push(v);
        }
        residual[ui] -= 1;
        residual[vi] -= 1;
    }
}

/// A directed scan for an edge `(a, b)` whose switch onto stubs `(u, v)`
/// keeps the graph simple. Deterministic order keeps generation
/// reproducible per RNG stream.
fn find_switch_edge(adj: &[Vec<u32>], u: u32, v: u32) -> Option<(u32, u32)> {
    let (ui, vi) = (u as usize, v as usize);
    for a in 0..adj.len() as u32 {
        if a == u || a == v || adj[ui].contains(&a) {
            continue;
        }
        for &b in &adj[a as usize] {
            if b == u || b == v || adj[vi].contains(&b) {
                continue;
            }
            return Some((a, b));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{sample_degree_sequence, DiscretePareto, Truncated, Truncation};
    use rand::SeedableRng;

    #[test]
    fn realizes_regular_sequence_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for d in [2u32, 3, 4] {
            let target = DegreeSequence::new(vec![d; 60]);
            let g = ResidualSampler.generate(&target, &mut rng);
            assert_eq!(g.shortfall, 0, "d={d}");
            for v in 0..60u32 {
                assert_eq!(g.graph.degree(v) as u32, d);
            }
        }
    }

    #[test]
    fn realizes_star_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut degrees = vec![1u32; 9];
        degrees.insert(0, 9);
        let target = DegreeSequence::new(degrees);
        let g = ResidualSampler.generate(&target, &mut rng);
        assert_eq!(g.shortfall, 0);
        assert_eq!(g.graph.degree(0), 9);
    }

    #[test]
    fn heavy_tail_root_truncation_small_shortfall() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let n = 2_000;
        let t = Truncation::Root.t_n(n);
        let dist = Truncated::new(
            DiscretePareto {
                alpha: 1.5,
                beta: 15.0,
            },
            t,
        );
        for _ in 0..5 {
            let (target, _) = sample_degree_sequence(&dist, n, &mut rng);
            let g = ResidualSampler.generate(&target, &mut rng);
            // AMRC sequences should realize (nearly) exactly.
            assert!(g.shortfall <= 2, "shortfall {}", g.shortfall);
            // realized degree never exceeds the target
            for v in 0..n as u32 {
                assert!(g.graph.degree(v) as u32 <= target.as_slice()[v as usize]);
            }
        }
    }

    #[test]
    fn heavy_tail_linear_truncation_still_simple() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 1_000;
        let dist = Truncated::new(
            DiscretePareto {
                alpha: 1.2,
                beta: 6.0,
            },
            (n - 1) as u64,
        );
        let (target, _) = sample_degree_sequence(&dist, n, &mut rng);
        let g = ResidualSampler.generate(&target, &mut rng);
        // Linear truncation with α=1.2 can be non-graphical; simplicity must
        // hold regardless, and shortfall should stay a tiny fraction of 2m.
        let frac = g.shortfall as f64 / target.sum() as f64;
        assert!(frac < 0.05, "shortfall fraction {frac}");
    }

    #[test]
    fn beats_configuration_model_on_heavy_tails() {
        use crate::gen::ConfigurationModel;
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let n = 1_000;
        let dist = Truncated::new(
            DiscretePareto {
                alpha: 1.5,
                beta: 15.0,
            },
            (n - 1) as u64,
        );
        let (target, _) = sample_degree_sequence(&dist, n, &mut rng);
        let residual = ResidualSampler.generate(&target, &mut rng);
        let config = ConfigurationModel.generate(&target, &mut rng);
        assert!(
            residual.shortfall <= config.shortfall,
            "residual {} vs config {}",
            residual.shortfall,
            config.shortfall
        );
    }

    #[test]
    fn zero_degrees_are_isolated() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let target = DegreeSequence::new(vec![0, 2, 2, 2, 0]);
        let g = ResidualSampler.generate(&target, &mut rng);
        assert_eq!(g.graph.degree(0), 0);
        assert_eq!(g.graph.degree(4), 0);
        assert_eq!(g.shortfall, 0);
    }
}
