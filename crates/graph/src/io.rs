//! Plain-text edge-list I/O, hardened against malformed input.
//!
//! The evaluation's real-graph experiment (Table 12) loads Twitter from an
//! edge list; this module provides the equivalent loader so users can run
//! the harness on their own graphs. Format: one `u v` pair per line,
//! whitespace-separated, `#`-prefixed comment lines ignored, node IDs
//! arbitrary `u32` (they are compacted to `0..n`), duplicate edges and
//! self-loops erased.
//!
//! Real deployments feed loaders adversarial and heavy-tailed inputs far
//! from clean models (Berry et al.), so parsing is defensive end to end:
//! lines are read through a bounded buffer (a newline-free multi-gigabyte
//! stream cannot balloon memory), node and edge counts are capped by
//! [`IoLimits`] (the node cap also makes the `u32` ID compaction
//! structurally overflow-free), numeric tokens are overflow-checked by
//! `u32` parsing, invalid UTF-8 is tolerated byte-wise, and every failure
//! is a structured [`IoError`] — never a panic (property-tested against
//! arbitrary byte streams).

use crate::builder::{BuilderStats, GraphBuilder};
use crate::csr::Graph;
use crate::GraphError;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

/// Result of parsing an edge list.
#[derive(Debug)]
pub struct LoadedGraph {
    /// The compacted simple graph.
    pub graph: Graph,
    /// Compacted ID → original ID.
    pub original_ids: Vec<u32>,
    /// Erasure statistics.
    pub stats: BuilderStats,
}

/// Caps applied while parsing untrusted edge lists.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoLimits {
    /// Maximum distinct node IDs. The default (`u32::MAX`) is exactly the
    /// structural limit of the compacted `u32` ID space.
    pub max_nodes: usize,
    /// Maximum edge lines kept (pre-erasure).
    pub max_edges: usize,
    /// Maximum bytes in one line (comment lines included).
    pub max_line_bytes: usize,
}

impl Default for IoLimits {
    fn default() -> Self {
        IoLimits {
            max_nodes: u32::MAX as usize,
            max_edges: u32::MAX as usize,
            max_line_bytes: 1 << 16,
        }
    }
}

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying reader failure.
    Io(std::io::Error),
    /// A line that is neither a comment nor a `u v` pair (including
    /// numeric tokens that overflow `u32`).
    Parse {
        /// 1-based line number.
        line: usize,
        /// Offending content.
        content: String,
    },
    /// A line exceeded [`IoLimits::max_line_bytes`].
    LineTooLong {
        /// 1-based line number.
        line: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The stream introduced more distinct node IDs than
    /// [`IoLimits::max_nodes`].
    TooManyNodes {
        /// The configured cap.
        limit: usize,
    },
    /// The stream carried more edge lines than [`IoLimits::max_edges`].
    TooManyEdges {
        /// The configured cap.
        limit: usize,
    },
    /// Graph construction failure (should not happen after erasure).
    Graph(GraphError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "cannot parse line {line}: {content:?}")
            }
            IoError::LineTooLong { line, limit } => {
                write!(f, "line {line} exceeds the {limit}-byte line limit")
            }
            IoError::TooManyNodes { limit } => {
                write!(f, "edge list exceeds the {limit}-node limit")
            }
            IoError::TooManyEdges { limit } => {
                write!(f, "edge list exceeds the {limit}-edge limit")
            }
            IoError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads a whitespace-separated edge list under the default [`IoLimits`],
/// compacting node IDs.
pub fn read_edge_list<R: Read>(reader: R) -> Result<LoadedGraph, IoError> {
    read_edge_list_with(reader, &IoLimits::default())
}

/// [`read_edge_list`] with explicit caps — the entry point for untrusted
/// input, bounding nodes, edges, and line length up front.
pub fn read_edge_list_with<R: Read>(reader: R, limits: &IoLimits) -> Result<LoadedGraph, IoError> {
    let mut ids: HashMap<u32, u32> = HashMap::new();
    let mut original_ids: Vec<u32> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut buf = BufReader::new(reader);
    let mut raw: Vec<u8> = Vec::new();
    let mut lineno = 0usize;
    loop {
        raw.clear();
        let consumed = read_bounded_line(&mut buf, &mut raw, limits.max_line_bytes, lineno + 1)?;
        if consumed == 0 {
            break;
        }
        lineno += 1;
        // tolerate invalid UTF-8: damaged bytes become replacement chars
        // and fail token parsing as a structured error, not an io error
        let line = String::from_utf8_lossy(&raw);
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        // u32 parsing is overflow-checked: "4294967296" is a parse error
        let parse = |tok: Option<&str>| -> Option<u32> { tok.and_then(|t| t.parse().ok()) };
        let (u, v) = match (parse(parts.next()), parse(parts.next())) {
            (Some(u), Some(v)) => (u, v),
            _ => {
                return Err(IoError::Parse {
                    line: lineno,
                    content: trimmed.to_string(),
                })
            }
        };
        if edges.len() >= limits.max_edges {
            return Err(IoError::TooManyEdges {
                limit: limits.max_edges,
            });
        }
        let cu = intern(u, &mut ids, &mut original_ids, limits.max_nodes)?;
        let cv = intern(v, &mut ids, &mut original_ids, limits.max_nodes)?;
        edges.push((cu, cv));
    }
    let mut builder = GraphBuilder::new(original_ids.len());
    for (u, v) in edges {
        builder.add_edge(u, v);
    }
    let (graph, stats) = builder.finish().map_err(IoError::Graph)?;
    Ok(LoadedGraph {
        graph,
        original_ids,
        stats,
    })
}

/// Maps an original ID to its compacted ID, minting a new one under the
/// node cap.
fn intern(
    orig: u32,
    ids: &mut HashMap<u32, u32>,
    original_ids: &mut Vec<u32>,
    max_nodes: usize,
) -> Result<u32, IoError> {
    if let Some(&c) = ids.get(&orig) {
        return Ok(c);
    }
    if original_ids.len() >= max_nodes {
        return Err(IoError::TooManyNodes { limit: max_nodes });
    }
    let c = original_ids.len() as u32;
    ids.insert(orig, c);
    original_ids.push(orig);
    Ok(c)
}

/// Reads one line (up to and excluding `\n`) into `out`, erroring as soon
/// as the line crosses `cap` bytes — the buffer never grows past the cap,
/// whatever the stream does. Returns the bytes consumed; 0 means EOF.
fn read_bounded_line<R: BufRead>(
    r: &mut R,
    out: &mut Vec<u8>,
    cap: usize,
    lineno: usize,
) -> Result<usize, IoError> {
    let mut consumed = 0usize;
    loop {
        let available = r.fill_buf()?;
        if available.is_empty() {
            return Ok(consumed);
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            out.extend_from_slice(&available[..pos]);
            r.consume(pos + 1);
            consumed += pos + 1;
            if out.len() > cap {
                return Err(IoError::LineTooLong {
                    line: lineno,
                    limit: cap,
                });
            }
            return Ok(consumed);
        }
        let len = available.len();
        out.extend_from_slice(available);
        r.consume(len);
        consumed += len;
        if out.len() > cap {
            return Err(IoError::LineTooLong {
                line: lineno,
                limit: cap,
            });
        }
    }
}

/// Writes the graph as a `u v` edge list (compacted IDs), one edge per
/// line with `u < v`.
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# trilist edge list: n={} m={}",
        graph.n(),
        graph.m()
    )?;
    for (u, v) in graph.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(loaded.graph.n(), 4);
        assert_eq!(loaded.graph.m(), 4);
        assert_eq!(loaded.stats, BuilderStats::default());
    }

    #[test]
    fn compacts_sparse_ids_and_keeps_originals() {
        let input = "# comment\n100 200\n200 300\n\n100 300\n";
        let loaded = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(loaded.graph.n(), 3);
        assert_eq!(loaded.graph.m(), 3);
        assert_eq!(loaded.original_ids, vec![100, 200, 300]);
    }

    #[test]
    fn erases_loops_and_duplicates() {
        let input = "1 1\n1 2\n2 1\n2 3\n";
        let loaded = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(loaded.graph.m(), 2);
        assert_eq!(loaded.stats.loops_dropped, 1);
        assert_eq!(loaded.stats.duplicates_dropped, 1);
    }

    #[test]
    fn rejects_garbage() {
        let err = read_edge_list("1 2\nhello world\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_u32_overflow_as_parse_error() {
        // 2^32 does not fit a u32: checked parsing, not silent wrap
        let err = read_edge_list("1 4294967296\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected {other:?}"),
        }
        // u32::MAX itself is fine
        let loaded = read_edge_list("0 4294967295\n".as_bytes()).unwrap();
        assert_eq!(loaded.graph.m(), 1);
    }

    #[test]
    fn node_cap_is_enforced() {
        let limits = IoLimits {
            max_nodes: 3,
            ..IoLimits::default()
        };
        let ok = read_edge_list_with("1 2\n2 3\n".as_bytes(), &limits).unwrap();
        assert_eq!(ok.graph.n(), 3);
        let err = read_edge_list_with("1 2\n3 4\n".as_bytes(), &limits).unwrap_err();
        match err {
            IoError::TooManyNodes { limit } => assert_eq!(limit, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn edge_cap_is_enforced() {
        let limits = IoLimits {
            max_edges: 2,
            ..IoLimits::default()
        };
        assert!(read_edge_list_with("1 2\n2 3\n".as_bytes(), &limits).is_ok());
        let err = read_edge_list_with("1 2\n2 3\n3 4\n".as_bytes(), &limits).unwrap_err();
        match err {
            IoError::TooManyEdges { limit } => assert_eq!(limit, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn line_cap_bounds_memory_even_without_newlines() {
        let limits = IoLimits {
            max_line_bytes: 16,
            ..IoLimits::default()
        };
        // a long comment line with a newline
        let long = format!("# {}\n1 2\n", "x".repeat(64));
        match read_edge_list_with(long.as_bytes(), &limits).unwrap_err() {
            IoError::LineTooLong { line, limit } => {
                assert_eq!((line, limit), (1, 16));
            }
            other => panic!("unexpected {other:?}"),
        }
        // and a newline-free stream trips the cap instead of buffering it
        let endless = "9".repeat(1 << 12);
        assert!(matches!(
            read_edge_list_with(endless.as_bytes(), &limits).unwrap_err(),
            IoError::LineTooLong { .. }
        ));
        // a line exactly at the cap passes
        let exact = "# 0123456789abcd\n1 2\n";
        assert_eq!(exact.lines().next().unwrap().len(), 16);
        assert!(read_edge_list_with(exact.as_bytes(), &limits).is_ok());
    }

    #[test]
    fn invalid_utf8_is_a_structured_error_not_a_panic() {
        let input: &[u8] = &[0xff, 0xfe, b' ', 0xc0, b'\n'];
        match read_edge_list(input).unwrap_err() {
            IoError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected {other:?}"),
        }
        // invalid bytes on a comment line are simply skipped
        let commented: &[u8] = b"# \xff\xfe\n1 2\n";
        assert_eq!(read_edge_list(commented).unwrap().graph.m(), 1);
    }

    #[test]
    fn tabs_and_extra_columns() {
        // extra columns (weights) are ignored
        let input = "0\t1\t0.5\n1\t2\t0.7\n";
        let loaded = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(loaded.graph.m(), 2);
    }

    #[test]
    fn empty_input() {
        let loaded = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(loaded.graph.n(), 0);
    }

    #[test]
    fn missing_trailing_newline() {
        let loaded = read_edge_list("1 2\n2 3".as_bytes()).unwrap();
        assert_eq!(loaded.graph.m(), 2);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            // the loader never panics, whatever bytes arrive: every input
            // yields either a graph or a structured error
            #[test]
            fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
                let tight = IoLimits { max_nodes: 64, max_edges: 64, max_line_bytes: 64 };
                let _ = read_edge_list(bytes.as_slice());
                let _ = read_edge_list_with(bytes.as_slice(), &tight);
            }

            // digit-and-separator soup — the near-valid adversarial case —
            // also never panics, and successful parses respect the caps
            #[test]
            fn digit_soup_respects_caps(
                bytes in proptest::collection::vec(
                    (0usize..15).prop_map(|i| b"0123456789 \t\n#-"[i]),
                    0..512,
                )
            ) {
                let tight = IoLimits { max_nodes: 16, max_edges: 16, max_line_bytes: 32 };
                if let Ok(loaded) = read_edge_list_with(bytes.as_slice(), &tight) {
                    prop_assert!(loaded.graph.n() <= 16);
                    prop_assert!(loaded.graph.m() <= 16);
                }
            }
        }
    }
}
