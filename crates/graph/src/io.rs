//! Plain-text edge-list I/O.
//!
//! The evaluation's real-graph experiment (Table 12) loads Twitter from an
//! edge list; this module provides the equivalent loader so users can run
//! the harness on their own graphs. Format: one `u v` pair per line,
//! whitespace-separated, `#`-prefixed comment lines ignored, node IDs
//! arbitrary `u32` (they are compacted to `0..n`), duplicate edges and
//! self-loops erased.

use crate::builder::{BuilderStats, GraphBuilder};
use crate::csr::Graph;
use crate::GraphError;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

/// Result of parsing an edge list.
#[derive(Debug)]
pub struct LoadedGraph {
    /// The compacted simple graph.
    pub graph: Graph,
    /// Compacted ID → original ID.
    pub original_ids: Vec<u32>,
    /// Erasure statistics.
    pub stats: BuilderStats,
}

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying reader failure.
    Io(std::io::Error),
    /// A line that is neither a comment nor a `u v` pair.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Offending content.
        content: String,
    },
    /// Graph construction failure (should not happen after erasure).
    Graph(GraphError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "cannot parse line {line}: {content:?}")
            }
            IoError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads a whitespace-separated edge list, compacting node IDs.
pub fn read_edge_list<R: Read>(reader: R) -> Result<LoadedGraph, IoError> {
    let mut ids: HashMap<u32, u32> = HashMap::new();
    let mut original_ids: Vec<u32> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let buf = BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<u32> { tok.and_then(|t| t.parse().ok()) };
        let (u, v) = match (parse(parts.next()), parse(parts.next())) {
            (Some(u), Some(v)) => (u, v),
            _ => {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    content: trimmed.to_string(),
                })
            }
        };
        let mut intern = |orig: u32| -> u32 {
            *ids.entry(orig).or_insert_with(|| {
                original_ids.push(orig);
                (original_ids.len() - 1) as u32
            })
        };
        let (cu, cv) = (intern(u), intern(v));
        edges.push((cu, cv));
    }
    let mut builder = GraphBuilder::new(original_ids.len());
    for (u, v) in edges {
        builder.add_edge(u, v);
    }
    let (graph, stats) = builder.finish().map_err(IoError::Graph)?;
    Ok(LoadedGraph {
        graph,
        original_ids,
        stats,
    })
}

/// Writes the graph as a `u v` edge list (compacted IDs), one edge per
/// line with `u < v`.
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# trilist edge list: n={} m={}",
        graph.n(),
        graph.m()
    )?;
    for (u, v) in graph.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(loaded.graph.n(), 4);
        assert_eq!(loaded.graph.m(), 4);
        assert_eq!(loaded.stats, BuilderStats::default());
    }

    #[test]
    fn compacts_sparse_ids_and_keeps_originals() {
        let input = "# comment\n100 200\n200 300\n\n100 300\n";
        let loaded = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(loaded.graph.n(), 3);
        assert_eq!(loaded.graph.m(), 3);
        assert_eq!(loaded.original_ids, vec![100, 200, 300]);
    }

    #[test]
    fn erases_loops_and_duplicates() {
        let input = "1 1\n1 2\n2 1\n2 3\n";
        let loaded = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(loaded.graph.m(), 2);
        assert_eq!(loaded.stats.loops_dropped, 1);
        assert_eq!(loaded.stats.duplicates_dropped, 1);
    }

    #[test]
    fn rejects_garbage() {
        let err = read_edge_list("1 2\nhello world\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tabs_and_extra_columns() {
        // extra columns (weights) are ignored
        let input = "0\t1\t0.5\n1\t2\t0.7\n";
        let loaded = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(loaded.graph.m(), 2);
    }

    #[test]
    fn empty_input() {
        let loaded = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(loaded.graph.n(), 0);
    }
}
