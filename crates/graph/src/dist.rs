//! Degree distributions: discretized Pareto, truncation, and iid sampling.
//!
//! The paper's random-graph family starts from a CDF `F(x)` on integers in
//! `[1, ∞)`, a monotone truncation function `t_n → ∞`, and the truncated
//! distribution `F_n(x) = F(x) / F(t_n)` on `[1, t_n]` (§1.2). Degrees are
//! drawn iid from `F_n`. The canonical choice (§7.1) is the discretized
//! Pareto `F(x) = 1 − (1 + ⌊x⌋/β)^{−α}`, obtained by rounding up a continuous
//! Pareto variable.

use crate::degree::DegreeSequence;
use rand::Rng;

/// A discrete degree distribution on non-negative integers.
///
/// Implementations expose the CDF at integer points; the pmf and quantile
/// function are derived. Degrees of zero are permitted by the trait but all
/// provided distributions place their mass on `[1, ∞)` as the paper assumes.
pub trait DegreeModel {
    /// `F(k) = P(D ≤ k)` for integer `k ≥ 0`. Must be non-decreasing with
    /// `F(∞) = 1`.
    fn cdf(&self, k: u64) -> f64;

    /// Survival `P(D > k) = 1 − F(k)`. Override when a direct form exists:
    /// in the tail `F(k) → 1` and `1 − cdf(k)` loses all precision, which
    /// matters for the jump-compressed model (Algorithm 2) at `t_n ≫ 10⁹`.
    fn sf(&self, k: u64) -> f64 {
        1.0 - self.cdf(k)
    }

    /// Upper bound of the support, if the distribution is truncated.
    fn support_max(&self) -> Option<u64> {
        None
    }

    /// `P(D = k)`, computed from survival differences for tail precision.
    fn pmf(&self, k: u64) -> f64 {
        if k == 0 {
            self.cdf(0)
        } else {
            (self.sf(k - 1) - self.sf(k)).max(0.0)
        }
    }

    /// Smallest `k` with `F(k) ≥ u`, for `u ∈ [0, 1)`.
    fn quantile(&self, u: f64) -> u64;

    /// Exact mean by summation over the support. Only call on truncated
    /// distributions with a reasonable `t_n`; `O(t_n)` time.
    fn mean_exact(&self) -> f64 {
        let t = self
            .support_max()
            .expect("mean_exact requires a truncated distribution");
        // E[D] = Σ_{k≥0} P(D > k)
        (0..t).map(|k| self.sf(k)).sum()
    }

    /// Draws one degree.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64
    where
        Self: Sized,
    {
        self.quantile(rng.gen::<f64>())
    }
}

/// Truncation schedules `t_n` from §3.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Truncation {
    /// `t_n = ⌊√n⌋` — deterministically AMRC (max degree ≤ √n).
    Root,
    /// `t_n = n − 1` — unconstrained for heavy tails.
    Linear,
    /// A fixed cutoff, for experiments that sweep `t` directly.
    Fixed(u64),
}

impl Truncation {
    /// The cutoff for a graph of `n` nodes.
    pub fn t_n(&self, n: usize) -> u64 {
        match *self {
            Truncation::Root => (n as f64).sqrt().floor() as u64,
            Truncation::Linear => (n as u64).saturating_sub(1),
            Truncation::Fixed(t) => t,
        }
        .max(1)
    }
}

/// Discretized Pareto: `F(x) = 1 − (1 + ⌊x⌋/β)^{−α}` on natural numbers,
/// produced by rounding up a continuous Pareto (Lomax) variable (§7.1).
#[derive(Clone, Copy, Debug)]
pub struct DiscretePareto {
    /// Tail index `α > 0`; smaller is heavier.
    pub alpha: f64,
    /// Scale `β > 0`.
    pub beta: f64,
}

impl DiscretePareto {
    /// A Pareto with the paper's evaluation convention `β = 30(α − 1)`,
    /// which keeps `E[D] ≈ 30.5` after discretization (§7.3). Requires
    /// `α > 1`.
    pub fn paper_beta(alpha: f64) -> Self {
        assert!(alpha > 1.0, "paper_beta requires alpha > 1 (got {alpha})");
        DiscretePareto {
            alpha,
            beta: 30.0 * (alpha - 1.0),
        }
    }

    /// Continuous CDF `F*(x) = 1 − (1 + x/β)^{−α}` of the underlying
    /// (pre-discretization) Pareto, for the continuous model (eq. 49).
    pub fn cdf_continuous(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (1.0 + x / self.beta).powf(-self.alpha)
        }
    }

    /// Continuous density `f*(x)` of the underlying Pareto.
    pub fn pdf_continuous(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.alpha / self.beta * (1.0 + x / self.beta).powf(-self.alpha - 1.0)
        }
    }

    /// Mean of the continuous Pareto, `β / (α − 1)` for `α > 1`.
    pub fn mean_continuous(&self) -> f64 {
        assert!(
            self.alpha > 1.0,
            "continuous Pareto mean diverges for alpha <= 1"
        );
        self.beta / (self.alpha - 1.0)
    }
}

impl DegreeModel for DiscretePareto {
    fn cdf(&self, k: u64) -> f64 {
        1.0 - (1.0 + k as f64 / self.beta).powf(-self.alpha)
    }

    fn sf(&self, k: u64) -> f64 {
        (1.0 + k as f64 / self.beta).powf(-self.alpha)
    }

    fn quantile(&self, u: f64) -> u64 {
        debug_assert!((0.0..1.0).contains(&u));
        // F(k) >= u  <=>  k >= β((1−u)^{−1/α} − 1); round up the continuous
        // draw, never below 1 (the support starts at 1).
        let x = self.beta * ((1.0 - u).powf(-1.0 / self.alpha) - 1.0);
        (x.ceil() as u64).max(1)
    }
}

/// Geometric distribution on `{1, 2, …}` with success probability `p`:
/// `P(D = k) = (1−p)^{k−1} p`. A light-tailed alternative for tests.
#[derive(Clone, Copy, Debug)]
pub struct Geometric {
    /// Success probability in `(0, 1]`.
    pub p: f64,
}

impl DegreeModel for Geometric {
    fn cdf(&self, k: u64) -> f64 {
        if k == 0 {
            0.0
        } else {
            1.0 - (1.0 - self.p).powi(k as i32)
        }
    }

    fn sf(&self, k: u64) -> f64 {
        if k == 0 {
            1.0
        } else {
            (1.0 - self.p).powi(k as i32)
        }
    }

    fn quantile(&self, u: f64) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        let k = ((1.0 - u).ln() / (1.0 - self.p).ln()).ceil() as u64;
        k.max(1)
    }
}

/// Zipf distribution on `{1, …, cap}`: `P(D = k) ∝ k^{−s}`.
///
/// An alternative heavy-tail law to the Lomax-type Pareto of §7.1 — mass
/// concentrated at `k = 1` with a pure power-law decay (tail index
/// `α = s − 1` in the paper's `P(D > x) ~ x^{−α}` convention). Useful for
/// checking that the model machinery is not Pareto-specific.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Exponent `s > 1`.
    pub s: f64,
    /// Largest supported value.
    pub cap: u64,
    /// Cached cumulative probabilities for quantile lookups.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution (precomputes the normalizer; `O(cap)`).
    pub fn new(s: f64, cap: u64) -> Self {
        assert!(s > 0.0 && cap >= 1);
        let mut cdf = Vec::with_capacity(cap as usize);
        let mut acc = 0.0;
        for k in 1..=cap {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let norm = acc;
        for v in &mut cdf {
            *v /= norm;
        }
        Zipf { s, cap, cdf }
    }
}

impl DegreeModel for Zipf {
    fn cdf(&self, k: u64) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.cdf[(k.min(self.cap) - 1) as usize]
        }
    }

    fn support_max(&self) -> Option<u64> {
        Some(self.cap)
    }

    fn quantile(&self, u: f64) -> u64 {
        debug_assert!((0.0..1.0).contains(&u));
        (self.cdf.partition_point(|&c| c < u) as u64 + 1).min(self.cap)
    }
}

/// Degenerate distribution at a fixed degree `d` (regular graphs in tests).
#[derive(Clone, Copy, Debug)]
pub struct Constant {
    /// The single supported degree.
    pub d: u64,
}

impl DegreeModel for Constant {
    fn cdf(&self, k: u64) -> f64 {
        if k >= self.d {
            1.0
        } else {
            0.0
        }
    }

    fn quantile(&self, _u: f64) -> u64 {
        self.d
    }
}

/// `F_n(x) = F(x) / F(t_n)` restricted to `[1, t_n]` (§1.2).
#[derive(Clone, Copy, Debug)]
pub struct Truncated<D> {
    inner: D,
    t: u64,
    norm: f64,
}

impl<D: DegreeModel> Truncated<D> {
    /// Truncates `inner` at `t ≥ 1`.
    pub fn new(inner: D, t: u64) -> Self {
        assert!(t >= 1, "truncation point must be at least 1");
        let norm = inner.cdf(t);
        assert!(norm > 0.0, "truncation point leaves zero mass");
        Truncated { inner, t, norm }
    }

    /// The cutoff `t_n`.
    pub fn t(&self) -> u64 {
        self.t
    }

    /// The untruncated distribution.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: DegreeModel> DegreeModel for Truncated<D> {
    fn cdf(&self, k: u64) -> f64 {
        if k >= self.t {
            1.0
        } else {
            self.inner.cdf(k) / self.norm
        }
    }

    fn sf(&self, k: u64) -> f64 {
        if k >= self.t {
            0.0
        } else {
            // P(D_n > k) = (F(t) − F(k)) / F(t) = (S(k) − S(t)) / F(t)
            (self.inner.sf(k) - self.inner.sf(self.t)) / self.norm
        }
    }

    fn support_max(&self) -> Option<u64> {
        Some(self.t)
    }

    fn quantile(&self, u: f64) -> u64 {
        self.inner.quantile(u * self.norm).min(self.t).max(1)
    }
}

/// Draws an iid degree sequence of length `n` from `model`, then repairs
/// parity (the paper's one-edge slack). The returned flag reports whether a
/// repair was needed.
pub fn sample_degree_sequence<D: DegreeModel, R: Rng + ?Sized>(
    model: &D,
    n: usize,
    rng: &mut R,
) -> (DegreeSequence, bool) {
    let degrees: Vec<u32> = (0..n)
        .map(|_| model.quantile(rng.gen::<f64>()).min(u32::MAX as u64) as u32)
        .collect();
    let mut seq = DegreeSequence::new(degrees);
    let repaired = seq.make_even();
    (seq, repaired)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pareto_cdf_shape() {
        let p = DiscretePareto {
            alpha: 1.5,
            beta: 15.0,
        };
        assert_eq!(p.cdf(0), 0.0);
        assert!(p.cdf(1) > 0.0);
        assert!(p.cdf(100) < 1.0);
        assert!(p.cdf(10) < p.cdf(20));
        // matches the closed form at a point
        let want = 1.0 - (1.0 + 10.0 / 15.0f64).powf(-1.5);
        assert!((p.cdf(10) - want).abs() < 1e-12);
    }

    #[test]
    fn pareto_quantile_inverts_cdf() {
        let p = DiscretePareto {
            alpha: 1.5,
            beta: 15.0,
        };
        for &u in &[0.0, 0.1, 0.5, 0.9, 0.99, 0.99999] {
            let k = p.quantile(u);
            assert!(p.cdf(k) >= u - 1e-12, "u={u} k={k}");
            if k > 1 {
                assert!(p.cdf(k - 1) < u + 1e-12, "u={u} k={k}");
            }
        }
    }

    #[test]
    fn pareto_discretization_matches_round_up() {
        // P(ceil(X*) = k) = F*(k) - F*(k-1) = F(k) - F(k-1)
        let p = DiscretePareto {
            alpha: 2.0,
            beta: 10.0,
        };
        for k in 1..50u64 {
            let cont = p.cdf_continuous(k as f64) - p.cdf_continuous(k as f64 - 1.0);
            assert!((p.pmf(k) - cont).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_beta_mean_is_about_30_5() {
        // E[D] for the discretized Pareto with β = 30(α−1) is ≈ 30.5 (§7.3):
        // rounding up adds about 1/2 to the continuous mean of 30.
        for &alpha in &[1.5, 1.7, 2.1, 3.0] {
            let p = DiscretePareto::paper_beta(alpha);
            let t = Truncated::new(p, 4_000_000);
            let mean = t.mean_exact();
            assert!((mean - 30.5).abs() < 0.6, "alpha={alpha} mean={mean}");
        }
    }

    #[test]
    fn truncation_schedules() {
        assert_eq!(Truncation::Root.t_n(10_000), 100);
        assert_eq!(Truncation::Linear.t_n(10_000), 9_999);
        assert_eq!(Truncation::Fixed(42).t_n(10_000), 42);
        assert_eq!(Truncation::Root.t_n(2), 1);
    }

    #[test]
    fn truncated_cdf_normalized() {
        let p = DiscretePareto {
            alpha: 1.2,
            beta: 6.0,
        };
        let t = Truncated::new(p, 50);
        assert_eq!(t.cdf(50), 1.0);
        assert_eq!(t.cdf(1_000), 1.0);
        assert!((t.cdf(25) - p.cdf(25) / p.cdf(50)).abs() < 1e-12);
        // pmf sums to one over the support
        let total: f64 = (1..=50).map(|k| t.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn truncated_quantile_stays_in_support() {
        let p = DiscretePareto {
            alpha: 1.1,
            beta: 3.0,
        };
        let t = Truncated::new(p, 30);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let k = t.sample(&mut rng);
            assert!((1..=30).contains(&k));
        }
    }

    #[test]
    fn geometric_cdf_and_quantile() {
        let g = Geometric { p: 0.25 };
        assert!((g.cdf(1) - 0.25).abs() < 1e-12);
        assert!((g.pmf(2) - 0.75 * 0.25).abs() < 1e-12);
        for &u in &[0.1, 0.3, 0.6, 0.95] {
            let k = g.quantile(u);
            assert!(g.cdf(k) >= u - 1e-12);
            if k > 1 {
                assert!(g.cdf(k - 1) < u + 1e-12);
            }
        }
    }

    #[test]
    fn zipf_pmf_and_quantile() {
        let z = Zipf::new(2.0, 100);
        // pmf ratios follow k^{-2}
        let p1 = z.pmf(1);
        let p2 = z.pmf(2);
        assert!((p1 / p2 - 4.0).abs() < 1e-9);
        // CDF endpoints
        assert_eq!(z.cdf(0), 0.0);
        assert!((z.cdf(100) - 1.0).abs() < 1e-12);
        // quantile inverts
        for &u in &[0.01, 0.3, 0.61, 0.95, 0.999] {
            let k = z.quantile(u);
            assert!(z.cdf(k) >= u - 1e-12);
            if k > 1 {
                assert!(z.cdf(k - 1) < u + 1e-12);
            }
        }
        // ~60.8% of the s=2 mass sits at k = 1 (1/ζ(2) truncated)
        assert!((p1 - 0.608).abs() < 0.01);
    }

    #[test]
    fn zipf_feeds_the_cost_machinery() {
        use rand::SeedableRng;
        let z = Zipf::new(2.5, 50);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let (seq, _) = sample_degree_sequence(&z, 500, &mut rng);
        assert!(seq.has_even_sum());
        assert!(seq.max() <= 50);
        // pmf sums to 1
        let total: f64 = (1..=50u64).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_distribution() {
        let c = Constant { d: 4 };
        assert_eq!(c.quantile(0.99), 4);
        assert_eq!(c.pmf(4), 1.0);
        assert_eq!(c.pmf(3), 0.0);
        let t = Truncated::new(c, 10);
        assert_eq!(t.quantile(0.5), 4);
    }

    #[test]
    fn sampled_sequence_has_even_sum() {
        let p = Truncated::new(
            DiscretePareto {
                alpha: 1.5,
                beta: 15.0,
            },
            100,
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let (seq, _) = sample_degree_sequence(&p, 101, &mut rng);
            assert!(seq.has_even_sum());
            assert!(seq.max() <= 100);
            assert!(seq.as_slice().iter().all(|&d| d >= 1 || d == 0));
        }
    }

    mod props {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn quantile_inverts_cdf(
                alpha in 1.01f64..4.0,
                beta in 0.5f64..60.0,
                u in 0.0f64..0.9999,
            ) {
                let p = DiscretePareto { alpha, beta };
                let k = p.quantile(u);
                prop_assert!(k >= 1);
                prop_assert!(p.cdf(k) >= u - 1e-9);
                if k > 1 {
                    prop_assert!(p.cdf(k - 1) < u + 1e-9);
                }
            }

            #[test]
            fn sf_is_one_minus_cdf(alpha in 0.5f64..4.0, beta in 0.5f64..60.0, k in 0u64..10_000) {
                let p = DiscretePareto { alpha, beta };
                prop_assert!((p.sf(k) - (1.0 - p.cdf(k))).abs() < 1e-9);
            }

            #[test]
            fn truncated_pmf_nonnegative_and_normalized(
                alpha in 1.01f64..3.0,
                t in 2u64..300,
            ) {
                let p = Truncated::new(DiscretePareto { alpha, beta: 10.0 }, t);
                let mut total = 0.0;
                for k in 1..=t {
                    let mass = p.pmf(k);
                    prop_assert!(mass >= 0.0);
                    total += mass;
                }
                prop_assert!((total - 1.0).abs() < 1e-9);
            }

            #[test]
            fn sampled_degrees_in_support(seed in 0u64..10_000, t in 2u64..100) {
                use rand::SeedableRng;
                let p = Truncated::new(DiscretePareto { alpha: 1.3, beta: 4.0 }, t);
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                for _ in 0..50 {
                    let k = p.sample(&mut rng);
                    prop_assert!((1..=t).contains(&k));
                }
            }
        }
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let p = Truncated::new(
            DiscretePareto {
                alpha: 2.0,
                beta: 10.0,
            },
            64,
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let draws = 200_000;
        let mut counts = vec![0u64; 65];
        for _ in 0..draws {
            counts[p.sample(&mut rng) as usize] += 1;
        }
        for k in 1..=10u64 {
            let emp = counts[k as usize] as f64 / draws as f64;
            assert!(
                (emp - p.pmf(k)).abs() < 0.01,
                "k={k} emp={emp} pmf={}",
                p.pmf(k)
            );
        }
    }
}
