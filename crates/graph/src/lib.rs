//! # trilist-graph
//!
//! Graph substrate for the PODS'17 triangle-listing reproduction:
//! undirected simple graphs in CSR form with sorted adjacency lists, degree
//! sequences with Erdős–Gallai graphicality, truncated heavy-tailed degree
//! distributions, and two random-graph generators that realize a prescribed
//! degree sequence (configuration model with erasure, and the §7.2
//! residual-degree proportional sampler).
//!
//! ```
//! use rand::SeedableRng;
//! use trilist_graph::{
//!     dist::{sample_degree_sequence, DiscretePareto, Truncated, Truncation},
//!     gen::{GraphGenerator, ResidualSampler},
//! };
//!
//! let n = 1_000;
//! let t = Truncation::Root.t_n(n);
//! let dist = Truncated::new(DiscretePareto::paper_beta(1.5), t);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let (target, _) = sample_degree_sequence(&dist, n, &mut rng);
//! let generated = ResidualSampler.generate(&target, &mut rng);
//! assert_eq!(generated.graph.n(), n);
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod components;
pub mod csr;
pub mod degree;
pub mod dist;
pub mod fenwick;
pub mod gen;
pub mod io;

pub use builder::{BuilderStats, GraphBuilder};
pub use csr::{Graph, NodeId};
pub use degree::DegreeSequence;
pub use fenwick::Fenwick;

/// Errors raised while constructing graphs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An edge `(node, node)` was supplied.
    SelfLoop {
        /// The offending node.
        node: NodeId,
    },
    /// The same undirected edge was supplied twice.
    DuplicateEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// A node ID is not below `n`.
    NodeOutOfRange {
        /// The offending node ID.
        node: NodeId,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// `u` lists `v` as a neighbor but not vice versa.
    Asymmetric {
        /// The node holding the dangling reference.
        u: NodeId,
        /// The node missing the reverse edge.
        v: NodeId,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph of {n} nodes")
            }
            GraphError::Asymmetric { u, v } => {
                write!(f, "asymmetric adjacency: {u} lists {v} but not vice versa")
            }
        }
    }
}

impl std::error::Error for GraphError {}
