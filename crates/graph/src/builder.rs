//! Incremental construction of simple graphs from noisy edge streams.
//!
//! The configuration-model generator (and any loader of real edge lists)
//! produces self-loops and duplicate edges; [`GraphBuilder`] erases them,
//! which is exactly the "erasure" step described in §7.2.

use crate::csr::{Graph, NodeId};
use crate::GraphError;

/// Accumulates undirected edges, silently dropping self-loops and duplicate
/// edges, then produces a [`Graph`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    adj: Vec<Vec<NodeId>>,
    loops_dropped: u64,
    duplicates_dropped: u64,
}

impl GraphBuilder {
    /// A builder for a graph on `n` nodes with no edges yet.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            adj: vec![Vec::new(); n],
            loops_dropped: 0,
            duplicates_dropped: 0,
        }
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// Self-loops and edges already present are counted and dropped.
    /// Duplicate detection is deferred to [`Self::finish`] (a linear sweep)
    /// so insertion stays O(1); the drop counters are only final after
    /// `finish`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        debug_assert!((u as usize) < self.n && (v as usize) < self.n);
        if u == v {
            self.loops_dropped += 1;
            return;
        }
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
    }

    /// True when edge `{u, v}` has been added (linear scan; intended for the
    /// generator's small working sets and for tests).
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.adj[u as usize].len() <= self.adj[v as usize].len() {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a as usize].contains(&b)
    }

    /// Degree of `u` counted over edges added so far (duplicates included
    /// until `finish`).
    pub fn current_degree(&self, u: NodeId) -> usize {
        self.adj[u as usize].len()
    }

    /// Number of self-loops dropped so far.
    pub fn loops_dropped(&self) -> u64 {
        self.loops_dropped
    }

    /// Number of duplicate edges dropped (final only after [`Self::finish`]).
    pub fn duplicates_dropped(&self) -> u64 {
        self.duplicates_dropped
    }

    /// Deduplicates and produces the finished simple graph.
    pub fn finish(mut self) -> Result<(Graph, BuilderStats), GraphError> {
        for list in &mut self.adj {
            list.sort_unstable();
            let before = list.len();
            list.dedup();
            self.duplicates_dropped += (before - list.len()) as u64;
        }
        // each duplicate was counted once per endpoint
        self.duplicates_dropped /= 2;
        let stats = BuilderStats {
            loops_dropped: self.loops_dropped,
            duplicates_dropped: self.duplicates_dropped,
        };
        Ok((Graph::from_adjacency(self.adj)?, stats))
    }
}

/// How much erasure the builder performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BuilderStats {
    /// Self-loops dropped.
    pub loops_dropped: u64,
    /// Parallel edges collapsed.
    pub duplicates_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_graph() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(2, 1);
        b.add_edge(3, 0);
        let (g, stats) = b.finish().unwrap();
        assert_eq!(g.m(), 3);
        assert_eq!(stats, BuilderStats::default());
    }

    #[test]
    fn drops_loops_and_duplicates() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(1, 2);
        let (g, stats) = b.finish().unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(stats.loops_dropped, 1);
        assert_eq!(stats.duplicates_dropped, 1);
    }

    #[test]
    fn contains_edge_sees_pending_edges() {
        let mut b = GraphBuilder::new(3);
        assert!(!b.contains_edge(0, 1));
        b.add_edge(0, 1);
        assert!(b.contains_edge(0, 1));
        assert!(b.contains_edge(1, 0));
        assert!(!b.contains_edge(1, 2));
    }

    #[test]
    fn triple_edge_collapses_to_one() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let (g, stats) = b.finish().unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(stats.duplicates_dropped, 2);
    }
}
