//! Fenwick tree (binary indexed tree) over `u64` weights.
//!
//! Used by the residual-degree random-graph generator (paper §7.2) to sample
//! neighbors in proportion to their remaining degree in `O(log n)` per draw.
//! The paper calls this structure an "interval tree that records the residual
//! probability mass of degree on both sides of each node"; a Fenwick tree
//! provides the same prefix-mass queries with a smaller constant.

/// A Fenwick tree over `n` non-negative integer weights.
///
/// Supports point updates, prefix sums, and a logarithmic *weighted
/// selection*: given a target mass `t < total()`, find the first index whose
/// cumulative weight exceeds `t`.
#[derive(Clone, Debug)]
pub struct Fenwick {
    /// 1-based internal array; `tree[i]` covers `i - lowbit(i) + 1 ..= i`.
    tree: Vec<u64>,
    /// Current weight of each element (0-based), kept for O(1) reads.
    weight: Vec<u64>,
    /// Sum of all weights.
    total: u64,
    /// Largest power of two `<= n`, used by the descent in [`Self::select`].
    top_bit: usize,
}

impl Fenwick {
    /// Creates a tree with all weights zero.
    pub fn new(n: usize) -> Self {
        let top_bit = if n == 0 {
            0
        } else {
            usize::BITS as usize - 1 - n.leading_zeros() as usize
        };
        Fenwick {
            tree: vec![0; n + 1],
            weight: vec![0; n],
            total: 0,
            top_bit: 1 << top_bit,
        }
    }

    /// Builds a tree from initial weights in `O(n)`.
    pub fn from_weights(weights: &[u64]) -> Self {
        let n = weights.len();
        let mut f = Fenwick::new(n);
        f.weight.copy_from_slice(weights);
        for (i, &w) in weights.iter().enumerate() {
            let j = i + 1;
            f.tree[j] += w;
            let parent = j + (j & j.wrapping_neg());
            if parent <= n {
                let add = f.tree[j];
                f.tree[parent] += add;
            }
            f.total += w;
        }
        f
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.weight.len()
    }

    /// True when the tree tracks zero elements.
    pub fn is_empty(&self) -> bool {
        self.weight.is_empty()
    }

    /// Current weight of element `i`.
    pub fn get(&self, i: usize) -> u64 {
        self.weight[i]
    }

    /// Sum of all weights.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sets element `i` to weight `w`.
    pub fn set(&mut self, i: usize, w: u64) {
        let old = self.weight[i];
        if w == old {
            return;
        }
        self.weight[i] = w;
        if w > old {
            let delta = w - old;
            self.total += delta;
            let mut j = i + 1;
            while j < self.tree.len() {
                self.tree[j] += delta;
                j += j & j.wrapping_neg();
            }
        } else {
            let delta = old - w;
            self.total -= delta;
            let mut j = i + 1;
            while j < self.tree.len() {
                self.tree[j] -= delta;
                j += j & j.wrapping_neg();
            }
        }
    }

    /// Adds `delta` to element `i` (saturating at zero is the caller's job;
    /// this panics in debug builds on underflow).
    pub fn add(&mut self, i: usize, delta: i64) {
        let cur = self.weight[i] as i64 + delta;
        debug_assert!(cur >= 0, "fenwick weight underflow at {i}");
        self.set(i, cur as u64);
    }

    /// Sum of weights of elements `0..=i`.
    pub fn prefix_sum(&self, i: usize) -> u64 {
        let mut j = (i + 1).min(self.weight.len());
        let mut s = 0;
        while j > 0 {
            s += self.tree[j];
            j -= j & j.wrapping_neg();
        }
        s
    }

    /// Finds the smallest index `i` such that `prefix_sum(i) > target`.
    ///
    /// Requires `target < total()`. This is the weighted-sampling primitive:
    /// drawing `target` uniformly from `[0, total)` selects element `i` with
    /// probability `weight[i] / total`.
    pub fn select(&self, mut target: u64) -> usize {
        debug_assert!(
            target < self.total,
            "select target {target} >= total {}",
            self.total
        );
        let mut pos = 0usize;
        let mut step = self.top_bit;
        while step > 0 {
            let next = pos + step;
            if next < self.tree.len() && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        // `pos` is the largest index with prefix_sum(pos-1) <= target, 1-based
        // exclusive; convert to the 0-based element index.
        pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let f = Fenwick::new(0);
        assert_eq!(f.total(), 0);
        assert_eq!(f.len(), 0);
        assert!(f.is_empty());
    }

    #[test]
    fn from_weights_matches_incremental() {
        let w = [3u64, 0, 5, 1, 2, 0, 7];
        let bulk = Fenwick::from_weights(&w);
        let mut inc = Fenwick::new(w.len());
        for (i, &x) in w.iter().enumerate() {
            inc.set(i, x);
        }
        assert_eq!(bulk.total(), inc.total());
        for (i, &wi) in w.iter().enumerate() {
            assert_eq!(bulk.prefix_sum(i), inc.prefix_sum(i), "prefix at {i}");
            assert_eq!(bulk.get(i), wi);
        }
    }

    #[test]
    fn prefix_sums() {
        let f = Fenwick::from_weights(&[1, 2, 3, 4]);
        assert_eq!(f.prefix_sum(0), 1);
        assert_eq!(f.prefix_sum(1), 3);
        assert_eq!(f.prefix_sum(2), 6);
        assert_eq!(f.prefix_sum(3), 10);
        assert_eq!(f.total(), 10);
    }

    #[test]
    fn select_boundaries() {
        let f = Fenwick::from_weights(&[2, 0, 3, 1]);
        // masses: [0,2) -> 0, [2,5) -> 2, [5,6) -> 3
        assert_eq!(f.select(0), 0);
        assert_eq!(f.select(1), 0);
        assert_eq!(f.select(2), 2);
        assert_eq!(f.select(4), 2);
        assert_eq!(f.select(5), 3);
    }

    #[test]
    fn select_skips_zero_weight() {
        let f = Fenwick::from_weights(&[0, 0, 1, 0, 2]);
        assert_eq!(f.select(0), 2);
        assert_eq!(f.select(1), 4);
        assert_eq!(f.select(2), 4);
    }

    #[test]
    fn set_and_update() {
        let mut f = Fenwick::from_weights(&[5, 5, 5]);
        f.set(1, 0);
        assert_eq!(f.total(), 10);
        assert_eq!(f.prefix_sum(1), 5);
        f.add(1, 2);
        assert_eq!(f.get(1), 2);
        assert_eq!(f.total(), 12);
        f.add(0, -5);
        assert_eq!(f.get(0), 0);
        assert_eq!(f.select(0), 1);
    }

    #[test]
    fn select_distribution_is_proportional() {
        use rand::{Rng, SeedableRng};
        let w = [10u64, 0, 30, 60];
        let f = Fenwick::from_weights(&w);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut counts = [0u64; 4];
        let draws = 100_000;
        for _ in 0..draws {
            counts[f.select(rng.gen_range(0..f.total()))] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac = |c: u64| c as f64 / draws as f64;
        assert!((frac(counts[0]) - 0.1).abs() < 0.01);
        assert!((frac(counts[2]) - 0.3).abs() < 0.01);
        assert!((frac(counts[3]) - 0.6).abs() < 0.01);
    }

    mod props {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prefix_sums_match_naive(weights in proptest::collection::vec(0u64..1000, 0..200)) {
                let f = Fenwick::from_weights(&weights);
                let mut acc = 0u64;
                for (i, &w) in weights.iter().enumerate() {
                    acc += w;
                    prop_assert_eq!(f.prefix_sum(i), acc);
                }
                prop_assert_eq!(f.total(), acc);
            }

            #[test]
            fn select_inverts_prefix_sum(
                weights in proptest::collection::vec(0u64..50, 1..100),
                targets in proptest::collection::vec(0.0f64..1.0, 10),
            ) {
                let f = Fenwick::from_weights(&weights);
                prop_assume!(f.total() > 0);
                for t in targets {
                    let target = (t * f.total() as f64) as u64;
                    let idx = f.select(target);
                    // prefix_sum(idx) > target and prefix_sum(idx-1) <= target
                    prop_assert!(f.prefix_sum(idx) > target);
                    if idx > 0 {
                        prop_assert!(f.prefix_sum(idx - 1) <= target);
                    }
                    prop_assert!(f.get(idx) > 0);
                }
            }

            #[test]
            fn updates_preserve_invariants(
                weights in proptest::collection::vec(0u64..100, 1..80),
                updates in proptest::collection::vec((0usize..80, 0u64..100), 0..40),
            ) {
                let mut f = Fenwick::from_weights(&weights);
                let mut shadow = weights.clone();
                for (i, w) in updates {
                    let i = i % shadow.len();
                    f.set(i, w);
                    shadow[i] = w;
                }
                let rebuilt = Fenwick::from_weights(&shadow);
                prop_assert_eq!(f.total(), rebuilt.total());
                for i in 0..shadow.len() {
                    prop_assert_eq!(f.prefix_sum(i), rebuilt.prefix_sum(i));
                }
            }
        }
    }

    #[test]
    fn non_power_of_two_sizes() {
        for n in [1usize, 2, 3, 5, 17, 63, 64, 65, 100] {
            let w: Vec<u64> = (0..n as u64).map(|i| i % 4 + 1).collect();
            let f = Fenwick::from_weights(&w);
            let mut acc = 0u64;
            for (i, &wi) in w.iter().enumerate() {
                acc += wi;
                assert_eq!(f.prefix_sum(i), acc);
            }
            // every unit of mass selects the right element
            let mut idx = 0usize;
            let mut below = 0u64;
            for t in 0..f.total() {
                while t >= below + w[idx] {
                    below += w[idx];
                    idx += 1;
                }
                assert_eq!(f.select(t), idx, "n={n} t={t}");
            }
        }
    }
}
