//! Undirected simple graphs in compressed sparse row (CSR) form.
//!
//! Adjacency lists are sorted ascending by node ID, matching the paper's
//! standing assumption (§2: "adjacency lists in graphs are sorted ascending
//! by node ID"). Each undirected edge `{u, v}` appears twice, once in each
//! endpoint's list.

use crate::GraphError;

/// Node identifier. Graphs with more than `u32::MAX` nodes are outside the
/// scope of this in-memory study.
pub type NodeId = u32;

/// An immutable undirected simple graph (no self-loops, no parallel edges)
/// in CSR form with ascending-sorted adjacency lists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors` for node `v`.
    offsets: Vec<usize>,
    /// Concatenated adjacency lists, each sorted ascending.
    neighbors: Vec<NodeId>,
}

impl Graph {
    /// Builds a graph from per-node adjacency lists.
    ///
    /// Lists are sorted internally; returns an error if any list contains a
    /// self-loop, a duplicate, an out-of-range ID, or if the adjacency is not
    /// symmetric.
    pub fn from_adjacency(mut adj: Vec<Vec<NodeId>>) -> Result<Self, GraphError> {
        let n = adj.len();
        for list in &mut adj {
            list.sort_unstable();
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let total: usize = adj.iter().map(Vec::len).sum();
        let mut neighbors = Vec::with_capacity(total);
        for (v, list) in adj.iter().enumerate() {
            for pair in list.windows(2) {
                if pair[0] == pair[1] {
                    return Err(GraphError::DuplicateEdge {
                        u: v as NodeId,
                        v: pair[0],
                    });
                }
            }
            for &u in list {
                if u as usize >= n {
                    return Err(GraphError::NodeOutOfRange { node: u, n });
                }
                if u as usize == v {
                    return Err(GraphError::SelfLoop { node: u });
                }
                neighbors.push(u);
            }
            offsets.push(neighbors.len());
        }
        let g = Graph { offsets, neighbors };
        g.check_symmetry()?;
        Ok(g)
    }

    /// Builds a graph from an undirected edge list.
    ///
    /// Self-loops and duplicate edges are rejected; use
    /// [`crate::builder::GraphBuilder`] to deduplicate first.
    ///
    /// ```
    /// use trilist_graph::Graph;
    /// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
    /// assert_eq!(g.m(), 3);
    /// assert!(g.has_edge(2, 0));
    /// ```
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            if u as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: u, n });
            }
            if v as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        Self::from_adjacency(adj)
    }

    fn check_symmetry(&self) -> Result<(), GraphError> {
        for v in 0..self.n() as NodeId {
            for &u in self.neighbors(v) {
                if !self.has_edge(u, v) {
                    return Err(GraphError::Asymmetric { u: v, v: u });
                }
            }
        }
        Ok(())
    }

    /// Number of nodes `n`.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    pub fn m(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of node `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// All degrees, indexed by node ID.
    pub fn degrees(&self) -> Vec<u32> {
        (0..self.n() as NodeId)
            .map(|v| self.degree(v) as u32)
            .collect()
    }

    /// Neighbors of `v`, sorted ascending.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Edge-existence test via binary search: `O(log deg(u))`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n() as NodeId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// The maximum degree, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.n() as NodeId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Sum of `deg(v)^2` over all nodes — the unoriented candidate-edge count
    /// `Θ(Σ dᵢ²)` cited in §1.1 drives vertex/edge iterators without
    /// orientation.
    pub fn degree_square_sum(&self) -> u64 {
        (0..self.n() as NodeId)
            .map(|v| (self.degree(v) as u64).pow(2))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Graph {
        // 0-1, 0-2, 1-2 (triangle), 2-3 (tail)
        Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle_plus_tail();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.degree_square_sum(), 4 + 4 + 9 + 1);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(3, 2));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(1, 3));
    }

    #[test]
    fn edges_listed_once_ordered() {
        let g = triangle_plus_tail();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn rejects_self_loop() {
        let err = Graph::from_edges(2, &[(0, 0)]).unwrap_err();
        assert!(matches!(err, GraphError::SelfLoop { node: 0 }));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let err = Graph::from_edges(3, &[(0, 1), (1, 0)]).unwrap_err();
        assert!(matches!(err, GraphError::DuplicateEdge { .. }));
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Graph::from_edges(2, &[(0, 5)]).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 5, n: 2 }));
    }

    #[test]
    fn rejects_asymmetric_adjacency() {
        let err = Graph::from_adjacency(vec![vec![1], vec![]]).unwrap_err();
        assert!(matches!(err, GraphError::Asymmetric { .. }));
    }

    #[test]
    fn adjacency_is_sorted_even_if_input_is_not() {
        let g = Graph::from_adjacency(vec![vec![2, 1], vec![0, 2], vec![1, 0]]).unwrap();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        let g = Graph::from_edges(3, &[]).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 0);
        assert_eq!(g.degree(1), 0);
    }
}
