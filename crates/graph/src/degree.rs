//! Degree sequences: parity repair, graphicality, and ascending order.
//!
//! The paper draws an iid degree sequence `D_n` from a truncated distribution
//! `F_n` and assumes it "is graphic with probability 1 − o(1), or can be made
//! such by removal of one edge" (§1.2). [`DegreeSequence::make_even`]
//! implements that one-edge repair, and [`DegreeSequence::is_graphical`]
//! implements the Erdős–Gallai test used to verify the assumption in tests.

/// A multiset of target node degrees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegreeSequence {
    degrees: Vec<u32>,
}

impl DegreeSequence {
    /// Wraps raw degrees.
    pub fn new(degrees: Vec<u32>) -> Self {
        DegreeSequence { degrees }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.degrees.len()
    }

    /// Degrees indexed by node.
    pub fn as_slice(&self) -> &[u32] {
        &self.degrees
    }

    /// Sum of all degrees (`2m` when realized exactly).
    pub fn sum(&self) -> u64 {
        self.degrees.iter().map(|&d| d as u64).sum()
    }

    /// Largest requested degree (`L_n` in Definition 1).
    pub fn max(&self) -> u32 {
        self.degrees.iter().copied().max().unwrap_or(0)
    }

    /// True when the degree sum is even (necessary for realizability).
    pub fn has_even_sum(&self) -> bool {
        self.sum().is_multiple_of(2)
    }

    /// Repairs odd parity by decrementing one maximum-degree node —
    /// the paper's "removal of one edge" (one endpoint's worth). If the only
    /// positive degree is 1, it is zeroed instead. Returns whether a change
    /// was made.
    pub fn make_even(&mut self) -> bool {
        if self.has_even_sum() {
            return false;
        }
        let i = self
            .degrees
            .iter()
            .enumerate()
            .max_by_key(|(_, &d)| d)
            .map(|(i, _)| i)
            .expect("odd sum implies non-empty sequence");
        debug_assert!(self.degrees[i] > 0);
        self.degrees[i] -= 1;
        true
    }

    /// Erdős–Gallai test: the sequence is realizable by a simple graph iff
    /// the sum is even and for every `k`
    /// `Σ_{i≤k} d_(i) ≤ k(k−1) + Σ_{i>k} min(d_(i), k)` with `d_(i)` sorted
    /// descending. Runs in `O(n log n)`.
    ///
    /// ```
    /// use trilist_graph::DegreeSequence;
    /// assert!(DegreeSequence::new(vec![2, 2, 2]).is_graphical());        // triangle
    /// assert!(!DegreeSequence::new(vec![3, 3, 1, 1]).is_graphical());    // classic failure
    /// ```
    pub fn is_graphical(&self) -> bool {
        if self.degrees.is_empty() {
            return true;
        }
        if !self.has_even_sum() {
            return false;
        }
        let n = self.degrees.len();
        let mut d: Vec<u64> = self.degrees.iter().map(|&x| x as u64).collect();
        d.sort_unstable_by(|a, b| b.cmp(a));
        if d[0] as usize >= n {
            return false;
        }
        // suffix[k] = sum of d[k..]
        let mut suffix = vec![0u64; n + 1];
        for k in (0..n).rev() {
            suffix[k] = suffix[k + 1] + d[k];
        }
        let mut left = 0u64;
        for k in 1..=n {
            left += d[k - 1];
            // Σ_{i>k} min(d_i, k): d is sorted descending, so find the first
            // index j >= k with d[j] <= k via binary search.
            let kk = k as u64;
            let tail = &d[k..];
            let j = tail.partition_point(|&x| x > kk);
            let min_sum = kk * j as u64 + (suffix[k + j]);
            if left > kk * (kk - 1) + min_sum {
                return false;
            }
        }
        true
    }

    /// Nodes sorted ascending by degree (stable: ties keep node order).
    /// Returns `order` such that `order[pos]` is the node occupying ascending
    /// position `pos` — the sequence `A_n` of §3.1.
    pub fn ascending_order(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.degrees.len() as u32).collect();
        order.sort_by_key(|&v| self.degrees[v as usize]);
        order
    }

    /// Degrees in ascending order (the order-statistics vector `A_n`).
    pub fn sorted_ascending(&self) -> Vec<u32> {
        let mut d = self.degrees.clone();
        d.sort_unstable();
        d
    }
}

impl From<Vec<u32>> for DegreeSequence {
    fn from(v: Vec<u32>) -> Self {
        DegreeSequence::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_parity() {
        let mut s = DegreeSequence::new(vec![3, 2, 2]);
        assert_eq!(s.sum(), 7);
        assert!(!s.has_even_sum());
        assert!(s.make_even());
        assert_eq!(s.as_slice(), &[2, 2, 2]);
        assert!(!s.make_even());
    }

    #[test]
    fn make_even_decrements_max() {
        let mut s = DegreeSequence::new(vec![1, 4, 2]);
        s.make_even();
        assert_eq!(s.as_slice(), &[1, 3, 2]);
    }

    #[test]
    fn graphical_known_cases() {
        // triangle
        assert!(DegreeSequence::new(vec![2, 2, 2]).is_graphical());
        // star K_{1,3}
        assert!(DegreeSequence::new(vec![3, 1, 1, 1]).is_graphical());
        // complete graph K4
        assert!(DegreeSequence::new(vec![3, 3, 3, 3]).is_graphical());
        // empty
        assert!(DegreeSequence::new(vec![]).is_graphical());
        assert!(DegreeSequence::new(vec![0, 0]).is_graphical());
    }

    #[test]
    fn non_graphical_cases() {
        // odd sum
        assert!(!DegreeSequence::new(vec![1, 1, 1]).is_graphical());
        // degree >= n
        assert!(!DegreeSequence::new(vec![4, 2, 1, 1]).is_graphical());
        assert!(!DegreeSequence::new(vec![3, 1, 1]).is_graphical());
        // classic failure: (3,3,1,1) has even sum but is not graphical
        assert!(!DegreeSequence::new(vec![3, 3, 1, 1]).is_graphical());
    }

    #[test]
    fn ascending_order_is_stable() {
        let s = DegreeSequence::new(vec![2, 1, 2, 1]);
        assert_eq!(s.ascending_order(), vec![1, 3, 0, 2]);
        assert_eq!(s.sorted_ascending(), vec![1, 1, 2, 2]);
    }

    #[test]
    fn erdos_gallai_agrees_with_havel_hakimi_randomized() {
        use rand::{Rng, SeedableRng};
        fn havel_hakimi(mut d: Vec<u32>) -> bool {
            if d.iter().map(|&x| x as u64).sum::<u64>() % 2 == 1 {
                return false;
            }
            loop {
                d.sort_unstable_by(|a, b| b.cmp(a));
                if d[0] == 0 {
                    return true;
                }
                let k = d[0] as usize;
                if k >= d.len() {
                    return false;
                }
                d[0] = 0;
                for x in d.iter_mut().skip(1).take(k) {
                    if *x == 0 {
                        return false;
                    }
                    *x -= 1;
                }
            }
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..500 {
            let n = rng.gen_range(1..12);
            let d: Vec<u32> = (0..n).map(|_| rng.gen_range(0..n as u32)).collect();
            let s = DegreeSequence::new(d.clone());
            assert_eq!(s.is_graphical(), havel_hakimi(d.clone()), "sequence {d:?}");
        }
    }
}
