//! Table 5's timing claim: the exact discrete model (50) is linear in
//! `t_n` while Algorithm 2 is logarithmic, so their runtimes diverge by
//! orders of magnitude as `n` grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trilist_graph::dist::{DiscretePareto, Truncated};
use trilist_model::{continuous_cost, discrete_cost, quick_cost, CostClass, ModelSpec};
use trilist_order::LimitMap;

fn spec() -> ModelSpec {
    ModelSpec::new(CostClass::T1, LimitMap::Descending)
}

fn bench_discrete_exact(c: &mut Criterion) {
    let pareto = DiscretePareto::paper_beta(1.5);
    let mut group = c.benchmark_group("model/discrete_exact");
    group.sample_size(10);
    for t in [1_000u64, 100_000, 10_000_000] {
        let dist = Truncated::new(pareto, t);
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| black_box(discrete_cost(&dist, &spec())))
        });
    }
    group.finish();
}

fn bench_algorithm2(c: &mut Criterion) {
    let pareto = DiscretePareto::paper_beta(1.5);
    let mut group = c.benchmark_group("model/algorithm2_eps1e-5");
    group.sample_size(10);
    for t in [10_000_000u64, 10_000_000_000, 100_000_000_000_000] {
        let dist = Truncated::new(pareto, t);
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| black_box(quick_cost(&dist, &spec(), 1e-5)))
        });
    }
    group.finish();
}

fn bench_continuous(c: &mut Criterion) {
    let pareto = DiscretePareto::paper_beta(1.5);
    let mut group = c.benchmark_group("model/continuous_400k_panels");
    group.sample_size(10);
    for t in [1e7, 1e14] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| black_box(continuous_cost(&pareto, t, &spec(), 400_000)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_discrete_exact,
    bench_algorithm2,
    bench_continuous
);
criterion_main!(benches);
