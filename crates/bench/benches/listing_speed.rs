//! Wall-clock listing throughput of the four fundamental methods under
//! their optimal orientations — the runtime side of the §2.4 tradeoff
//! (operation counts are covered by the table binaries; this measures
//! seconds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use std::hint::black_box;
use trilist_bench::fixture_graph;
use trilist_core::{par_list, HashOracle, KernelPolicy, Kernels, Method};
use trilist_order::{DirectedGraph, OrderFamily};

fn bench_fundamental_methods(c: &mut Criterion) {
    let n = 50_000;
    let graph = fixture_graph(n, 1.7, 7);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("listing/optimal_orientation");
    group.throughput(Throughput::Elements(graph.m() as u64));
    for method in Method::FUNDAMENTAL {
        let family = method.optimal_family();
        let dg = DirectedGraph::orient(&graph, &family.relabeling(&graph, &mut rng));
        let oracle = HashOracle::build(&dg);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}+{}", method.name(), family.name())),
            &method,
            |b, &m| {
                b.iter(|| {
                    let cost = m.run_with_oracle(&dg, &oracle, |x, y, z| {
                        black_box((x, y, z));
                    });
                    black_box(cost.triangles)
                })
            },
        );
    }
    group.finish();
}

fn bench_t1_oracles(c: &mut Criterion) {
    // hash oracle vs binary-search oracle for T1's candidate checks
    let graph = fixture_graph(50_000, 1.7, 9);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let dg = DirectedGraph::orient(
        &graph,
        &OrderFamily::Descending.relabeling(&graph, &mut rng),
    );
    let hash = HashOracle::build(&dg);
    let mut group = c.benchmark_group("listing/t1_oracle");
    group.bench_function("hash", |b| {
        b.iter(|| {
            black_box(
                Method::T1
                    .run_with_oracle(&dg, &hash, |_, _, _| {})
                    .triangles,
            )
        })
    });
    group.bench_function("binary_search", |b| {
        let sorted = trilist_core::SortedOracle::new(&dg);
        b.iter(|| {
            black_box(
                Method::T1
                    .run_with_oracle(&dg, &sorted, |_, _, _| {})
                    .triangles,
            )
        })
    });
    group.finish();
}

fn bench_orientation_effect(c: &mut Criterion) {
    // E1 wall time under best (desc) vs worst (asc) orientation: the
    // operation-count gap shows up in seconds too
    let graph = fixture_graph(30_000, 1.7, 11);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("listing/e1_orientation");
    for family in [
        OrderFamily::Descending,
        OrderFamily::Ascending,
        OrderFamily::Uniform,
    ] {
        let dg = DirectedGraph::orient(&graph, &family.relabeling(&graph, &mut rng));
        group.bench_with_input(
            BenchmarkId::from_parameter(family.name()),
            &family,
            |b, _| b.iter(|| black_box(Method::E1.run(&dg, |_, _, _| {}).triangles)),
        );
    }
    group.finish();
}

fn bench_kernel_policy(c: &mut Criterion) {
    // the adaptive kernel layer vs the paper-faithful scan on the
    // hub-heavy regime (Pareto α = 1.5): same paper-cost operations, so
    // any wall-clock gap is pure kernel selection. The acceptance bar for
    // the layer is ≥ 1.3× on E1 at n = 10⁵ (see BENCH_listing.json).
    let n = 100_000;
    let graph = fixture_graph(n, 1.5, 23);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    for method in [Method::E1, Method::E4] {
        let family = method.optimal_family();
        let dg = DirectedGraph::orient(&graph, &family.relabeling(&graph, &mut rng));
        let mut group = c.benchmark_group(format!(
            "listing/kernel_policy_{}",
            method.name().to_lowercase()
        ));
        group.throughput(Throughput::Elements(graph.m() as u64));
        for policy in [KernelPolicy::PaperFaithful, KernelPolicy::adaptive()] {
            // kernels (incl. hub bitmaps) built once, outside the timed
            // region: this measures steady-state listing throughput
            let kernels = Kernels::build(policy, &dg);
            group.bench_with_input(
                BenchmarkId::from_parameter(policy.name()),
                &policy,
                |b, _| b.iter(|| black_box(method.count_with_kernels(&dg, &kernels).triangles)),
            );
        }
        group.finish();
    }
}

fn bench_work_stealing(c: &mut Criterion) {
    // the work-stealing runtime swept over worker counts; on a multicore
    // host the E1 wall time should halve by 4 threads (see thread_scaling)
    let graph = fixture_graph(30_000, 1.5, 19);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    for method in [Method::E1, Method::T1] {
        let family = method.optimal_family();
        let dg = DirectedGraph::orient(&graph, &family.relabeling(&graph, &mut rng));
        let mut group = c.benchmark_group(format!(
            "listing/work_stealing_{}",
            method.name().to_lowercase()
        ));
        group.throughput(Throughput::Elements(graph.m() as u64));
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
                b.iter(|| black_box(par_list(&dg, method, t).unwrap().cost.triangles))
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fundamental_methods, bench_t1_oracles, bench_orientation_effect,
        bench_kernel_policy, bench_work_stealing
}
criterion_main!(benches);
