//! Wall-clock cost of the simulated external-memory engine across
//! partition counts: the latency price of the `P·m` re-streaming.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use std::hint::black_box;
use trilist_bench::fixture_graph;
use trilist_order::{DirectedGraph, OrderFamily};
use trilist_xm::xm_e1;

fn bench_xm_passes(c: &mut Criterion) {
    let graph = fixture_graph(20_000, 1.7, 21);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let dg = DirectedGraph::orient(
        &graph,
        &OrderFamily::Descending.relabeling(&graph, &mut rng),
    );
    let mut group = c.benchmark_group("xm/e1_partitions");
    group.sample_size(10);
    group.throughput(Throughput::Elements(dg.m() as u64));
    for p in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                black_box(
                    xm_e1(&dg, p, |_, _, _| {})
                        .expect("scratch io")
                        .cost
                        .triangles,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_xm_passes);
criterion_main!(benches);
