//! Random-graph generation throughput (§7.2): the residual-degree sampler
//! vs the configuration model with erasure, across sizes and tail indices.
//! The paper generates 10M-node graphs "in several seconds" with its
//! interval-tree sampler; the Fenwick-based port should scale the same way
//! (O(m log n)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use std::hint::black_box;
use trilist_bench::fixture_sequence;
use trilist_graph::gen::{ConfigurationModel, GraphGenerator, ResidualSampler};

fn bench_residual_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation/residual_sampler");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let seq = fixture_sequence(n, 1.5, 3);
        group.throughput(Throughput::Elements(seq.sum() / 2));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            b.iter(|| black_box(ResidualSampler.generate(&seq, &mut rng).graph.m()))
        });
    }
    group.finish();
}

fn bench_configuration_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation/configuration_model");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let seq = fixture_sequence(n, 1.5, 3);
        group.throughput(Throughput::Elements(seq.sum() / 2));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            b.iter(|| black_box(ConfigurationModel.generate(&seq, &mut rng).graph.m()))
        });
    }
    group.finish();
}

fn bench_heavy_tail(c: &mut Criterion) {
    // α = 1.2 stresses the exclusion bookkeeping around hubs
    let mut group = c.benchmark_group("generation/residual_alpha1.2");
    group.sample_size(10);
    let n = 50_000;
    let seq = fixture_sequence(n, 1.2, 9);
    group.throughput(Throughput::Elements(seq.sum() / 2));
    group.bench_function(BenchmarkId::from_parameter(n), |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        b.iter(|| black_box(ResidualSampler.generate(&seq, &mut rng).graph.m()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_residual_sampler,
    bench_configuration_model,
    bench_heavy_tail
);
criterion_main!(benches);
