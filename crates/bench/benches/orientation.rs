//! Preprocessing cost (§2.1): relabeling + orientation for each family,
//! including the degenerate smallest-last ordering whose construction time
//! the paper singles out as two orders of magnitude above listing itself
//! (§7.5 — 5 hours on Twitter).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use std::hint::black_box;
use trilist_bench::fixture_graph;
use trilist_order::{DirectedGraph, OrderFamily};

fn bench_relabel_and_orient(c: &mut Criterion) {
    let n = 100_000;
    let graph = fixture_graph(n, 1.7, 13);
    let mut group = c.benchmark_group("orientation/relabel_orient");
    group.sample_size(10);
    group.throughput(Throughput::Elements(graph.m() as u64));
    for family in OrderFamily::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(family.name()),
            &family,
            |b, &f| {
                b.iter(|| {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
                    let relabeling = f.relabeling(&graph, &mut rng);
                    black_box(DirectedGraph::orient(&graph, &relabeling).m())
                })
            },
        );
    }
    group.finish();
}

fn bench_degeneracy_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("orientation/smallest_last");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let graph = fixture_graph(n, 1.7, 17);
        group.throughput(Throughput::Elements(graph.m() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(trilist_order::smallest_last_labels(&graph)))
        });
    }
    group.finish();
}

fn bench_parallel_orientation_effect(c: &mut Criterion) {
    // how much of the asc-orientation penalty the work-stealing runtime
    // can hide at 4 workers: skewed out-lists make static splits pathological,
    // while load-proportional chunking keeps the workers busy
    let graph = fixture_graph(30_000, 1.7, 23);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut group = c.benchmark_group("orientation/e1_parallel");
    group.sample_size(10);
    for family in [OrderFamily::Descending, OrderFamily::Ascending] {
        let dg = DirectedGraph::orient(&graph, &family.relabeling(&graph, &mut rng));
        group.bench_with_input(
            BenchmarkId::from_parameter(family.name()),
            &family,
            |b, _| {
                b.iter(|| {
                    black_box(
                        trilist_core::par_list(&dg, trilist_core::Method::E1, 4)
                            .unwrap()
                            .cost
                            .triangles,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_relabel_and_orient,
    bench_degeneracy_only,
    bench_parallel_orientation_effect
);
criterion_main!(benches);
