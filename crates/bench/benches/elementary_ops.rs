//! Table 3 reproduction: speed of the elementary operations — hash probes
//! (vertex iterator / LEI) vs two-pointer scanning intersection (SEI) —
//! on long adjacency lists (the paper's best case for intersection).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use trilist_core::hasher::{edge_key, FastSet};
use trilist_core::intersect::{intersect_gallop, intersect_sorted, intersect_sorted_backwards};

fn bench_hash_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3/hash_probe");
    for size in [1_024u32, 16_384, 262_144] {
        let mut set: FastSet<u64> = FastSet::default();
        for i in 0..size {
            set.insert(edge_key(i, i.wrapping_mul(2)));
        }
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                let mut hits = 0u64;
                for i in 0..size {
                    if set.contains(&edge_key(i, i.wrapping_mul(2) | 1)) {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

fn bench_scan_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3/scan_intersection");
    for size in [1_024u32, 16_384, 262_144] {
        let a: Vec<u32> = (0..size).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..size).map(|i| i * 3).collect();
        group.throughput(Throughput::Elements(2 * size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bch, _| {
            bch.iter(|| {
                let stats = intersect_sorted(black_box(&a), black_box(&b), |x| {
                    black_box(x);
                });
                black_box(stats.matches)
            })
        });
    }
    group.finish();
}

fn bench_gallop_intersection(c: &mut Criterion) {
    // asymmetric lists, where galloping shines
    let mut group = c.benchmark_group("table3/gallop_intersection");
    let long: Vec<u32> = (0..1_048_576u32).collect();
    for short_len in [64u32, 1_024] {
        let short: Vec<u32> = (0..short_len).map(|i| i * 1_024).collect();
        group.throughput(Throughput::Elements(short_len as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(short_len),
            &short_len,
            |bch, _| {
                bch.iter(|| {
                    let stats = intersect_gallop(black_box(&short), black_box(&long), |x| {
                        black_box(x);
                    });
                    black_box(stats.matches)
                })
            },
        );
    }
    group.finish();
}

fn bench_backwards_intersection(c: &mut Criterion) {
    // §2.3: E5 intersects in-lists from a mid-list boundary, which the
    // paper implements as a backwards scan and measures 26% slower than
    // forward on an i7-2600K. Galloping is the adaptive layer's candidate
    // replacement for exactly this case (it never scans, so direction is
    // irrelevant) — compare all three on the same mid-list-shaped inputs.
    let size = 65_536u32;
    let a: Vec<u32> = (0..size).map(|i| i * 2).collect();
    let b: Vec<u32> = (0..size).map(|i| i * 3).collect();
    // E5's eligible slice: the suffix of the shorter in-list past the
    // mid-list boundary (here the top quarter)
    let mid = &a[(3 * size / 4) as usize..];
    let mut group = c.benchmark_group("table3/direction");
    group.throughput(Throughput::Elements(2 * size as u64));
    group.bench_function("forward", |bch| {
        bch.iter(|| {
            black_box(intersect_sorted(black_box(&a), black_box(&b), |x| {
                black_box(x);
            }))
        })
    });
    group.bench_function("backward", |bch| {
        bch.iter(|| {
            black_box(intersect_sorted_backwards(
                black_box(&a),
                black_box(&b),
                |x| {
                    black_box(x);
                },
            ))
        })
    });
    group.bench_function("gallop_midlist", |bch| {
        bch.iter(|| {
            black_box(intersect_gallop(black_box(mid), black_box(&b), |x| {
                black_box(x);
            }))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hash_probe,
    bench_scan_intersection,
    bench_gallop_intersection,
    bench_backwards_intersection
);
criterion_main!(benches);
