//! # trilist-bench
//!
//! Criterion benchmarks for the triangle-listing reproduction. The library
//! itself only provides shared fixtures; the benches live in `benches/`.

#![warn(missing_docs)]

use rand::SeedableRng;
use trilist_graph::dist::{sample_degree_sequence, DiscretePareto, Truncated, Truncation};
use trilist_graph::gen::{GraphGenerator, ResidualSampler};
use trilist_graph::Graph;

/// A reproducible power-law benchmark graph.
pub fn fixture_graph(n: usize, alpha: f64, seed: u64) -> Graph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dist = Truncated::new(DiscretePareto::paper_beta(alpha), Truncation::Root.t_n(n));
    let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
    ResidualSampler.generate(&seq, &mut rng).graph
}

/// The degree sequence used by the generation benches.
pub fn fixture_sequence(n: usize, alpha: f64, seed: u64) -> trilist_graph::DegreeSequence {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dist = Truncated::new(DiscretePareto::paper_beta(alpha), Truncation::Root.t_n(n));
    sample_degree_sequence(&dist, n, &mut rng).0
}
