//! The five permutation families studied in the paper plus the degenerate
//! orientation: ascending `θ_A`, descending `θ_D`, Round-Robin `θ_RR`
//! (eq. 32), Complementary Round-Robin `θ_CRR`, uniform `θ_U`, and the
//! smallest-last/degenerate ordering `θ_degen` \[29\].

use crate::degenerate::smallest_last_labels;
use crate::map::LimitMap;
use crate::perm::Permutation;
use crate::relabel::Relabeling;
use rand::seq::SliceRandom;
use rand::Rng;
use trilist_graph::Graph;

/// `θ_A`: position `i` keeps label `i` (ascending degree).
pub fn ascending(n: usize) -> Permutation {
    Permutation::identity(n)
}

/// `θ_D`: position `i` gets label `n − 1 − i` (descending degree).
pub fn descending(n: usize) -> Permutation {
    Permutation::identity(n).reverse()
}

/// `θ_RR` — Round-Robin, eq. (32): large degrees are scattered to the two
/// ends of `[1, n]`, pairing them with small `q(1 − q)` for T2.
///
/// With 1-based positions: `θ(i) = ⌈(n+i)/2⌉` for odd `i`,
/// `⌊(n−i)/2⌋ + 1` for even `i`.
///
/// ```
/// use trilist_order::round_robin;
/// // paper example with n = 4 (1-based labels 3, 2, 4, 1)
/// assert_eq!(round_robin(4).as_slice(), &[2, 1, 3, 0]);
/// ```
pub fn round_robin(n: usize) -> Permutation {
    let mut theta = Vec::with_capacity(n);
    for i in 1..=n {
        let label_1based = if i % 2 == 1 {
            (n + i).div_ceil(2)
        } else {
            (n - i) / 2 + 1
        };
        theta.push((label_1based - 1) as u32);
    }
    Permutation::new(theta).expect("round robin is a bijection")
}

/// `θ_CRR` — Complementary Round-Robin: the complement of RR
/// (`ξ_CRR(u) = ξ_RR(1 − u)`), which gathers large degrees towards the
/// middle of the label range. Optimal for E4 (§5.3, Corollary 2).
pub fn complementary_round_robin(n: usize) -> Permutation {
    round_robin(n).complement()
}

/// `θ_U`: a uniformly random bijection (hash-based orientation in prior
/// work \[14\]).
pub fn uniform<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Permutation {
    let mut theta: Vec<u32> = (0..n as u32).collect();
    theta.shuffle(rng);
    Permutation::new(theta).expect("shuffle preserves bijection")
}

/// The orientation families compared in Table 12.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OrderFamily {
    /// Ascending degree `θ_A`.
    Ascending,
    /// Descending degree `θ_D`.
    Descending,
    /// Round-Robin `θ_RR` (eq. 32).
    RoundRobin,
    /// Complementary Round-Robin `θ_CRR`.
    ComplementaryRoundRobin,
    /// Uniformly random `θ_U`.
    Uniform,
    /// Degenerate / smallest-last orientation `θ_degen` \[29\].
    Degenerate,
}

impl OrderFamily {
    /// All six families, in the column order of Table 12.
    pub const ALL: [OrderFamily; 6] = [
        OrderFamily::Descending,
        OrderFamily::Ascending,
        OrderFamily::RoundRobin,
        OrderFamily::ComplementaryRoundRobin,
        OrderFamily::Uniform,
        OrderFamily::Degenerate,
    ];

    /// Short display name matching the paper's notation.
    pub fn name(&self) -> &'static str {
        match self {
            OrderFamily::Ascending => "asc",
            OrderFamily::Descending => "desc",
            OrderFamily::RoundRobin => "rr",
            OrderFamily::ComplementaryRoundRobin => "crr",
            OrderFamily::Uniform => "uniform",
            OrderFamily::Degenerate => "degen",
        }
    }

    /// Inverse of [`OrderFamily::name`]: `"desc"` → `Some(Descending)`.
    /// Used by wire protocols and CLI flags.
    pub fn from_name(name: &str) -> Option<OrderFamily> {
        OrderFamily::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Builds the node → label relabeling for `graph`.
    ///
    /// All families except `Degenerate` operate on ascending-degree
    /// positions; `Degenerate` derives labels from the graph structure.
    pub fn relabeling<R: Rng + ?Sized>(&self, graph: &Graph, rng: &mut R) -> Relabeling {
        match self {
            OrderFamily::Degenerate => Relabeling::from_labels(smallest_last_labels(graph)),
            _ => {
                let degrees = graph.degrees();
                let perm = self.permutation(graph.n(), rng);
                Relabeling::from_positions(&degrees, &perm)
            }
        }
    }

    /// The position → label permutation, for position-based families.
    ///
    /// Panics for [`OrderFamily::Degenerate`], which has no position form.
    pub fn permutation<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Permutation {
        match self {
            OrderFamily::Ascending => ascending(n),
            OrderFamily::Descending => descending(n),
            OrderFamily::RoundRobin => round_robin(n),
            OrderFamily::ComplementaryRoundRobin => complementary_round_robin(n),
            OrderFamily::Uniform => uniform(n, rng),
            OrderFamily::Degenerate => {
                panic!("degenerate ordering is graph-structural; use relabeling()")
            }
        }
    }

    /// The limiting map `ξ(u)` of this family (§5), if it is admissible with
    /// a known limit. `Degenerate` depends on graph structure and has none.
    pub fn limit_map(&self) -> Option<LimitMap> {
        match self {
            OrderFamily::Ascending => Some(LimitMap::Ascending),
            OrderFamily::Descending => Some(LimitMap::Descending),
            OrderFamily::RoundRobin => Some(LimitMap::RoundRobin),
            OrderFamily::ComplementaryRoundRobin => Some(LimitMap::ComplementaryRoundRobin),
            OrderFamily::Uniform => Some(LimitMap::Uniform),
            OrderFamily::Degenerate => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn round_robin_matches_paper_formula_small_n() {
        // n = 4 (1-based): θ = (3, 2, 4, 1); n = 5: θ = (3, 2, 4, 1, 5)
        assert_eq!(round_robin(4).as_slice(), &[2, 1, 3, 0]);
        assert_eq!(round_robin(5).as_slice(), &[2, 1, 3, 0, 4]);
    }

    #[test]
    fn round_robin_is_bijection_for_many_n() {
        for n in 1..200 {
            let p = round_robin(n);
            assert_eq!(p.len(), n);
        }
    }

    #[test]
    fn round_robin_spreads_large_positions_outside() {
        // the two largest-degree positions receive the extreme labels
        let n = 100;
        let p = round_robin(n);
        let last_two = [p.label(n - 1), p.label(n - 2)];
        assert!(last_two.contains(&0) || last_two.contains(&(n as u32 - 1)));
        // small-degree positions sit near the middle
        let mid = p.label(0) as i64;
        assert!((mid - n as i64 / 2).abs() <= 1);
    }

    #[test]
    fn crr_gathers_large_positions_in_middle() {
        let n = 101;
        let p = complementary_round_robin(n);
        let largest = p.label(n - 1) as i64;
        assert!(
            (largest - n as i64 / 2).abs() <= 1,
            "largest got label {largest}"
        );
        assert_eq!(p.as_slice(), round_robin(n).complement().as_slice());
    }

    #[test]
    fn descending_reverses_ascending() {
        assert_eq!(descending(5).as_slice(), &[4, 3, 2, 1, 0]);
        assert_eq!(ascending(5).reverse(), descending(5));
    }

    #[test]
    fn uniform_is_bijection_and_seed_deterministic() {
        let mut a = rand::rngs::StdRng::seed_from_u64(1);
        let mut b = rand::rngs::StdRng::seed_from_u64(1);
        let pa = uniform(50, &mut a);
        let pb = uniform(50, &mut b);
        assert_eq!(pa, pb);
    }

    #[test]
    fn family_names_unique() {
        let names: std::collections::HashSet<_> =
            OrderFamily::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), OrderFamily::ALL.len());
    }
}
