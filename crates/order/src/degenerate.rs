//! Degenerate (smallest-last) orientation — Matula & Beck \[29\].
//!
//! Repeatedly removes a minimum-residual-degree node; orienting each node's
//! edges towards its not-yet-removed neighbors bounds every out-degree by
//! the graph's degeneracy, i.e. it solves `min_θ max_i X_i(θ)` (§1.1). The
//! paper's Table 12 includes it as `θ_degen` to show how little the optimal
//! worst-case out-degree helps *expected* cost.

use trilist_graph::Graph;

/// Computes node → label for the smallest-last ordering in `O(n + m)` using
/// a bucket queue.
///
/// The first-removed node receives the **largest** label, so its
/// out-neighbors (smaller labels) are exactly its residual neighbors at
/// removal time; every out-degree is therefore at most the degeneracy.
pub fn smallest_last_labels(graph: &Graph) -> Vec<u32> {
    let n = graph.n();
    let mut residual: Vec<usize> = (0..n as u32).map(|v| graph.degree(v)).collect();
    let max_deg = residual.iter().copied().max().unwrap_or(0);

    // bucket[d] holds nodes with residual degree d; position of each node in
    // its bucket for O(1) removal.
    let mut bucket: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
    let mut slot = vec![0usize; n];
    for v in 0..n {
        slot[v] = bucket[residual[v]].len();
        bucket[residual[v]].push(v as u32);
    }

    let mut removed = vec![false; n];
    let mut labels = vec![0u32; n];
    let mut cursor = 0usize; // smallest possibly-non-empty bucket
    for rank in 0..n {
        // find the minimum non-empty bucket; `cursor` only decreases by one
        // per neighbor update, keeping the scan amortized O(n + m)
        while bucket[cursor].is_empty() {
            cursor += 1;
        }
        let v = bucket[cursor].pop().expect("bucket non-empty") as usize;
        removed[v] = true;
        labels[v] = (n - 1 - rank) as u32;
        for &w in graph.neighbors(v as u32) {
            let w = w as usize;
            if removed[w] {
                continue;
            }
            let d = residual[w];
            // swap-remove w from bucket[d]
            let s = slot[w];
            let last = *bucket[d].last().expect("w is in bucket[d]");
            bucket[d][s] = last;
            slot[last as usize] = s;
            bucket[d].pop();
            residual[w] = d - 1;
            slot[w] = bucket[d - 1].len();
            bucket[d - 1].push(w as u32);
            if d - 1 < cursor {
                cursor = d - 1;
            }
        }
    }
    labels
}

/// Per-node core numbers from the same smallest-last peel.
///
/// The core number of `v` is the largest `k` such that `v` belongs to a
/// subgraph of minimum degree `k`; it equals the running maximum of the
/// residual degree observed when `v` is removed. The peel order (and thus
/// any tie-breaking) is identical to [`smallest_last_labels`], so
/// `core_numbers(g)[v]` bounds the out-degree of `v` under the
/// smallest-last labeling.
pub fn core_numbers(graph: &Graph) -> Vec<u32> {
    let n = graph.n();
    let mut residual: Vec<usize> = (0..n as u32).map(|v| graph.degree(v)).collect();
    let max_deg = residual.iter().copied().max().unwrap_or(0);

    let mut bucket: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
    let mut slot = vec![0usize; n];
    for v in 0..n {
        slot[v] = bucket[residual[v]].len();
        bucket[residual[v]].push(v as u32);
    }

    let mut removed = vec![false; n];
    let mut core = vec![0u32; n];
    let mut cursor = 0usize;
    let mut running_max = 0usize;
    for _ in 0..n {
        while bucket[cursor].is_empty() {
            cursor += 1;
        }
        let v = bucket[cursor].pop().expect("bucket non-empty") as usize;
        removed[v] = true;
        running_max = running_max.max(cursor);
        core[v] = running_max as u32;
        for &w in graph.neighbors(v as u32) {
            let w = w as usize;
            if removed[w] {
                continue;
            }
            let d = residual[w];
            let s = slot[w];
            let last = *bucket[d].last().expect("w is in bucket[d]");
            bucket[d][s] = last;
            slot[last as usize] = s;
            bucket[d].pop();
            residual[w] = d - 1;
            slot[w] = bucket[d - 1].len();
            bucket[d - 1].push(w as u32);
            if d - 1 < cursor {
                cursor = d - 1;
            }
        }
    }
    core
}

/// The degeneracy of `graph`: the maximum residual degree encountered by the
/// smallest-last removal, which equals the largest `k` such that a `k`-core
/// exists.
pub fn degeneracy(graph: &Graph) -> usize {
    let labels = smallest_last_labels(graph);
    // out-degree under the smallest-last labels; degeneracy = max out-degree
    let mut best = 0usize;
    for v in 0..graph.n() as u32 {
        let lv = labels[v as usize];
        let out = graph
            .neighbors(v)
            .iter()
            .filter(|&&w| labels[w as usize] < lv)
            .count();
        best = best.max(out);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_bijection() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let mut labels = smallest_last_labels(&g);
        labels.sort_unstable();
        assert_eq!(labels, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn tree_has_degeneracy_one() {
        // path graph: every out-degree must be <= 1
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        assert_eq!(degeneracy(&g), 1);
    }

    #[test]
    fn cycle_has_degeneracy_two() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        assert_eq!(degeneracy(&g), 2);
    }

    #[test]
    fn complete_graph_degeneracy() {
        // K5: degeneracy 4
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(5, &edges).unwrap();
        assert_eq!(degeneracy(&g), 4);
    }

    #[test]
    fn star_out_degrees_bounded_by_one() {
        // star K_{1,6}: degeneracy 1, so the hub must point all but at most
        // one of its edges inward
        let edges: Vec<_> = (1..7u32).map(|v| (0u32, v)).collect();
        let g = Graph::from_edges(7, &edges).unwrap();
        let labels = smallest_last_labels(&g);
        for v in 0..7u32 {
            let out = g
                .neighbors(v)
                .iter()
                .filter(|&&w| labels[w as usize] < labels[v as usize])
                .count();
            assert!(out <= 1, "node {v} out-degree {out}");
        }
    }

    #[test]
    fn bounded_by_max_degree_and_sqrt_2m() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let n = 40;
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.15) {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges).unwrap();
            let d = degeneracy(&g);
            assert!(d <= g.max_degree());
            // degeneracy <= sqrt(2m) + 1 always holds
            assert!(d as f64 <= (2.0 * g.m() as f64).sqrt() + 1.0);
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(3, &[]).unwrap();
        assert_eq!(degeneracy(&g), 0);
        assert_eq!(smallest_last_labels(&g).len(), 3);
        assert_eq!(core_numbers(&g), vec![0, 0, 0]);
    }

    #[test]
    fn core_numbers_k4_with_pendant() {
        // K4 on {0..3} plus pendant 4–0: K4 is a 3-core, the pendant is a
        // 1-core, and node 0 inherits the 3-core membership
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (0, 4)])
            .unwrap();
        assert_eq!(core_numbers(&g), vec![3, 3, 3, 3, 1]);
    }

    #[test]
    fn core_numbers_match_degeneracy_and_bound_out_degree() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..5 {
            let n = 50;
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.1) {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges).unwrap();
            let core = core_numbers(&g);
            let labels = smallest_last_labels(&g);
            assert_eq!(core.iter().copied().max().unwrap() as usize, degeneracy(&g));
            // peel invariant: out-degree under smallest-last ≤ core number
            for v in 0..n as u32 {
                let out = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&w| labels[w as usize] < labels[v as usize])
                    .count();
                assert!(
                    out <= core[v as usize] as usize,
                    "node {v}: out {out} > core {}",
                    core[v as usize]
                );
            }
        }
    }

    #[test]
    fn peel_is_deterministic_under_ties() {
        // C4: every node has degree 2, so every removal is a tie. The peel
        // must break ties the same way on every run and regardless of the
        // edge-list order handed to the builder.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let shuffled = Graph::from_edges(4, &[(3, 0), (1, 2), (0, 1), (2, 3)]).unwrap();
        let a = smallest_last_labels(&g);
        assert_eq!(a, smallest_last_labels(&g));
        assert_eq!(a, smallest_last_labels(&shuffled));
        // pin the tie-break itself so a refactor of the bucket queue is a
        // loud diff: the highest-id node is popped first (largest label)
        assert_eq!(a, vec![0, 1, 2, 3]);
        assert_eq!(core_numbers(&g), vec![2, 2, 2, 2]);
    }
}
