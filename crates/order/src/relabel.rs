//! Relabeling: turning a position permutation into node → label IDs (§2.1,
//! step 1 of the three-step framework).

use crate::perm::Permutation;
use trilist_graph::NodeId;

/// A node → new-label assignment.
///
/// Labels are a bijection on `{0, …, n−1}`; after relabeling, the acyclic
/// orientation points every edge from the larger label to the smaller
/// (out-neighbors have smaller labels).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relabeling {
    labels: Vec<u32>,
}

impl Relabeling {
    /// Keeps original IDs ("no relabeling", as much of the prior work in
    /// §2.4 does).
    pub fn identity(n: usize) -> Self {
        Relabeling {
            labels: (0..n as u32).collect(),
        }
    }

    /// Wraps an explicit node → label table (must be a bijection; checked in
    /// debug builds).
    pub fn from_labels(labels: Vec<u32>) -> Self {
        #[cfg(debug_assertions)]
        {
            let mut seen = vec![false; labels.len()];
            for &l in &labels {
                assert!(
                    (l as usize) < labels.len() && !seen[l as usize],
                    "labels not a bijection"
                );
                seen[l as usize] = true;
            }
        }
        Relabeling { labels }
    }

    /// The paper's construction: sort nodes ascending by degree (stable on
    /// node ID), then give the node at position `pos` the label
    /// `perm.label(pos)`.
    pub fn from_positions(degrees: &[u32], perm: &Permutation) -> Self {
        assert_eq!(degrees.len(), perm.len());
        let mut order: Vec<u32> = (0..degrees.len() as u32).collect();
        order.sort_by_key(|&v| degrees[v as usize]);
        let mut labels = vec![0u32; degrees.len()];
        for (pos, &node) in order.iter().enumerate() {
            labels[node as usize] = perm.label(pos);
        }
        Relabeling { labels }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True for an empty graph.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// New label of `node`.
    pub fn label(&self, node: NodeId) -> u32 {
        self.labels[node as usize]
    }

    /// The raw node → label table.
    pub fn as_slice(&self) -> &[u32] {
        &self.labels
    }

    /// label → original node table.
    pub fn inverse(&self) -> Vec<u32> {
        let mut inv = vec![0u32; self.labels.len()];
        for (node, &l) in self.labels.iter().enumerate() {
            inv[l as usize] = node as u32;
        }
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_positions_ascending_keeps_degree_order() {
        // degrees: node0=3, node1=1, node2=2 → ascending order: 1, 2, 0
        let perm = Permutation::identity(3);
        let r = Relabeling::from_positions(&[3, 1, 2], &perm);
        assert_eq!(r.label(1), 0); // smallest degree → label 0
        assert_eq!(r.label(2), 1);
        assert_eq!(r.label(0), 2); // largest degree → label 2
    }

    #[test]
    fn from_positions_descending() {
        let perm = Permutation::identity(3).reverse();
        let r = Relabeling::from_positions(&[3, 1, 2], &perm);
        assert_eq!(r.label(1), 2);
        assert_eq!(r.label(0), 0); // largest degree → label 0 under θ_D
    }

    #[test]
    fn stable_tie_break_on_node_id() {
        let perm = Permutation::identity(3);
        let r = Relabeling::from_positions(&[5, 5, 5], &perm);
        assert_eq!(r.as_slice(), &[0, 1, 2]);
    }

    #[test]
    fn inverse_round_trips() {
        let r = Relabeling::from_labels(vec![2, 0, 3, 1]);
        let inv = r.inverse();
        for node in 0..4u32 {
            assert_eq!(inv[r.label(node) as usize], node);
        }
    }

    #[test]
    fn identity_labels() {
        let r = Relabeling::identity(3);
        assert_eq!(r.as_slice(), &[0, 1, 2]);
    }
}
