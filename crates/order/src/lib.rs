//! # trilist-order
//!
//! Node orderings for triangle listing: the permutation machinery of the
//! paper's three-step framework (§2.1) — relabel, orient, list — together
//! with the five permutation families of the evaluation (ascending,
//! descending, Round-Robin, Complementary Round-Robin, uniform), the
//! degenerate smallest-last orientation, Algorithm 1 (optimal permutations),
//! and the limiting maps `ξ(u)` of §5.
//!
//! ```
//! use rand::SeedableRng;
//! use trilist_graph::Graph;
//! use trilist_order::{DirectedGraph, OrderFamily};
//!
//! let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 3)]).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let relabeling = OrderFamily::Descending.relabeling(&g, &mut rng);
//! let dg = DirectedGraph::orient(&g, &relabeling);
//! assert!(dg.validate());
//! assert_eq!(dg.m(), g.m());
//! ```

#![warn(missing_docs)]

pub mod admissible;
pub mod degenerate;
pub mod family;
pub mod map;
pub mod opt;
pub mod orient;
pub mod perm;
pub mod relabel;
pub mod tailored;

pub use admissible::{convergence_profile, kernel_distance};
pub use degenerate::{core_numbers, degeneracy, smallest_last_labels};
pub use family::{
    ascending, complementary_round_robin, descending, round_robin, uniform, OrderFamily,
};
pub use map::{empirical_kernel, LimitMap};
pub use opt::{opt_permutation, pessimal_permutation, Monotonicity};
pub use orient::DirectedGraph;
pub use perm::{PermError, Permutation};
pub use relabel::Relabeling;
pub use tailored::{
    orientation_work, refine_labels, refined_labels, split_labels, OrderingKind, RefineObjective,
};
