//! Numeric admissibility checking (Definition 5).
//!
//! A permutation sequence `{θ_n}` is admissible when the neighborhood-
//! averaged kernel `K_n(v; u)` of eq. (27) converges weakly to a
//! measure-preserving kernel. These helpers quantify how far a concrete
//! permutation is from a candidate limit map and let tests demonstrate
//! both convergence (the five built-in families) and the paper's
//! counter-example: a family that alternates between `θ_A` (odd `n`) and
//! `θ_D` (even `n`) has no limit.

use crate::map::{empirical_kernel, LimitMap};
use crate::perm::Permutation;

/// Mean absolute deviation between the empirical kernel of `perm` and the
/// kernel of `map`, averaged over a `grid × grid` lattice of `(u, v)`
/// points (weak-convergence distance up to discretization).
///
/// `k` is the neighborhood half-width of eq. (27); pick `k(n) → ∞` with
/// `k(n)/n → 0`, e.g. `n^(2/3)/2`.
pub fn kernel_distance(perm: &Permutation, map: LimitMap, k: usize, grid: usize) -> f64 {
    assert!(grid >= 2);
    let mut total = 0.0;
    let mut count = 0usize;
    for ui in 0..grid {
        let u = (ui as f64 + 0.5) / grid as f64;
        for vi in 0..grid {
            // offset the v-grid relative to the u-grid: weak convergence is
            // pointwise only at continuity points of K(·; u), and the
            // built-in kernels place their jumps on u-aligned points
            let v = (vi as f64 + 0.37) / grid as f64;
            total += (empirical_kernel(perm, v, u, k) - map.kernel(v, u)).abs();
            count += 1;
        }
    }
    total / count as f64
}

/// The default `k(n) = ⌈n^0.6⌉ / 2` neighborhood width — grows without
/// bound but with `k(n)/n → 0` fast enough that the eq.-(27) smearing
/// around kernel jump points shrinks below the evaluation grid.
pub fn default_neighborhood(n: usize) -> usize {
    (((n as f64).powf(0.6)).ceil() as usize / 2).max(1)
}

/// Checks convergence of a permutation *family* (a constructor indexed by
/// `n`) towards `map`: the kernel distance must shrink when `n` grows
/// across `sizes`. Returns the measured distances.
pub fn convergence_profile<F>(family: F, map: LimitMap, sizes: &[usize], grid: usize) -> Vec<f64>
where
    F: Fn(usize) -> Permutation,
{
    sizes
        .iter()
        .map(|&n| kernel_distance(&family(n), map, default_neighborhood(n), grid))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{ascending, complementary_round_robin, descending, round_robin};

    const SIZES: [usize; 3] = [1_000, 10_000, 100_000];

    #[test]
    fn monotone_families_converge_to_their_maps() {
        for (family, map) in [
            (ascending as fn(usize) -> Permutation, LimitMap::Ascending),
            (descending as fn(usize) -> Permutation, LimitMap::Descending),
        ] {
            let profile = convergence_profile(family, map, &SIZES, 8);
            assert!(profile[2] < 0.02, "{map:?}: {profile:?}");
            assert!(profile[2] <= profile[0] + 1e-9, "{map:?}: {profile:?}");
        }
    }

    #[test]
    fn round_robin_converges_to_prop6_map() {
        let profile = convergence_profile(
            round_robin as fn(usize) -> Permutation,
            LimitMap::RoundRobin,
            &SIZES,
            8,
        );
        assert!(profile[2] < 0.02, "{profile:?}");
        let crr_profile = convergence_profile(
            complementary_round_robin as fn(usize) -> Permutation,
            LimitMap::ComplementaryRoundRobin,
            &SIZES,
            8,
        );
        assert!(crr_profile[2] < 0.02, "{crr_profile:?}");
    }

    #[test]
    fn wrong_map_keeps_large_distance() {
        // RR's kernel is far from descending's
        let d = kernel_distance(&round_robin(100_000), LimitMap::Descending, 500, 8);
        assert!(d > 0.2, "distance {d}");
    }

    #[test]
    fn alternating_family_is_not_admissible() {
        // the paper's counter-example (§5.1): θ_A for odd n, θ_D for even n.
        // Each subsequence converges to a *different* kernel, so the family
        // as a whole converges to neither.
        let family = |n: usize| {
            if n % 2 == 1 {
                ascending(n)
            } else {
                descending(n)
            }
        };
        let odd_sizes = [10_001usize, 100_001];
        let even_sizes = [10_000usize, 100_000];
        // against the ascending map: odd sizes converge, even sizes stay far
        let odd = convergence_profile(family, LimitMap::Ascending, &odd_sizes, 8);
        let even = convergence_profile(family, LimitMap::Ascending, &even_sizes, 8);
        assert!(odd[1] < 0.02, "odd {odd:?}");
        assert!(even[1] > 0.2, "even {even:?}");
        // and symmetrically against descending
        let even_d = convergence_profile(family, LimitMap::Descending, &even_sizes, 8);
        assert!(even_d[1] < 0.02, "{even_d:?}");
    }

    #[test]
    fn uniform_random_family_converges_to_uniform_map() {
        use rand::SeedableRng;
        let family = |n: usize| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64);
            crate::family::uniform(n, &mut rng)
        };
        let profile = convergence_profile(family, LimitMap::Uniform, &SIZES, 12);
        assert!(profile[2] < 0.05, "{profile:?}");
        assert!(profile[2] < profile[0], "{profile:?}");
    }
}
