//! Permutations on ascending-degree positions (§2.1).
//!
//! The paper models relabeling + orientation by a permutation
//! `θ_n : V → V` that "always starts with ascending-degree order and maps
//! each node in position `i` to a label `θ_n(i)`". [`Permutation`] is that
//! object, 0-based: `theta[pos]` is the label given to the node occupying
//! ascending-degree position `pos`.

/// A bijection on `{0, …, n−1}` interpreted as position → label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    theta: Vec<u32>,
}

impl Permutation {
    /// Wraps `theta`, validating that it is a bijection.
    pub fn new(theta: Vec<u32>) -> Result<Self, PermError> {
        let n = theta.len();
        let mut seen = vec![false; n];
        for &l in &theta {
            let l = l as usize;
            if l >= n {
                return Err(PermError::OutOfRange { label: l as u32, n });
            }
            if seen[l] {
                return Err(PermError::Duplicate { label: l as u32 });
            }
            seen[l] = true;
        }
        Ok(Permutation { theta })
    }

    /// The identity permutation (ascending-degree order, `θ_A`).
    pub fn identity(n: usize) -> Self {
        Permutation {
            theta: (0..n as u32).collect(),
        }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.theta.len()
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.theta.is_empty()
    }

    /// Label assigned to position `pos`.
    pub fn label(&self, pos: usize) -> u32 {
        self.theta[pos]
    }

    /// The raw position → label table.
    pub fn as_slice(&self) -> &[u32] {
        &self.theta
    }

    /// The inverse table: label → position.
    pub fn inverse(&self) -> Vec<u32> {
        let mut inv = vec![0u32; self.theta.len()];
        for (pos, &l) in self.theta.iter().enumerate() {
            inv[l as usize] = pos as u32;
        }
        inv
    }

    /// The *reverse* permutation `θ′(i) = n + 1 − θ(i)` (1-based; here
    /// `n − 1 − θ[i]`). Proposition 1: reversing swaps every node's
    /// out-degree with its in-degree.
    pub fn reverse(&self) -> Self {
        let n = self.theta.len() as u32;
        Permutation {
            theta: self.theta.iter().map(|&l| n - 1 - l).collect(),
        }
    }

    /// The *complementary* permutation `θ″(i) = θ(n − i + 1)` (1-based):
    /// the same mapping applied starting from descending instead of
    /// ascending degree order (§5.3).
    pub fn complement(&self) -> Self {
        let mut theta = self.theta.clone();
        theta.reverse();
        Permutation { theta }
    }

    /// Composition `(other ∘ self)(i) = other(self(i))`: relabel twice.
    pub fn compose(&self, other: &Permutation) -> Self {
        assert_eq!(
            self.len(),
            other.len(),
            "composition requires equal lengths"
        );
        Permutation {
            theta: self
                .theta
                .iter()
                .map(|&l| other.theta[l as usize])
                .collect(),
        }
    }
}

/// Errors raised by [`Permutation::new`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PermError {
    /// A label exceeds `n − 1`.
    OutOfRange {
        /// The offending label.
        label: u32,
        /// The permutation length.
        n: usize,
    },
    /// A label appears twice.
    Duplicate {
        /// The repeated label.
        label: u32,
    },
}

impl std::fmt::Display for PermError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PermError::OutOfRange { label, n } => {
                write!(
                    f,
                    "label {label} out of range for permutation of length {n}"
                )
            }
            PermError::Duplicate { label } => write!(f, "duplicate label {label}"),
        }
    }
}

impl std::error::Error for PermError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_accessors() {
        let p = Permutation::identity(4);
        assert_eq!(p.len(), 4);
        assert_eq!(p.label(2), 2);
        assert_eq!(p.inverse(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn validation() {
        assert!(Permutation::new(vec![0, 2, 1]).is_ok());
        assert!(matches!(
            Permutation::new(vec![0, 3, 1]),
            Err(PermError::OutOfRange { label: 3, n: 3 })
        ));
        assert!(matches!(
            Permutation::new(vec![0, 1, 1]),
            Err(PermError::Duplicate { label: 1 })
        ));
    }

    #[test]
    fn reverse_maps_to_mirror_labels() {
        let p = Permutation::new(vec![2, 0, 1, 3]).unwrap();
        assert_eq!(p.reverse().as_slice(), &[1, 3, 2, 0]);
        // reversing twice is the identity operation
        assert_eq!(p.reverse().reverse(), p);
    }

    #[test]
    fn complement_reads_positions_backwards() {
        let p = Permutation::new(vec![2, 0, 1, 3]).unwrap();
        assert_eq!(p.complement().as_slice(), &[3, 1, 0, 2]);
        assert_eq!(p.complement().complement(), p);
    }

    #[test]
    fn inverse_is_inverse() {
        let p = Permutation::new(vec![3, 1, 4, 0, 2]).unwrap();
        let inv = p.inverse();
        for pos in 0..5 {
            assert_eq!(inv[p.label(pos) as usize] as usize, pos);
        }
    }

    #[test]
    fn composition() {
        let p = Permutation::new(vec![2, 0, 1]).unwrap();
        let q = Permutation::new(vec![1, 2, 0]).unwrap();
        // (q ∘ p)(i) = q(p(i)): p(0)=2, q(2)=0 → 0; p(1)=0, q(0)=1; p(2)=1, q(1)=2
        assert_eq!(p.compose(&q).as_slice(), &[0, 1, 2]);
        // identity is neutral
        let id = Permutation::identity(3);
        assert_eq!(p.compose(&id), p);
        assert_eq!(id.compose(&p), p);
        // composing with the reverse of identity equals reverse()
        let rev = Permutation::identity(3).reverse();
        assert_eq!(p.compose(&rev), p.reverse());
    }
}
