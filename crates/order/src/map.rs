//! Limiting maps `ξ(u)` of admissible permutation sequences (§5).
//!
//! A sequence `{θ_n}` is *admissible* when the neighborhood-averaged kernel
//! `K_n(v; u)` of eq. (27) converges weakly to a measure-preserving kernel
//! `K(v; u)`; the limit object is a random map `ξ(u) ~ K(·; u)`. The five
//! families studied in the paper converge to the maps below (ascending
//! `ξ(u) = u`, descending `ξ(u) = 1 − u`, RR per Proposition 6, CRR its
//! complement, uniform an independent `U[0,1]`).

use crate::perm::Permutation;
use rand::Rng;

/// The limiting random map of a permutation family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LimitMap {
    /// `ξ(u) = u`.
    Ascending,
    /// `ξ(u) = 1 − u`.
    Descending,
    /// `ξ_RR(u) ∈ {(1−u)/2, (1+u)/2}` each w.p. 1/2 (Proposition 6).
    RoundRobin,
    /// `ξ_CRR(u) = ξ_RR(1 − u) ∈ {u/2, 1 − u/2}` each w.p. 1/2.
    ComplementaryRoundRobin,
    /// `ξ_U(u) ~ U[0, 1]`, independent of `u`.
    Uniform,
}

impl LimitMap {
    /// All five maps.
    pub const ALL: [LimitMap; 5] = [
        LimitMap::Ascending,
        LimitMap::Descending,
        LimitMap::RoundRobin,
        LimitMap::ComplementaryRoundRobin,
        LimitMap::Uniform,
    ];

    /// The kernel `K(v; u) = P(ξ(u) ≤ v)`.
    pub fn kernel(&self, v: f64, u: f64) -> f64 {
        let step = |point: f64| if v >= point { 1.0 } else { 0.0 };
        match self {
            LimitMap::Ascending => step(u),
            LimitMap::Descending => step(1.0 - u),
            LimitMap::RoundRobin => 0.5 * step((1.0 - u) / 2.0) + 0.5 * step((1.0 + u) / 2.0),
            LimitMap::ComplementaryRoundRobin => 0.5 * step(u / 2.0) + 0.5 * step(1.0 - u / 2.0),
            LimitMap::Uniform => v.clamp(0.0, 1.0),
        }
    }

    /// `E[h(ξ(u))]` — the permutation's contribution to the limiting cost
    /// (29). For the uniform map the expectation integrates `h` by
    /// composite Simpson on 1024 panels.
    pub fn expect_h<H: Fn(f64) -> f64>(&self, u: f64, h: H) -> f64 {
        match self {
            LimitMap::Ascending => h(u),
            LimitMap::Descending => h(1.0 - u),
            LimitMap::RoundRobin => 0.5 * (h((1.0 - u) / 2.0) + h((1.0 + u) / 2.0)),
            LimitMap::ComplementaryRoundRobin => 0.5 * (h(u / 2.0) + h(1.0 - u / 2.0)),
            LimitMap::Uniform => simpson01(&h),
        }
    }

    /// Draws a realization of `ξ(u)`.
    pub fn sample<R: Rng + ?Sized>(&self, u: f64, rng: &mut R) -> f64 {
        match self {
            LimitMap::Ascending => u,
            LimitMap::Descending => 1.0 - u,
            LimitMap::RoundRobin => {
                if rng.gen_bool(0.5) {
                    (1.0 - u) / 2.0
                } else {
                    (1.0 + u) / 2.0
                }
            }
            LimitMap::ComplementaryRoundRobin => {
                if rng.gen_bool(0.5) {
                    u / 2.0
                } else {
                    1.0 - u / 2.0
                }
            }
            LimitMap::Uniform => rng.gen::<f64>(),
        }
    }

    /// The reverse map `ξ′(u) = 1 − ξ(u)` (Proposition 7).
    pub fn reverse(&self) -> LimitMap {
        match self {
            LimitMap::Ascending => LimitMap::Descending,
            LimitMap::Descending => LimitMap::Ascending,
            // 1 − ξ_RR(u) ∈ {(1+u)/2, (1−u)/2} = same law
            LimitMap::RoundRobin => LimitMap::RoundRobin,
            LimitMap::ComplementaryRoundRobin => LimitMap::ComplementaryRoundRobin,
            LimitMap::Uniform => LimitMap::Uniform,
        }
    }

    /// The complementary map `ξ″(u) = ξ(1 − u)` (Proposition 7). Corollary
    /// 3: the complement of a method's best map is its worst.
    pub fn complement(&self) -> LimitMap {
        match self {
            LimitMap::Ascending => LimitMap::Descending,
            LimitMap::Descending => LimitMap::Ascending,
            LimitMap::RoundRobin => LimitMap::ComplementaryRoundRobin,
            LimitMap::ComplementaryRoundRobin => LimitMap::RoundRobin,
            LimitMap::Uniform => LimitMap::Uniform,
        }
    }
}

/// Composite Simpson integration of `h` over `[0, 1]` with 1024 panels.
fn simpson01<H: Fn(f64) -> f64>(h: &H) -> f64 {
    let panels = 1024usize;
    let dx = 1.0 / panels as f64;
    let mut s = h(0.0) + h(1.0);
    for i in 1..panels {
        let x = i as f64 * dx;
        s += if i % 2 == 1 { 4.0 } else { 2.0 } * h(x);
    }
    s * dx / 3.0
}

/// The finite-`n` neighborhood kernel `K_n(v; u)` of eq. (27) for a
/// deterministic permutation: the fraction of positions within the
/// `k`-neighborhood of `⌈un⌉` whose label lands in `[0, vn]`.
///
/// Used to test admissibility claims (e.g. Proposition 6) empirically.
pub fn empirical_kernel(perm: &Permutation, v: f64, u: f64, k: usize) -> f64 {
    let n = perm.len();
    assert!(n > 0);
    let center = ((u * n as f64).ceil() as isize - 1).clamp(0, n as isize - 1);
    let bound = (v * n as f64).floor();
    let mut hits = 0usize;
    let mut total = 0usize;
    for off in -(k as isize)..=(k as isize) {
        let pos = center + off;
        if pos < 0 || pos >= n as isize {
            continue;
        }
        total += 1;
        if (perm.label(pos as usize) as f64) < bound {
            hits += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::round_robin;
    use rand::SeedableRng;

    #[test]
    fn kernels_are_cdfs_in_v() {
        for map in LimitMap::ALL {
            for &u in &[0.0, 0.25, 0.5, 0.9] {
                assert_eq!(map.kernel(-0.1, u), 0.0, "{map:?}");
                assert_eq!(map.kernel(1.0, u), 1.0, "{map:?}");
                let mut prev = 0.0;
                for i in 0..=20 {
                    let v = i as f64 / 20.0;
                    let k = map.kernel(v, u);
                    assert!(k >= prev - 1e-12, "{map:?} not monotone at v={v}");
                    prev = k;
                }
            }
        }
    }

    #[test]
    fn kernels_are_measure_preserving() {
        // Definition 4: E[K(v; U)] = v for uniform U. Check by quadrature.
        let grid = 2_000;
        for map in LimitMap::ALL {
            for &v in &[0.1, 0.3, 0.5, 0.77] {
                let mean: f64 = (0..grid)
                    .map(|i| map.kernel(v, (i as f64 + 0.5) / grid as f64))
                    .sum::<f64>()
                    / grid as f64;
                assert!((mean - v).abs() < 2e-3, "{map:?} E[K({v};U)]={mean}");
            }
        }
    }

    #[test]
    fn expect_h_matches_manual_values() {
        let h = |x: f64| x * x / 2.0; // T1 shape
        assert!((LimitMap::Ascending.expect_h(0.4, h) - 0.08).abs() < 1e-12);
        assert!((LimitMap::Descending.expect_h(0.4, h) - 0.18).abs() < 1e-12);
        // uniform: E[U²/2] = 1/6
        assert!((LimitMap::Uniform.expect_h(0.4, h) - 1.0 / 6.0).abs() < 1e-9);
        // RR: ((0.3)² + (0.7)²)/2 / 2
        let want = ((0.3f64).powi(2) / 2.0 + (0.7f64).powi(2) / 2.0) / 2.0;
        assert!((LimitMap::RoundRobin.expect_h(0.4, h) - want).abs() < 1e-12);
    }

    #[test]
    fn reverse_and_complement_structure() {
        assert_eq!(LimitMap::Ascending.reverse(), LimitMap::Descending);
        assert_eq!(LimitMap::RoundRobin.reverse(), LimitMap::RoundRobin);
        assert_eq!(
            LimitMap::RoundRobin.complement(),
            LimitMap::ComplementaryRoundRobin
        );
        for map in LimitMap::ALL {
            assert_eq!(map.complement().complement(), map);
        }
    }

    #[test]
    fn samples_follow_kernel() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        for map in LimitMap::ALL {
            let u = 0.3;
            let draws = 20_000;
            for &v in &[0.2, 0.5, 0.8] {
                let hits = (0..draws).filter(|_| map.sample(u, &mut rng) <= v).count();
                let emp = hits as f64 / draws as f64;
                assert!(
                    (emp - map.kernel(v, u)).abs() < 0.02,
                    "{map:?} v={v} emp={emp}"
                );
            }
        }
    }

    #[test]
    fn round_robin_empirical_kernel_converges_to_prop6() {
        // Proposition 6: ξ_RR(u) = (1−u)/2 or (1+u)/2 w.p. 1/2 each.
        let n = 100_000;
        let perm = round_robin(n);
        let k = 500; // k(n) → ∞, k(n)/n → 0
        let u = 0.4;
        for &(v, want) in &[
            (0.1, 0.0),
            (0.29, 0.0),
            (0.31, 0.5),
            (0.5, 0.5),
            (0.69, 0.5),
            (0.71, 1.0),
        ] {
            let got = empirical_kernel(&perm, v, u, k);
            assert!((got - want).abs() < 0.05, "v={v}: got {got} want {want}");
        }
    }

    #[test]
    fn ascending_empirical_kernel_is_step() {
        let n = 10_000;
        let perm = Permutation::identity(n);
        assert!(empirical_kernel(&perm, 0.5, 0.4, 50) > 0.95);
        assert!(empirical_kernel(&perm, 0.3, 0.4, 50) < 0.05);
    }
}
