//! Acyclic orientation (§2.1, steps 2–3 of the framework).
//!
//! Given an undirected graph and a relabeling, produces the directed graph
//! `G(θ_n)` over **new labels** where each edge points from the larger label
//! to the smaller: the out-neighbors `N⁺(y)` of `y` are its neighbors with
//! smaller labels, the in-neighbors `N⁻(y)` are larger. Both lists are
//! sorted ascending, so within-list rank comparisons (the `x < y`
//! transitivity pruning of the listing algorithms) are free.

use crate::relabel::Relabeling;
use trilist_graph::{Graph, NodeId};

/// An acyclically oriented graph in double-CSR form (out-lists + in-lists),
/// indexed by new labels.
#[derive(Clone, Debug)]
pub struct DirectedGraph {
    out_offsets: Vec<usize>,
    out_neighbors: Vec<NodeId>,
    in_offsets: Vec<usize>,
    in_neighbors: Vec<NodeId>,
}

impl DirectedGraph {
    /// Orients `graph` according to `relabeling`.
    pub fn orient(graph: &Graph, relabeling: &Relabeling) -> Self {
        let n = graph.n();
        assert_eq!(relabeling.len(), n, "relabeling size mismatch");
        let labels = relabeling.as_slice();

        let mut out_deg = vec![0usize; n];
        let mut in_deg = vec![0usize; n];
        for u in 0..n as u32 {
            let lu = labels[u as usize] as usize;
            for &v in graph.neighbors(u) {
                let lv = labels[v as usize] as usize;
                if lv < lu {
                    out_deg[lu] += 1;
                } else {
                    in_deg[lu] += 1;
                }
            }
        }
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut in_offsets = Vec::with_capacity(n + 1);
        out_offsets.push(0);
        in_offsets.push(0);
        for v in 0..n {
            out_offsets.push(out_offsets[v] + out_deg[v]);
            in_offsets.push(in_offsets[v] + in_deg[v]);
        }
        let mut out_neighbors = vec![0 as NodeId; out_offsets[n]];
        let mut in_neighbors = vec![0 as NodeId; in_offsets[n]];
        let mut out_cursor = out_offsets.clone();
        let mut in_cursor = in_offsets.clone();
        for u in 0..n as u32 {
            let lu = labels[u as usize] as usize;
            for &v in graph.neighbors(u) {
                let lv = labels[v as usize];
                if (lv as usize) < lu {
                    out_neighbors[out_cursor[lu]] = lv;
                    out_cursor[lu] += 1;
                } else {
                    in_neighbors[in_cursor[lu]] = lv;
                    in_cursor[lu] += 1;
                }
            }
        }
        for v in 0..n {
            out_neighbors[out_offsets[v]..out_offsets[v + 1]].sort_unstable();
            in_neighbors[in_offsets[v]..in_offsets[v + 1]].sort_unstable();
        }
        DirectedGraph {
            out_offsets,
            out_neighbors,
            in_offsets,
            in_neighbors,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed edges (= undirected `m`).
    pub fn m(&self) -> usize {
        self.out_neighbors.len()
    }

    /// Out-neighbors `N⁺(v)` (labels `< v`), sorted ascending.
    pub fn out(&self, v: NodeId) -> &[NodeId] {
        &self.out_neighbors[self.out_offsets[v as usize]..self.out_offsets[v as usize + 1]]
    }

    /// In-neighbors `N⁻(v)` (labels `> v`), sorted ascending.
    pub fn in_(&self, v: NodeId) -> &[NodeId] {
        &self.in_neighbors[self.in_offsets[v as usize]..self.in_offsets[v as usize + 1]]
    }

    /// Out-degree `X_v(θ_n)`.
    pub fn x(&self, v: NodeId) -> usize {
        self.out_offsets[v as usize + 1] - self.out_offsets[v as usize]
    }

    /// In-degree `Y_v(θ_n)`.
    pub fn y(&self, v: NodeId) -> usize {
        self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]
    }

    /// Total degree `d_v(θ_n) = X_v + Y_v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.x(v) + self.y(v)
    }

    /// Tests the directed edge `u → w` by binary search on `N⁺(u)`.
    pub fn has_out_edge(&self, u: NodeId, w: NodeId) -> bool {
        self.out(u).binary_search(&w).is_ok()
    }

    /// Maximum out-degree `max_i X_i(θ_n)` — the quantity minimized by the
    /// degenerate orientation.
    pub fn max_out_degree(&self) -> usize {
        (0..self.n() as NodeId)
            .map(|v| self.x(v))
            .max()
            .unwrap_or(0)
    }

    /// All out-degrees indexed by label.
    pub fn out_degrees(&self) -> Vec<u32> {
        (0..self.n() as NodeId).map(|v| self.x(v) as u32).collect()
    }

    /// All in-degrees indexed by label.
    pub fn in_degrees(&self) -> Vec<u32> {
        (0..self.n() as NodeId).map(|v| self.y(v) as u32).collect()
    }

    /// Structural sanity check used by tests and debug assertions: every
    /// out-neighbor is smaller, every in-neighbor larger, lists sorted and
    /// mutually consistent.
    pub fn validate(&self) -> bool {
        for v in 0..self.n() as NodeId {
            let out = self.out(v);
            if !out.windows(2).all(|w| w[0] < w[1]) || out.iter().any(|&w| w >= v) {
                return false;
            }
            let inn = self.in_(v);
            if !inn.windows(2).all(|w| w[0] < w[1]) || inn.iter().any(|&w| w <= v) {
                return false;
            }
            for &w in out {
                if self.in_(w).binary_search(&v).is_err() {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0-1, 0-2, 1-2, 1-3, 2-3
        Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn identity_orientation() {
        let g = diamond();
        let d = DirectedGraph::orient(&g, &Relabeling::identity(4));
        assert!(d.validate());
        assert_eq!(d.out(0), &[] as &[u32]);
        assert_eq!(d.out(1), &[0]);
        assert_eq!(d.out(2), &[0, 1]);
        assert_eq!(d.out(3), &[1, 2]);
        assert_eq!(d.in_(0), &[1, 2]);
        assert_eq!(d.in_(3), &[] as &[u32]);
        assert_eq!(d.m(), 5);
    }

    #[test]
    fn degrees_sum_to_total() {
        let g = diamond();
        let d = DirectedGraph::orient(&g, &Relabeling::identity(4));
        let labels = Relabeling::identity(4);
        for v in 0..4u32 {
            let orig = labels.inverse()[v as usize];
            assert_eq!(d.degree(v), g.degree(orig));
        }
        let total_out: usize = (0..4u32).map(|v| d.x(v)).sum();
        let total_in: usize = (0..4u32).map(|v| d.y(v)).sum();
        assert_eq!(total_out, g.m());
        assert_eq!(total_in, g.m());
    }

    #[test]
    fn relabeled_orientation_swaps_direction() {
        let g = diamond();
        // reverse labels: node v gets label 3 - v
        let r = Relabeling::from_labels(vec![3, 2, 1, 0]);
        let d = DirectedGraph::orient(&g, &r);
        assert!(d.validate());
        // node 3 (label 0) now has everything pointing to it via in-lists
        assert_eq!(d.out(0), &[] as &[u32]);
        // label 3 is node 0; its undirected neighbors 1, 2 have labels 2, 1
        assert_eq!(d.out(3), &[1, 2]);
    }

    #[test]
    fn has_out_edge() {
        let g = diamond();
        let d = DirectedGraph::orient(&g, &Relabeling::identity(4));
        assert!(d.has_out_edge(2, 0));
        assert!(d.has_out_edge(2, 1));
        assert!(!d.has_out_edge(2, 3));
        assert!(!d.has_out_edge(0, 2));
    }

    #[test]
    fn acyclicity_is_structural() {
        // out-edges strictly decrease the label, so any path has strictly
        // decreasing labels and no cycle can exist; validate() checks this
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        use rand::Rng;
        for _ in 0..10 {
            let n = 30;
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.2) {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges).unwrap();
            let r = crate::family::OrderFamily::Uniform.relabeling(&g, &mut rng);
            let d = DirectedGraph::orient(&g, &r);
            assert!(d.validate());
        }
    }

    #[test]
    fn max_out_degree() {
        let g = diamond();
        let d = DirectedGraph::orient(&g, &Relabeling::identity(4));
        assert_eq!(d.max_out_degree(), 2);
    }
}
