//! Algorithm 1: construction of optimal permutations (§6.1).
//!
//! Given the method's cost-shape function `h` and the monotonicity of
//! `r(x) = g(J⁻¹(x)) / w(J⁻¹(x))` (same as that of `g(x)/w(x)`), the
//! algorithm sorts the sequence `z = (h(1/n), …, h(1))` in the *opposite*
//! order of `r`'s monotonicity and reads off the minimizing permutation
//! (Theorem 3). With `w(x) = min(x, a)`, `r` is increasing, which recovers
//! `θ_D` for T1/E1, RR for T2, and CRR for E4 (Corollaries 1–2).

use crate::perm::Permutation;

/// Monotonicity of `r(x) = g(x)/w(x)` on the support.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Monotonicity {
    /// `r` increasing — the common case for triangle listing
    /// (`g(x)/w(x) = (x² − x)/min(x, a)` is increasing).
    Increasing,
    /// `r` decreasing.
    Decreasing,
}

/// Builds the cost-minimizing permutation for shape `h` (Algorithm 1).
///
/// Sorting is stable on the original index, so ties (constant stretches of
/// `h`) are broken deterministically; the paper allows arbitrary
/// tie-breaking.
pub fn opt_permutation<H: Fn(f64) -> f64>(n: usize, h: H, r: Monotonicity) -> Permutation {
    let mut z: Vec<(f64, u32)> = (0..n)
        .map(|i| (h((i + 1) as f64 / n as f64), i as u32))
        .collect();
    match r {
        Monotonicity::Increasing => {
            z.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("h must not produce NaN"))
        }
        Monotonicity::Decreasing => {
            z.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("h must not produce NaN"))
        }
    }
    let theta: Vec<u32> = z.into_iter().map(|(_, i)| i).collect();
    Permutation::new(theta).expect("sorting indices preserves bijection")
}

/// Builds the cost-*maximizing* permutation for shape `h`: by Corollary 3
/// the worst map is the complement of the best, so this is
/// `opt_permutation(…).complement()`.
pub fn pessimal_permutation<H: Fn(f64) -> f64>(n: usize, h: H, r: Monotonicity) -> Permutation {
    opt_permutation(n, h, r).complement()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{descending, round_robin};

    #[test]
    fn t1_shape_recovers_descending() {
        // h(x) = x²/2 increasing + r increasing → θ_D
        let p = opt_permutation(10, |x| x * x / 2.0, Monotonicity::Increasing);
        assert_eq!(p, descending(10));
    }

    #[test]
    fn t3_shape_recovers_ascending() {
        // T3 has h(x) = (1−x)²/2, decreasing + r increasing → θ_A
        let p = opt_permutation(
            10,
            |x| (1.0 - x) * (1.0 - x) / 2.0,
            Monotonicity::Increasing,
        );
        assert_eq!(p, Permutation::identity(10));
    }

    #[test]
    fn t2_shape_is_round_robin_like() {
        // h(x) = x(1−x): symmetric peak at 1/2 → large-degree positions get
        // the extreme labels, exactly like RR (possibly mirrored in ties).
        let n = 50;
        let p = opt_permutation(n, |x| x * (1.0 - x), Monotonicity::Increasing);
        let rr = round_robin(n);
        // compare the *distance from the middle* of each position's label:
        // OPT and RR agree on |label - n/2| up to tie-breaks at equal h
        for pos in 0..n {
            let d_opt = (p.label(pos) as f64 + 1.0 - n as f64 / 2.0).abs().round();
            let d_rr = (rr.label(pos) as f64 + 1.0 - n as f64 / 2.0).abs().round();
            assert!(
                (d_opt - d_rr).abs() <= 1.0,
                "pos {pos}: opt label {} rr label {}",
                p.label(pos),
                rr.label(pos)
            );
        }
    }

    #[test]
    fn e4_shape_is_crr_like() {
        // E4's h(x) = (x² + (1−x)²)/2 dips at 1/2 → large degrees go to the
        // middle, like CRR.
        let n = 51;
        let p = opt_permutation(
            n,
            |x| (x * x + (1.0 - x) * (1.0 - x)) / 2.0,
            Monotonicity::Increasing,
        );
        let largest = p.label(n - 1) as i64;
        assert!(
            (largest - n as i64 / 2).abs() <= 1,
            "largest got label {largest}"
        );
    }

    #[test]
    fn decreasing_r_flips_the_order() {
        let inc = opt_permutation(10, |x| x, Monotonicity::Increasing);
        let dec = opt_permutation(10, |x| x, Monotonicity::Decreasing);
        assert_eq!(inc, descending(10));
        assert_eq!(dec, Permutation::identity(10));
    }

    #[test]
    fn constant_h_is_stable_identity() {
        let p = opt_permutation(8, |_| 1.0, Monotonicity::Increasing);
        assert_eq!(p, Permutation::identity(8));
    }

    #[test]
    fn constant_h_is_stable_identity_for_both_monotonicities() {
        // a constant shape gives no information; the stable sort must fall
        // back to the identity regardless of r's direction
        for r in [Monotonicity::Increasing, Monotonicity::Decreasing] {
            let p = opt_permutation(8, |_| 2.5, r);
            assert_eq!(p, Permutation::identity(8), "{r:?}");
            let w = pessimal_permutation(8, |_| 2.5, r);
            assert_eq!(w, Permutation::identity(8).complement(), "{r:?}");
        }
    }

    #[test]
    fn degenerate_sizes_n_le_2() {
        let h = |x: f64| x * x / 2.0;
        for r in [Monotonicity::Increasing, Monotonicity::Decreasing] {
            // n = 0: empty permutation, no panic
            assert_eq!(opt_permutation(0, h, r).len(), 0);
            assert_eq!(pessimal_permutation(0, h, r).len(), 0);
            // n = 1: only one bijection exists
            assert_eq!(opt_permutation(1, h, r), Permutation::identity(1));
            assert_eq!(pessimal_permutation(1, h, r), Permutation::identity(1));
        }
        // n = 2 with increasing h and increasing r: larger h first → θ_D
        assert_eq!(
            opt_permutation(2, h, Monotonicity::Increasing),
            descending(2)
        );
        assert_eq!(
            opt_permutation(2, h, Monotonicity::Decreasing),
            Permutation::identity(2)
        );
        // pessimal is always the complement, including at n = 2
        assert_eq!(
            pessimal_permutation(2, h, Monotonicity::Increasing),
            descending(2).complement()
        );
    }

    #[test]
    fn pessimal_is_complement_of_optimal() {
        let h = |x: f64| x * x / 2.0;
        let best = opt_permutation(12, h, Monotonicity::Increasing);
        let worst = pessimal_permutation(12, h, Monotonicity::Increasing);
        assert_eq!(worst, best.complement());
        // for T1's shape: best = descending, worst = ascending
        assert_eq!(worst, Permutation::identity(12));
    }
}
