//! Tailored (per-graph) orderings — Lécuyer-style structural relabelings.
//!
//! The θ families of §5 act on degree *positions* only: two nodes of equal
//! degree are interchangeable. Real graphs are not exchangeable — Berry et
//! al. document communities, dense cores and hub anomalies where the
//! degree-position abstraction leaves measurable work on the table. This
//! module adds orderings computed from the actual adjacency structure:
//!
//! * [`split_labels`] — a neighborhood-aware *split* ordering that places
//!   hubs by their out-wedge cost (how much scanning work they would induce
//!   if labeled late) rather than by raw degree;
//! * [`refine_labels`] — a sampled greedy refinement that proposes label
//!   swaps and keeps those that strictly reduce the discrete cost model's
//!   predicted E1/E4 work, computed exactly from the oriented degrees;
//! * [`OrderingKind`] — the closed set of orderings the autotuner may pick
//!   from: the six [`OrderFamily`] members plus the two tailored ones.
//!
//! All tailored orderings are deterministic functions of the graph: they
//! ignore the caller's RNG (like [`OrderFamily::Degenerate`]) so repeated
//! preparation of the same graph yields byte-identical artifacts.

use crate::family::OrderFamily;
use crate::relabel::Relabeling;
use rand::Rng;
use trilist_graph::Graph;

/// Internal seed for the refinement pass's proposal stream. Fixed so the
/// refined ordering is a pure function of the graph.
const REFINE_SEED: u64 = 0x7461_696c_6f72_6564; // "tailored"

/// Proposals per node examined by the default refinement pass.
const REFINE_PROPOSALS_PER_NODE: usize = 8;

/// The objective minimized by [`refine_labels`]: the exact oriented
/// operation count of a scanning-edge method, from the closed forms of
/// eqs. (7)–(9) applied to the out-degrees `X` and in-degrees `Y` induced
/// by a labeling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefineObjective {
    /// E1 work `Σ X(X−1)/2 + X·Y` (local + remote scans).
    E1,
    /// E4 work `Σ X(X−1)/2 + Y(Y−1)/2`.
    E4,
}

impl RefineObjective {
    /// Per-node contribution given out-degree `x` and total degree `d`.
    #[inline]
    fn node_cost(&self, x: u64, d: u64) -> u64 {
        let y = d - x;
        match self {
            RefineObjective::E1 => x * x.saturating_sub(1) / 2 + x * y,
            RefineObjective::E4 => x * x.saturating_sub(1) / 2 + y * y.saturating_sub(1) / 2,
        }
    }
}

/// Exact predicted work of `objective` under `labels` — the discrete cost
/// model evaluated on the realized orientation rather than on a random
/// graph conditioned on degrees.
pub fn orientation_work(graph: &Graph, labels: &[u32], objective: RefineObjective) -> u64 {
    debug_assert_eq!(labels.len(), graph.n());
    let x = out_degrees(graph, labels);
    (0..graph.n())
        .map(|v| objective.node_cost(x[v] as u64, graph.degree(v as u32) as u64))
        .sum()
}

/// Out-degree of every node under `labels` (out-neighbors carry smaller
/// labels, matching the orientation convention of `DirectedGraph::orient`).
fn out_degrees(graph: &Graph, labels: &[u32]) -> Vec<u32> {
    let mut x = vec![0u32; graph.n()];
    for v in 0..graph.n() as u32 {
        let lv = labels[v as usize];
        x[v as usize] = graph
            .neighbors(v)
            .iter()
            .filter(|&&w| labels[w as usize] < lv)
            .count() as u32;
    }
    x
}

/// Neighborhood-aware split ordering.
///
/// Scores every node by its *out-wedge cost* — the scanning work it would
/// induce if labeled after its neighborhood:
///
/// ```text
/// score(v) = Σ_{w ∈ N(v)} min(deg(w), deg(v))
/// ```
///
/// which counts, per incident edge, the shorter adjacency list an
/// edge-scanning kernel must traverse when the edge is oriented out of `v`.
/// Nodes are labeled in descending score (score ties broken by descending
/// degree, then ascending node id), so expensive hubs get the smallest
/// labels and therefore the smallest out-degrees. Unlike `θ_D`, two nodes
/// of equal degree split apart when their neighborhoods differ: a hub glued
/// to other hubs outranks a hub fanning out to leaves.
pub fn split_labels(graph: &Graph) -> Vec<u32> {
    let n = graph.n();
    let mut scored: Vec<(u64, u32, u32)> = (0..n as u32)
        .map(|v| {
            let dv = graph.degree(v) as u64;
            let score: u64 = graph
                .neighbors(v)
                .iter()
                .map(|&w| dv.min(graph.degree(w) as u64))
                .sum();
            (score, graph.degree(v) as u32, v)
        })
        .collect();
    // descending score, descending degree, ascending id — fully ordered, so
    // the result is deterministic without relying on sort stability
    scored.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(b.1.cmp(&a.1)).then(a.2.cmp(&b.2)));
    let mut labels = vec![0u32; n];
    for (label, &(_, _, v)) in scored.iter().enumerate() {
        labels[v as usize] = label as u32;
    }
    labels
}

/// Sampled greedy refinement: proposes label swaps from a deterministic
/// stream and keeps each swap iff it *strictly* reduces `objective`'s exact
/// predicted work. `proposals` bounds the number of candidate swaps; the
/// incremental delta for a swap costs `O(deg(a) + deg(b))`.
///
/// The proposal stream pairs a uniformly drawn node with a node holding a
/// nearby label (within a window of `n/8 + 1`), since the objective's
/// gradient is dominated by local label inversions; `seed` fixes the
/// stream, making the result a pure function of `(graph, labels, seed)`.
pub fn refine_labels(
    graph: &Graph,
    labels: &[u32],
    objective: RefineObjective,
    proposals: usize,
    seed: u64,
) -> Vec<u32> {
    let n = graph.n();
    debug_assert_eq!(labels.len(), n);
    if n < 2 {
        return labels.to_vec();
    }
    let mut labels = labels.to_vec();
    // node holding each label, for window-relative proposals
    let mut holder = vec![0u32; n];
    for (v, &l) in labels.iter().enumerate() {
        holder[l as usize] = v as u32;
    }
    let mut x = out_degrees(graph, &labels);
    let cost = |x: u32, v: u32| objective.node_cost(x as u64, graph.degree(v) as u64) as i64;

    let window = (n / 8).max(1) as u64;
    let mut state = seed | 1;
    let mut next = move || {
        // splitmix64 — deterministic, dependency-free
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    // scratch: neighbors of lo_node whose edge flips in this proposal
    let mut lo_flipped = vec![false; n];

    for _ in 0..proposals {
        let a = (next() % n as u64) as u32;
        let la = labels[a as usize] as u64;
        let off = next() % (2 * window + 1);
        let lb = (la + off).saturating_sub(window).min(n as u64 - 1);
        let b = holder[lb as usize];
        if a == b {
            continue;
        }
        let (la, lb) = (labels[a as usize], labels[b as usize]);
        let (lo_node, lo, hi_node, hi) = if la < lb {
            (a, la, b, lb)
        } else {
            (b, lb, a, la)
        };

        // Swapping labels lo ↔ hi flips exactly the edges whose other
        // endpoint's label lies strictly between them, plus the lo–hi edge
        // itself. Accumulate X deltas for the two nodes and the affected
        // in-between neighbors.
        let mut delta = 0i64;
        let mut x_lo = x[lo_node as usize] as i64;
        let mut x_hi = x[hi_node as usize] as i64;
        // neighbors of lo_node moving below it (lo_node rises to hi)
        for &w in graph.neighbors(lo_node) {
            let lw = labels[w as usize];
            if w == hi_node {
                // hi_node drops below lo_node's new label: edge flips to out
                x_lo += 1;
                x_hi -= 1;
            } else if lo < lw && lw < hi {
                // was w→lo_node (w's out-edge); becomes lo_node→w
                delta += cost(x[w as usize] - 1, w) - cost(x[w as usize], w);
                x_lo += 1;
                lo_flipped[w as usize] = true;
            }
        }
        // neighbors of hi_node moving above it (hi_node sinks to lo)
        for &w in graph.neighbors(hi_node) {
            let lw = labels[w as usize];
            if w != lo_node && lo < lw && lw < hi {
                // a common neighbor loses the lo-edge and gains the hi-edge:
                // its X is unchanged, so undo the lo pass's contribution
                if lo_flipped[w as usize] {
                    delta -= cost(x[w as usize] - 1, w) - cost(x[w as usize], w);
                } else {
                    delta += cost(x[w as usize] + 1, w) - cost(x[w as usize], w);
                }
                x_hi -= 1;
            }
        }
        for &w in graph.neighbors(lo_node) {
            lo_flipped[w as usize] = false;
        }
        delta += cost(x_lo as u32, lo_node) - cost(x[lo_node as usize], lo_node);
        delta += cost(x_hi as u32, hi_node) - cost(x[hi_node as usize], hi_node);

        if delta < 0 {
            // commit: re-apply the same traversal, mutating x
            for &w in graph.neighbors(lo_node) {
                let lw = labels[w as usize];
                if w != hi_node && lo < lw && lw < hi {
                    x[w as usize] -= 1;
                }
            }
            for &w in graph.neighbors(hi_node) {
                let lw = labels[w as usize];
                if w != lo_node && lo < lw && lw < hi {
                    x[w as usize] += 1;
                }
            }
            x[lo_node as usize] = x_lo as u32;
            x[hi_node as usize] = x_hi as u32;
            labels[lo_node as usize] = hi;
            labels[hi_node as usize] = lo;
            holder[lo as usize] = hi_node;
            holder[hi as usize] = lo_node;
        }
    }
    labels
}

/// The refined ordering used by the autotuner: the split ordering polished
/// by `8n` sampled swap proposals against the E1 objective.
pub fn refined_labels(graph: &Graph) -> Vec<u32> {
    let base = split_labels(graph);
    refine_labels(
        graph,
        &base,
        RefineObjective::E1,
        REFINE_PROPOSALS_PER_NODE * graph.n(),
        REFINE_SEED,
    )
}

/// An ordering the autotuner may select: a θ family or a tailored,
/// graph-structural ordering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OrderingKind {
    /// One of the six [`OrderFamily`] members.
    Family(OrderFamily),
    /// Neighborhood-aware split ordering ([`split_labels`]).
    Split,
    /// Split ordering plus sampled greedy refinement ([`refined_labels`]).
    Refined,
}

impl From<OrderFamily> for OrderingKind {
    fn from(family: OrderFamily) -> Self {
        OrderingKind::Family(family)
    }
}

impl OrderingKind {
    /// Every ordering the autotuner enumerates: the six families in
    /// Table 12 column order, then the two tailored orderings.
    pub const ALL: [OrderingKind; 8] = [
        OrderingKind::Family(OrderFamily::Descending),
        OrderingKind::Family(OrderFamily::Ascending),
        OrderingKind::Family(OrderFamily::RoundRobin),
        OrderingKind::Family(OrderFamily::ComplementaryRoundRobin),
        OrderingKind::Family(OrderFamily::Uniform),
        OrderingKind::Family(OrderFamily::Degenerate),
        OrderingKind::Split,
        OrderingKind::Refined,
    ];

    /// Short wire/CLI name; family names are shared with
    /// [`OrderFamily::name`].
    pub fn name(&self) -> &'static str {
        match self {
            OrderingKind::Family(f) => f.name(),
            OrderingKind::Split => "split",
            OrderingKind::Refined => "refined",
        }
    }

    /// Inverse of [`OrderingKind::name`].
    pub fn from_name(name: &str) -> Option<OrderingKind> {
        OrderingKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Whether this ordering is computed from graph structure rather than
    /// degree positions.
    pub fn is_tailored(&self) -> bool {
        !matches!(self, OrderingKind::Family(_))
    }

    /// Builds the node → label relabeling. Tailored orderings (and
    /// `Degenerate`) are deterministic and ignore `rng`.
    pub fn relabeling<R: Rng + ?Sized>(&self, graph: &Graph, rng: &mut R) -> Relabeling {
        match self {
            OrderingKind::Family(f) => f.relabeling(graph, rng),
            OrderingKind::Split => Relabeling::from_labels(split_labels(graph)),
            OrderingKind::Refined => Relabeling::from_labels(refined_labels(graph)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn two_hubs() -> Graph {
        // hub 0 glued to hubs {1,2}; hub 3 fanning out to leaves {4..9};
        // deg(0) = deg(3) = 3? make both degree 4:
        // 0-1,0-2,0-10,0-11 where 1,2 are themselves degree-3; 3-4..3-7 leaves
        Graph::from_edges(
            12,
            &[
                (0, 1),
                (0, 2),
                (0, 10),
                (0, 11),
                (1, 2),
                (1, 10),
                (2, 11),
                (3, 4),
                (3, 5),
                (3, 6),
                (3, 7),
            ],
        )
        .unwrap()
    }

    #[test]
    fn split_labels_are_bijection() {
        let g = two_hubs();
        let mut l = split_labels(&g);
        l.sort_unstable();
        assert_eq!(l, (0..12).collect::<Vec<u32>>());
    }

    #[test]
    fn split_separates_equal_degree_hubs_by_neighborhood() {
        let g = two_hubs();
        let l = split_labels(&g);
        // both hubs have degree 4, but hub 0's neighbors are dense while hub
        // 3's are leaves — hub 0's wedge score is higher, so it labels first
        assert_eq!(g.degree(0), g.degree(3));
        assert!(l[0] < l[3], "dense hub should precede leaf hub: {l:?}");
    }

    #[test]
    fn split_empty_and_tiny_graphs() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert!(split_labels(&g).is_empty());
        let g = Graph::from_edges(1, &[]).unwrap();
        assert_eq!(split_labels(&g), vec![0]);
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let mut l = split_labels(&g);
        l.sort_unstable();
        assert_eq!(l, vec![0, 1]);
    }

    #[test]
    fn refinement_never_increases_objective() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for trial in 0..5 {
            let n = 60;
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    use rand::Rng;
                    if rng.gen_bool(0.12) {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges).unwrap();
            for objective in [RefineObjective::E1, RefineObjective::E4] {
                let base: Vec<u32> = (0..n as u32).collect();
                let before = orientation_work(&g, &base, objective);
                let refined = refine_labels(&g, &base, objective, 10 * n, 42 + trial);
                let after = orientation_work(&g, &refined, objective);
                assert!(after <= before, "{objective:?}: {after} > {before}");
                let mut sorted = refined.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..n as u32).collect::<Vec<u32>>());
            }
        }
    }

    #[test]
    fn refinement_incremental_deltas_match_recompute() {
        // the committed x[] after many swaps must equal a fresh out_degrees()
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 40;
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                use rand::Rng;
                if rng.gen_bool(0.2) {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(n, &edges).unwrap();
        let base: Vec<u32> = (0..n as u32).rev().collect();
        let refined = refine_labels(&g, &base, RefineObjective::E1, 20 * n, 3);
        // orientation_work recomputes X from scratch; if the incremental
        // bookkeeping drifted, accepted "improvements" would show up as a
        // work increase vs the base here on some seed
        assert!(
            orientation_work(&g, &refined, RefineObjective::E1)
                <= orientation_work(&g, &base, RefineObjective::E1)
        );
    }

    #[test]
    fn refined_is_deterministic() {
        let g = two_hubs();
        assert_eq!(refined_labels(&g), refined_labels(&g));
    }

    #[test]
    fn ordering_kind_names_round_trip() {
        for kind in OrderingKind::ALL {
            assert_eq!(OrderingKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(OrderingKind::from_name("nope"), None);
        let names: std::collections::HashSet<_> =
            OrderingKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), OrderingKind::ALL.len());
    }

    #[test]
    fn tailored_relabelings_ignore_rng() {
        let g = two_hubs();
        let mut a = rand::rngs::StdRng::seed_from_u64(1);
        let mut b = rand::rngs::StdRng::seed_from_u64(999);
        for kind in [OrderingKind::Split, OrderingKind::Refined] {
            assert!(kind.is_tailored());
            assert_eq!(
                kind.relabeling(&g, &mut a).as_slice(),
                kind.relabeling(&g, &mut b).as_slice()
            );
        }
    }
}
