//! The partitioned listing engine: column-load + edge-stream.
//!
//! The label space `[0, n)` is split into `P` contiguous intervals. The
//! engine makes `P` passes; pass `a` loads *column* `a` — every directed
//! edge whose target label falls in interval `a` — into memory and streams
//! the full edge file once. For each streamed edge `z → y`, the triangles
//! whose smallest corner `x` lies in interval `a` are exactly the matches
//! of `N⁺(y)∩a` against the sub-`y` prefix of `N⁺(z)∩a` — E1's
//! intersection restricted to the column, so every triangle is found in
//! exactly one pass (the one owning its smallest corner) and the total
//! comparison count equals in-memory E1's.
//!
//! I/O cost: `P·m` streamed edges plus `m` column loads, the classic
//! tradeoff the paper defers to \[17\]; memory: one column
//! (`≈ m/P` edges expected) — choose `P` from the RAM budget.

use crate::storage::{EdgeFile, IoStats, ScratchDir};
use trilist_core::kernel::{Kernels, ListDir};
use trilist_core::obs::{ChunkSpan, Counter, HistKind, Recorder, NOOP};
use trilist_core::{CostReport, Method, RunBudget, StopReason};
use trilist_order::DirectedGraph;

/// Estimated resident bytes per column edge: the `u32` target plus its
/// share of the per-node `Vec` bookkeeping, rounded up to a power of two.
pub const COLUMN_BYTES_PER_EDGE: u64 = 8;

/// Contiguous label intervals covering `[0, n)`.
#[derive(Clone, Debug)]
pub struct Partitioning {
    bounds: Vec<u32>, // P+1 fenceposts
}

impl Partitioning {
    /// Splits `[0, n)` into `p` near-equal *label-width* intervals.
    ///
    /// Under skewed orientations (descending order puts the hubs at small
    /// labels) the column masses can be wildly unequal; prefer
    /// [`Partitioning::balanced`] for memory-bound runs.
    pub fn even(n: usize, p: usize) -> Partitioning {
        let p = p.max(1);
        let mut bounds = Vec::with_capacity(p + 1);
        for i in 0..=p {
            bounds.push((i * n / p) as u32);
        }
        Partitioning { bounds }
    }

    /// Splits `[0, n)` so every interval owns roughly `m/p` column edges
    /// (an edge `z → x` belongs to the column of its target `x`, so the
    /// column mass of a label is its in-degree `Y_x`). This is the simplest
    /// of the partitioning schemes whose design the paper leaves to \[17\].
    pub fn balanced(g: &DirectedGraph, p: usize) -> Partitioning {
        let p = p.max(1);
        let n = g.n();
        let total = g.m() as u64;
        let per_part = total.div_ceil(p as u64).max(1);
        let mut bounds = vec![0u32];
        let mut acc = 0u64;
        for x in 0..n as u32 {
            acc += g.y(x) as u64;
            if acc >= per_part && (bounds.len() as u64) < p as u64 && (x as usize) < n - 1 {
                bounds.push(x + 1);
                acc = 0;
            }
        }
        while bounds.len() < p + 1 {
            bounds.push(n as u32);
        }
        Partitioning { bounds }
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.bounds.len() - 1
    }

    /// True when there are no intervals (empty label space).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The half-open interval `a`.
    pub fn interval(&self, a: usize) -> std::ops::Range<u32> {
        self.bounds[a]..self.bounds[a + 1]
    }

    /// Which interval holds `label`.
    pub fn owner(&self, label: u32) -> usize {
        self.bounds.partition_point(|&b| b <= label) - 1
    }

    /// Picks the coarsest in-degree-balanced partitioning whose expected
    /// resident column (`≈ m/P` edges at [`COLUMN_BYTES_PER_EDGE`] bytes)
    /// fits inside `bytes`. With no memory limit this is a single pass;
    /// `P` never exceeds `n`, the finest meaningful split.
    pub fn for_memory_budget(g: &DirectedGraph, bytes: Option<u64>) -> Partitioning {
        let p = match bytes {
            None => 1,
            Some(bytes) => {
                let need = g.m() as u64 * COLUMN_BYTES_PER_EDGE;
                let p = need.div_ceil(bytes.max(1)).max(1);
                p.min(g.n().max(1) as u64) as usize
            }
        };
        Partitioning::balanced(g, p)
    }
}

/// Result of an external-memory run.
#[derive(Clone, Debug)]
pub struct XmRun {
    /// Comparison accounting (identical to in-memory E1's).
    pub cost: CostReport,
    /// I/O transferred.
    pub io: IoStats,
    /// Peak resident column size, in edges.
    pub peak_memory_edges: usize,
}

/// Outcome of a budgeted external-memory run.
///
/// Passes are the fault-isolation unit out of core: a pass either streams
/// to completion (its column's triangles are fully delivered, in order) or
/// is not started, so a partial outcome is always a clean prefix of the
/// column sequence and can be resumed by re-running the remaining
/// intervals.
#[derive(Clone, Debug)]
pub enum XmOutcome {
    /// Every pass ran; the triangle set is complete.
    Complete(XmRun),
    /// The budget tripped between passes; `run` covers the first
    /// `completed_passes` columns only.
    Partial {
        /// Accounting for the passes that did run.
        run: XmRun,
        /// Number of leading columns fully processed.
        completed_passes: usize,
        /// Total passes the partitioning called for.
        total_passes: usize,
        /// What stopped the run.
        reason: StopReason,
    },
}

impl XmOutcome {
    /// True when every pass completed.
    pub fn is_complete(&self) -> bool {
        matches!(self, XmOutcome::Complete(_))
    }

    /// The run accounting, complete or not.
    pub fn run(&self) -> &XmRun {
        match self {
            XmOutcome::Complete(run) => run,
            XmOutcome::Partial { run, .. } => run,
        }
    }

    /// Unwraps the complete run, if there is one.
    pub fn complete(self) -> Option<XmRun> {
        match self {
            XmOutcome::Complete(run) => Some(run),
            XmOutcome::Partial { .. } => None,
        }
    }
}

/// External-memory E1 over `g` with `p` in-degree-balanced partitions.
///
/// Triangles are delivered as labels `(x, y, z)`, `x < y < z`, in column
/// order (all `x ∈ interval 0` first, …).
pub fn xm_e1<F: FnMut(u32, u32, u32)>(
    g: &DirectedGraph,
    p: usize,
    sink: F,
) -> std::io::Result<XmRun> {
    xm_e1_with(g, &Partitioning::balanced(g, p), sink)
}

/// External-memory E1 with an explicit partitioning.
pub fn xm_e1_with<F: FnMut(u32, u32, u32)>(
    g: &DirectedGraph,
    parts: &Partitioning,
    sink: F,
) -> std::io::Result<XmRun> {
    xm_e1_with_kernels(g, parts, &Kernels::paper(), sink)
}

/// External-memory E1 with an explicit partitioning and kernel context.
///
/// The hub bitmaps in `k` are built from the *full* graph, yet stay exact
/// on the column-restricted lists: a probe element always comes from the
/// other column list, so it lies inside the column interval by
/// construction, and the sub-`y` prefix constraint is satisfied because
/// out-list elements are `< y` (the same structural argument as in-memory
/// E1). Paper-cost fields are kernel-independent.
pub fn xm_e1_with_kernels<F: FnMut(u32, u32, u32)>(
    g: &DirectedGraph,
    parts: &Partitioning,
    k: &Kernels,
    sink: F,
) -> std::io::Result<XmRun> {
    let outcome = xm_e1_budgeted(g, parts, k, &RunBudget::unlimited(), sink)?;
    Ok(outcome
        .complete()
        .expect("an unlimited budget never interrupts a run"))
}

/// External-memory E1 under a [`RunBudget`].
///
/// The budget is checked at every pass boundary: the deadline and the
/// cancellation token before a column is loaded, the memory ceiling after
/// (a resident column is charged [`COLUMN_BYTES_PER_EDGE`] bytes per edge
/// and released when its pass ends). A tripped budget yields
/// [`XmOutcome::Partial`] carrying the accounting for the passes that did
/// complete — their triangles have already been delivered to `sink` in
/// column order, so the prefix is exact. Pair with
/// [`Partitioning::for_memory_budget`] to pick a `P` whose columns fit.
pub fn xm_e1_budgeted<F: FnMut(u32, u32, u32)>(
    g: &DirectedGraph,
    parts: &Partitioning,
    k: &Kernels,
    budget: &RunBudget,
    sink: F,
) -> std::io::Result<XmOutcome> {
    xm_e1_observed(g, parts, k, budget, &NOOP, sink)
}

/// [`xm_e1_budgeted`] with an observability sink: each completed pass is
/// emitted as a [`ChunkSpan`] (method `E1`, chunk = pass index, worker 0,
/// range = the pass's column interval) with chunk-wall/op histograms, and
/// every pass-boundary budget gate counts a
/// [`Counter::BudgetChecks`]. Recording is pure observation — triangles,
/// cost, and I/O accounting are identical to the unobserved run.
pub fn xm_e1_observed<F: FnMut(u32, u32, u32)>(
    g: &DirectedGraph,
    parts: &Partitioning,
    k: &Kernels,
    budget: &RunBudget,
    recorder: &dyn Recorder,
    mut sink: F,
) -> std::io::Result<XmOutcome> {
    let recording = recorder.enabled();
    let origin = std::time::Instant::now();
    let active = budget.start();
    let scratch = ScratchDir::new("e1")?;
    let mut io = IoStats::default();

    // setup: the main edge stream (z → y), and one column file per interval
    let all_edges = (0..g.n() as u32).flat_map(|z| g.out(z).iter().map(move |&y| (z, y)));
    let edge_file = EdgeFile::create(&scratch.file("edges.bin"), all_edges, &mut io)?;
    let mut columns = Vec::with_capacity(parts.len());
    for a in 0..parts.len() {
        let range = parts.interval(a);
        let col_edges = (0..g.n() as u32).flat_map(|z| {
            let range = range.clone();
            g.out(z)
                .iter()
                .copied()
                .filter(move |t| range.contains(t))
                .map(move |t| (z, t))
        });
        columns.push(EdgeFile::create(
            &scratch.file(&format!("col{a}.bin")),
            col_edges,
            &mut io,
        )?);
    }

    let mut cost = CostReport::default();
    let mut peak = 0usize;
    let mut completed = 0usize;
    let mut stopped = None;
    for (pass, column) in columns.iter().enumerate() {
        // deadline / cancellation gate before committing to a pass
        if recording {
            recorder.add(Counter::BudgetChecks, 1);
        }
        if let Some(reason) = active.check() {
            stopped = Some(reason);
            break;
        }
        let pass_started = std::time::Instant::now();
        let ops_before = cost.operations();
        // load column a: per-node slices of out-neighbors inside interval a
        let mut col_adj: Vec<Vec<u32>> = vec![Vec::new(); g.n()];
        let mut loaded = 0usize;
        column.stream(&mut io, |z, x| {
            col_adj[z as usize].push(x);
            loaded += 1;
        })?;
        io.edges_loaded += loaded as u64;
        peak = peak.max(loaded);
        // the resident column is the engine's working set; charge it and
        // bail before streaming if it blows the ceiling
        let charge = loaded as u64 * COLUMN_BYTES_PER_EDGE;
        active.add_memory(charge);
        if recording {
            recorder.add(Counter::BudgetChecks, 1);
        }
        if let Some(reason) = active.check() {
            active.release_memory(charge);
            stopped = Some(reason);
            break;
        }
        // stream all edges; intersect within the column
        edge_file.stream(&mut io, |z, y| {
            let za = &col_adj[z as usize];
            let ya = &col_adj[y as usize];
            // E1's local slice restricted to the column: elements < y
            let cut = za.partition_point(|&x| x < y);
            let local = &za[..cut];
            cost.local += local.len() as u64;
            cost.remote += ya.len() as u64;
            let stats = k.intersect(
                local,
                Some((z, ListDir::Out)),
                ya,
                Some((y, ListDir::Out)),
                |x| {
                    cost.triangles += 1;
                    sink(x, y, z);
                },
            );
            cost.pointer_advances += stats.advances;
        })?;
        io.edges_streamed += edge_file.len();
        active.release_memory(charge);
        completed += 1;
        if recording {
            let dur_ns = pass_started.elapsed().as_nanos() as u64;
            let ops = cost.operations().saturating_sub(ops_before);
            recorder.observe(HistKind::ChunkWallNs, dur_ns);
            recorder.observe(HistKind::ChunkOps, ops);
            recorder.span(ChunkSpan {
                method: Method::E1,
                policy: k.policy().name(),
                chunk: pass as u32,
                attempt: 0,
                worker: 0,
                range: parts.interval(pass),
                start_ns: pass_started.saturating_duration_since(origin).as_nanos() as u64,
                dur_ns,
                ops,
                ok: true,
            });
        }
    }
    let run = XmRun {
        cost,
        io,
        peak_memory_edges: peak,
    };
    Ok(match stopped {
        None => XmOutcome::Complete(run),
        Some(reason) => XmOutcome::Partial {
            run,
            completed_passes: completed,
            total_passes: parts.len(),
            reason,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use trilist_core::Method;
    use trilist_graph::dist::{sample_degree_sequence, DiscretePareto, Truncated};
    use trilist_graph::gen::{GraphGenerator, ResidualSampler};
    use trilist_order::{OrderFamily, Relabeling};

    fn fixture(n: usize, seed: u64) -> DirectedGraph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dist = Truncated::new(
            DiscretePareto {
                alpha: 1.7,
                beta: 6.0,
            },
            40,
        );
        let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
        let g = ResidualSampler.generate(&seq, &mut rng).graph;
        let relabeling = OrderFamily::Descending.relabeling(&g, &mut rng);
        DirectedGraph::orient(&g, &relabeling)
    }

    #[test]
    fn partitioning_owners() {
        let p = Partitioning::even(10, 3);
        assert_eq!(p.len(), 3);
        assert_eq!(p.interval(0), 0..3);
        assert_eq!(p.interval(1), 3..6);
        assert_eq!(p.interval(2), 6..10);
        for label in 0..10u32 {
            let owner = p.owner(label);
            assert!(p.interval(owner).contains(&label), "label {label}");
        }
    }

    #[test]
    fn matches_in_memory_e1_for_various_p() {
        let dg = fixture(800, 1);
        let mut want = Vec::new();
        let want_cost = Method::E1.run(&dg, |x, y, z| want.push((x, y, z)));
        want.sort_unstable();
        for p in [1usize, 2, 3, 7, 16] {
            let mut got = Vec::new();
            let run = xm_e1(&dg, p, |x, y, z| got.push((x, y, z))).unwrap();
            got.sort_unstable();
            assert_eq!(got, want, "p={p}");
            assert_eq!(run.cost.triangles, want_cost.triangles, "p={p}");
            // comparison accounting equals in-memory E1's regardless of P
            assert_eq!(run.cost.local, want_cost.local, "p={p} local");
            assert_eq!(run.cost.remote, want_cost.remote, "p={p} remote");
        }
    }

    #[test]
    fn adaptive_kernels_match_paper_across_partitions() {
        use trilist_core::kernel::KernelPolicy;
        let dg = fixture(800, 4);
        let mut want = Vec::new();
        let paper = xm_e1(&dg, 4, |x, y, z| want.push((x, y, z))).unwrap();
        let k = Kernels::build(KernelPolicy::adaptive(), &dg);
        let parts = Partitioning::balanced(&dg, 4);
        let mut got = Vec::new();
        let adaptive = xm_e1_with_kernels(&dg, &parts, &k, |x, y, z| got.push((x, y, z))).unwrap();
        assert_eq!(got, want);
        assert_eq!(adaptive.cost.triangles, paper.cost.triangles);
        assert_eq!(adaptive.cost.local, paper.cost.local);
        assert_eq!(adaptive.cost.remote, paper.cost.remote);
    }

    #[test]
    fn io_grows_linearly_in_p() {
        let dg = fixture(600, 2);
        let m = dg.m() as u64;
        for p in [1usize, 2, 4] {
            let run = xm_e1(&dg, p, |_, _, _| {}).unwrap();
            // edge stream is read once per pass; columns once in total
            assert_eq!(run.io.edges_streamed, p as u64 * m, "p={p}");
            assert_eq!(run.io.edges_loaded, m, "p={p}");
            // setup wrote the stream + all columns
            assert_eq!(run.io.bytes_written, (m + m) * 8, "p={p}");
        }
    }

    #[test]
    fn memory_shrinks_with_p() {
        let dg = fixture(2_000, 3);
        let run1 = xm_e1(&dg, 1, |_, _, _| {}).unwrap();
        let run8 = xm_e1(&dg, 8, |_, _, _| {}).unwrap();
        assert_eq!(run1.peak_memory_edges, dg.m());
        assert!(
            run8.peak_memory_edges * 4 < run1.peak_memory_edges,
            "peak at p=8: {} vs p=1: {}",
            run8.peak_memory_edges,
            run1.peak_memory_edges
        );
    }

    #[test]
    fn balanced_partitioning_beats_even_on_skewed_columns() {
        // descending order piles the in-degree mass onto small labels; the
        // balanced fenceposts keep every column near m/p while even-width
        // intervals overload the first one
        let dg = fixture(2_000, 5);
        let p = 8;
        let even = xm_e1_with(&dg, &Partitioning::even(dg.n(), p), |_, _, _| {}).unwrap();
        let balanced = xm_e1(&dg, p, |_, _, _| {}).unwrap();
        assert!(
            balanced.peak_memory_edges < even.peak_memory_edges,
            "balanced {} vs even {}",
            balanced.peak_memory_edges,
            even.peak_memory_edges
        );
        // both find the same triangles
        assert_eq!(balanced.cost.triangles, even.cost.triangles);
        // balanced peak within 2x of the ideal m/p
        assert!(balanced.peak_memory_edges as u64 <= 2 * dg.m() as u64 / p as u64 + 64);
    }

    #[test]
    fn balanced_covers_label_space() {
        let dg = fixture(500, 6);
        for p in [1usize, 3, 9] {
            let parts = Partitioning::balanced(&dg, p);
            assert_eq!(parts.len(), p);
            assert_eq!(parts.interval(0).start, 0);
            assert_eq!(parts.interval(p - 1).end, dg.n() as u32);
            for a in 0..p - 1 {
                assert_eq!(parts.interval(a).end, parts.interval(a + 1).start);
            }
        }
    }

    #[test]
    fn budgeted_run_with_room_is_complete_and_identical() {
        let dg = fixture(800, 7);
        let mut want = Vec::new();
        let plain = xm_e1(&dg, 4, |x, y, z| want.push((x, y, z))).unwrap();
        let parts = Partitioning::balanced(&dg, 4);
        let budget = RunBudget::unlimited()
            .with_deadline(std::time::Duration::from_secs(3600))
            .with_memory_bytes(u64::MAX);
        let mut got = Vec::new();
        let outcome = xm_e1_budgeted(&dg, &parts, &Kernels::paper(), &budget, |x, y, z| {
            got.push((x, y, z))
        })
        .unwrap();
        assert!(outcome.is_complete());
        assert_eq!(got, want);
        let run = outcome.run();
        assert_eq!(run.cost.triangles, plain.cost.triangles);
        assert_eq!(run.cost.local, plain.cost.local);
        assert_eq!(run.cost.remote, plain.cost.remote);
        assert_eq!(run.io.edges_streamed, plain.io.edges_streamed);
    }

    #[test]
    fn zero_deadline_stops_before_the_first_pass() {
        let dg = fixture(400, 8);
        let parts = Partitioning::balanced(&dg, 3);
        let budget = RunBudget::unlimited().with_deadline(std::time::Duration::ZERO);
        let outcome = xm_e1_budgeted(&dg, &parts, &Kernels::paper(), &budget, |_, _, _| {
            panic!("no triangles may be delivered")
        })
        .unwrap();
        match outcome {
            XmOutcome::Partial {
                run,
                completed_passes,
                total_passes,
                reason,
            } => {
                assert_eq!(completed_passes, 0);
                assert_eq!(total_passes, 3);
                assert_eq!(reason, StopReason::DeadlineExceeded);
                assert_eq!(run.cost.triangles, 0);
            }
            XmOutcome::Complete(_) => panic!("a zero deadline must interrupt the run"),
        }
    }

    #[test]
    fn cancellation_stops_between_passes() {
        use trilist_core::CancelToken;
        let dg = fixture(400, 9);
        let parts = Partitioning::balanced(&dg, 2);
        let token = CancelToken::new();
        token.cancel();
        let budget = RunBudget::unlimited().with_cancel(token);
        let outcome =
            xm_e1_budgeted(&dg, &parts, &Kernels::paper(), &budget, |_, _, _| {}).unwrap();
        match outcome {
            XmOutcome::Partial {
                completed_passes,
                reason,
                ..
            } => {
                assert_eq!(completed_passes, 0);
                assert_eq!(reason, StopReason::Cancelled);
            }
            XmOutcome::Complete(_) => panic!("a cancelled token must interrupt the run"),
        }
    }

    #[test]
    fn memory_ceiling_yields_an_exact_column_prefix() {
        let dg = fixture(1_500, 10);
        let p = 6;
        let parts = Partitioning::balanced(&dg, p);
        // a ceiling below one balanced column: the first load trips it
        let ceiling = dg.m() as u64 * COLUMN_BYTES_PER_EDGE / (2 * p as u64);
        let budget = RunBudget::unlimited().with_memory_bytes(ceiling.max(1));
        let mut got = Vec::new();
        let outcome = xm_e1_budgeted(&dg, &parts, &Kernels::paper(), &budget, |x, y, z| {
            got.push((x, y, z))
        })
        .unwrap();
        let (completed, reason) = match &outcome {
            XmOutcome::Partial {
                completed_passes,
                reason,
                ..
            } => (*completed_passes, *reason),
            XmOutcome::Complete(_) => panic!("the ceiling must interrupt the run"),
        };
        assert_eq!(reason, StopReason::MemoryExhausted);
        assert!(completed < p);
        // delivered triangles are exactly those whose smallest corner lies
        // in the completed leading intervals
        let cutoff = parts.interval(completed).start;
        let mut want = Vec::new();
        xm_e1_with(&dg, &parts, |x, y, z| {
            if x < cutoff {
                want.push((x, y, z));
            }
        })
        .unwrap();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn for_memory_budget_sizes_columns_to_fit() {
        let dg = fixture(2_000, 11);
        assert_eq!(Partitioning::for_memory_budget(&dg, None).len(), 1);
        let bytes = dg.m() as u64 * COLUMN_BYTES_PER_EDGE / 4;
        let parts = Partitioning::for_memory_budget(&dg, Some(bytes));
        assert!(
            parts.len() >= 4,
            "P={} for a quarter-size budget",
            parts.len()
        );
        // balanced columns stay near m/P, so a 2x-of-ideal slack covers the
        // fencepost rounding; the budgeted run itself must then complete
        let budget =
            RunBudget::unlimited().with_memory_bytes(2 * bytes + 64 * COLUMN_BYTES_PER_EDGE);
        let outcome =
            xm_e1_budgeted(&dg, &parts, &Kernels::paper(), &budget, |_, _, _| {}).unwrap();
        assert!(outcome.is_complete());
    }

    #[test]
    fn observed_run_is_identical_and_spans_cover_every_pass() {
        use trilist_core::obs::{Counter, InMemoryRecorder};
        let dg = fixture(800, 12);
        let p = 5;
        let parts = Partitioning::balanced(&dg, p);
        let mut want = Vec::new();
        let plain = xm_e1_with(&dg, &parts, |x, y, z| want.push((x, y, z))).unwrap();
        let rec = InMemoryRecorder::new();
        let mut got = Vec::new();
        let observed = xm_e1_observed(
            &dg,
            &parts,
            &Kernels::paper(),
            &RunBudget::unlimited(),
            &rec,
            |x, y, z| got.push((x, y, z)),
        )
        .unwrap()
        .complete()
        .expect("unlimited budget");
        assert_eq!(got, want, "recording must not change the triangles");
        assert_eq!(observed.cost, plain.cost);
        assert_eq!(observed.io.edges_streamed, plain.io.edges_streamed);
        // one ok span per pass, covering the column intervals exactly
        let spans = rec.spans();
        assert_eq!(spans.len(), p);
        for (a, s) in spans.iter().enumerate() {
            assert_eq!(s.chunk, a as u32);
            assert_eq!(s.range, parts.interval(a));
            assert_eq!(s.method, Method::E1);
            assert!(s.ok);
        }
        assert_eq!(
            spans.iter().map(|s| s.ops).sum::<u64>(),
            plain.cost.operations(),
            "span ops partition the run's operations"
        );
        // two budget gates per started pass
        assert_eq!(rec.counter(Counter::BudgetChecks), 2 * p as u64);
    }

    #[test]
    fn empty_graph() {
        let g = trilist_graph::Graph::from_edges(4, &[]).unwrap();
        let dg = DirectedGraph::orient(&g, &Relabeling::identity(4));
        let run = xm_e1(&dg, 3, |_, _, _| panic!("no triangles")).unwrap();
        assert_eq!(run.cost.triangles, 0);
        assert_eq!(run.peak_memory_edges, 0);
    }
}
