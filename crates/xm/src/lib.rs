//! # trilist-xm
//!
//! Simulated external-memory triangle listing — the companion problem the
//! paper defers to \[17\] and names as its main open challenge (§8:
//! "design of better external-memory partitioning schemes, and modeling of
//! I/O complexity").
//!
//! The engine implements the classic column-partitioned variant of E1:
//! split the label space into `P` intervals, make `P` passes, each pass
//! loading one *column* (edges targeting the interval) into memory and
//! streaming the full edge file from disk. Every byte moved is counted, so
//! the `P·m + m` I/O / `m/P` memory tradeoff — the quantity an external-
//! memory cost model would optimize — is measured, not asserted; the CPU
//! comparison counts remain exactly in-memory E1's.
//!
//! ```
//! use rand::SeedableRng;
//! use trilist_graph::Graph;
//! use trilist_order::{DirectedGraph, OrderFamily};
//! use trilist_xm::xm_e1;
//!
//! let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 3)]).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let dg = DirectedGraph::orient(&g, &OrderFamily::Descending.relabeling(&g, &mut rng));
//! let run = xm_e1(&dg, 2, |_, _, _| {}).unwrap();
//! assert_eq!(run.cost.triangles, 1);
//! assert_eq!(run.io.edges_streamed, 2 * g.m() as u64);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod storage;

pub use engine::{xm_e1, xm_e1_budgeted, Partitioning, XmOutcome, XmRun, COLUMN_BYTES_PER_EDGE};
pub use storage::{EdgeFile, IoStats, ScratchDir};
