//! Disk-backed edge storage with byte-level I/O accounting.
//!
//! The external-memory engine never touches the in-memory graph during
//! listing; everything flows through [`EdgeFile`]s — flat little-endian
//! `u32` pair streams — so the I/O counters measure exactly what a real
//! out-of-core run would transfer.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Cumulative I/O statistics for one engine run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Bytes written to disk (setup: edge stream + partition columns).
    pub bytes_written: u64,
    /// Bytes read back during listing.
    pub bytes_read: u64,
    /// Directed edges streamed from the main edge file.
    pub edges_streamed: u64,
    /// Directed edges loaded from partition columns.
    pub edges_loaded: u64,
}

impl IoStats {
    /// Merge another run's counters.
    pub fn accumulate(&mut self, other: &IoStats) {
        self.bytes_written += other.bytes_written;
        self.bytes_read += other.bytes_read;
        self.edges_streamed += other.edges_streamed;
        self.edges_loaded += other.edges_loaded;
    }
}

/// A flat file of `(u32, u32)` pairs.
pub struct EdgeFile {
    path: PathBuf,
    /// Number of pairs in the file.
    len: u64,
}

impl EdgeFile {
    /// Creates (truncates) the file and streams `edges` into it, counting
    /// the written bytes into `stats`.
    pub fn create<I>(path: &Path, edges: I, stats: &mut IoStats) -> std::io::Result<EdgeFile>
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut writer = BufWriter::new(file);
        let mut len = 0u64;
        for (a, b) in edges {
            writer.write_all(&a.to_le_bytes())?;
            writer.write_all(&b.to_le_bytes())?;
            len += 1;
        }
        writer.flush()?;
        stats.bytes_written += len * 8;
        Ok(EdgeFile {
            path: path.to_path_buf(),
            len,
        })
    }

    /// Number of pairs stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Streams the file front to back, invoking `f` per pair; counts the
    /// read bytes.
    pub fn stream<F>(&self, stats: &mut IoStats, mut f: F) -> std::io::Result<()>
    where
        F: FnMut(u32, u32),
    {
        let mut reader = BufReader::new(File::open(&self.path)?);
        let mut buf = [0u8; 8];
        for _ in 0..self.len {
            reader.read_exact(&mut buf)?;
            f(
                u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")),
                u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")),
            );
        }
        stats.bytes_read += self.len * 8;
        Ok(())
    }

    /// Removes the backing file.
    pub fn delete(self) -> std::io::Result<()> {
        std::fs::remove_file(&self.path)
    }
}

/// A scratch directory that cleans up after itself.
pub struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    /// Creates a unique directory under the system temp dir.
    pub fn new(tag: &str) -> std::io::Result<ScratchDir> {
        // uniqueness from pid + a process-wide counter
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("trilist-xm-{tag}-{}-{id}", std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(ScratchDir { path })
    }

    /// Path of a file inside the scratch dir.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_accounting() {
        let dir = ScratchDir::new("storage-test").unwrap();
        let mut stats = IoStats::default();
        let edges = vec![(1u32, 2u32), (3, 4), (u32::MAX, 0)];
        let f = EdgeFile::create(&dir.file("e.bin"), edges.iter().copied(), &mut stats).unwrap();
        assert_eq!(f.len(), 3);
        assert_eq!(stats.bytes_written, 24);
        let mut out = Vec::new();
        f.stream(&mut stats, |a, b| out.push((a, b))).unwrap();
        assert_eq!(out, edges);
        assert_eq!(stats.bytes_read, 24);
    }

    #[test]
    fn empty_file() {
        let dir = ScratchDir::new("storage-empty").unwrap();
        let mut stats = IoStats::default();
        let f = EdgeFile::create(&dir.file("e.bin"), std::iter::empty(), &mut stats).unwrap();
        assert!(f.is_empty());
        f.stream(&mut stats, |_, _| panic!("no pairs")).unwrap();
        assert_eq!(
            stats,
            IoStats {
                bytes_written: 0,
                bytes_read: 0,
                ..Default::default()
            }
        );
    }

    #[test]
    fn scratch_dir_cleans_up() {
        let path;
        {
            let dir = ScratchDir::new("cleanup").unwrap();
            path = dir.file("probe");
            std::fs::write(&path, b"x").unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn repeated_streams_accumulate_reads() {
        let dir = ScratchDir::new("restream").unwrap();
        let mut stats = IoStats::default();
        let f = EdgeFile::create(
            &dir.file("e.bin"),
            (0..10u32).map(|i| (i, i + 1)),
            &mut stats,
        )
        .unwrap();
        for _ in 0..3 {
            f.stream(&mut stats, |_, _| {}).unwrap();
        }
        assert_eq!(stats.bytes_read, 3 * 10 * 8);
    }
}
