//! # trilist
//!
//! Triangle listing in random graphs: a Rust reproduction of
//! *"On Asymptotic Cost of Triangle Listing in Random Graphs"*
//! (Xiao, Cui, Cline, Loguinov — PODS 2017).
//!
//! This facade crate re-exports the full public API:
//!
//! * [`graph`] — CSR graphs, degree sequences, truncated Pareto degree
//!   distributions, and random-graph generators that realize a prescribed
//!   degree sequence.
//! * [`order`] — the three-step framework's permutation machinery:
//!   ascending/descending/Round-Robin/CRR/uniform/degenerate orderings,
//!   relabeling, acyclic orientation, and limiting maps `ξ(u)`.
//! * [`core`] — all 18 triangle-listing algorithms (vertex iterators
//!   T1–T6, scanning edge iterators E1–E6, lookup edge iterators L1–L6)
//!   with exact operation accounting.
//! * [`model`] — the analytical cost models: spread distribution,
//!   discrete/continuous models, Algorithm 2, asymptotic limits,
//!   finiteness thresholds, and scaling rates.
//! * [`xm`] — simulated external-memory listing with I/O accounting (the
//!   companion problem of §8).
//!
//! ## Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use trilist::core::{list_triangles, Method};
//! use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated, Truncation};
//! use trilist::graph::gen::{GraphGenerator, ResidualSampler};
//! use trilist::order::OrderFamily;
//!
//! // 1. draw a power-law degree sequence and realize it as a simple graph
//! let n = 2_000;
//! let dist = Truncated::new(DiscretePareto::paper_beta(1.5), Truncation::Root.t_n(n));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let (degrees, _) = sample_degree_sequence(&dist, n, &mut rng);
//! let graph = ResidualSampler.generate(&degrees, &mut rng).graph;
//!
//! // 2. list triangles with the optimal vertex iterator (T1 + descending)
//! let run = list_triangles(&graph, Method::T1, OrderFamily::Descending, &mut rng);
//! println!("{} triangles, {} candidate checks", run.cost.triangles, run.cost.lookups);
//! ```

pub use trilist_core as core;
pub use trilist_graph as graph;
pub use trilist_model as model;
pub use trilist_order as order;
pub use trilist_serve as serve;
pub use trilist_xm as xm;
