//! Offline shim for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the criterion 0.5 API its benches use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The harness is intentionally small: per benchmark it warms up once,
//! sizes an iteration batch to ~100 ms, and reports the mean wall time
//! (plus element throughput when declared). No statistics, plots, or
//! baseline comparisons — enough to observe relative speed and to keep
//! `cargo bench` working end to end.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration declaration for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered from the parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }

    /// An id with a function name and a parameter.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the batch size chosen by the harness.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Upstream-compatible knob; here it bounds the measured batch size.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
            sample_size: None,
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let sample_size = self.sample_size;
        run_one(&id.into().label, None, sample_size, f);
    }
}

/// A group of benchmarks sharing a name prefix and throughput declaration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Bounds the measured batch size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.throughput, self.effective_sample_size(), f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.throughput, self.effective_sample_size(), |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (upstream writes reports here; the shim is a no-op).
    pub fn finish(&mut self) {}

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self._criterion.sample_size)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) {
    // warm-up + calibration pass with a single iteration
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    // size the measured batch to ~100 ms, capped by sample_size
    let target = Duration::from_millis(100);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, sample_size as u128) as u64;
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = bencher.elapsed / iters as u32;
    match throughput {
        Some(Throughput::Elements(elems)) if !mean.is_zero() => {
            let rate = elems as f64 / mean.as_secs_f64();
            eprintln!("  {label}: {mean:?}/iter ({iters} iters, {rate:.3e} elem/s)");
        }
        Some(Throughput::Bytes(bytes)) if !mean.is_zero() => {
            let rate = bytes as f64 / mean.as_secs_f64();
            eprintln!("  {label}: {mean:?}/iter ({iters} iters, {rate:.3e} B/s)");
        }
        _ => eprintln!("  {label}: {mean:?}/iter ({iters} iters)"),
    }
}

/// Groups benchmark functions, mirroring criterion's two accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        group.bench_function("counts", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        // one calibration pass + one measured batch, at least 1 iter each
        assert!(runs >= 2, "runs {runs}");
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
    }
}
