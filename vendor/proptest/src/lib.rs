//! Offline shim for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the proptest API its tests use: the [`proptest!`] macro
//! (with optional `#![proptest_config(..)]`), range/tuple strategies,
//! [`collection::vec`] / [`collection::btree_set`], [`any`], `prop_map` /
//! `prop_flat_map`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (failing inputs are reported
//! as-is) and a deterministic per-test RNG stream derived from the test
//! name, so failures reproduce exactly under `cargo test`.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Runner configuration (subset: case count).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config requiring `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count to actually run: the `PROPTEST_CASES` environment
    /// variable overrides the configured count when set (matching
    /// upstream), so CI can run extended sweeps without code changes.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("PROPTEST_CASES must be an integer, got {v:?}")),
            Err(_) => self.cases,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs — draw a fresh case.
    Reject(String),
    /// `prop_assert*` failed — the property is violated.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy yielding a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<f64>()
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies (subset: `vec`, `btree_set`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose elements come from `element` and whose length is
    /// drawn uniformly from `size` (a `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A set of up to `size` elements (duplicates drawn from `element`
    /// collapse, matching upstream's best-effort semantics).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.draw(rng);
            let mut set = BTreeSet::new();
            // bounded attempts: a narrow element domain may not fill `target`
            for _ in 0..target.saturating_mul(4) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.sample(rng));
            }
            set
        }
    }

    impl SizeRange {
        pub(crate) fn draw(&self, rng: &mut StdRng) -> usize {
            if self.min >= self.max_exclusive {
                self.min
            } else {
                rng.gen_range(self.min..self.max_exclusive)
            }
        }
    }
}

/// Length specification for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_exclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

/// Per-test deterministic RNG: the stream depends only on the fully
/// qualified test name, so reruns reproduce failures.
pub fn runner_rng(test_name: &str) -> StdRng {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut hasher);
    0x7717_1157_u64.hash(&mut hasher);
    StdRng::seed_from_u64(hasher.finish())
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Rejects the current case (draws a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.resolved_cases();
                let mut rng = $crate::runner_rng(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = cases.saturating_mul(10).max(100);
                while passed < cases {
                    attempts += 1;
                    if attempts > max_attempts {
                        panic!(
                            "proptest {}: gave up after {} attempts ({} cases passed, too many rejects)",
                            stringify!($name), attempts, passed
                        );
                    }
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {} of {}: {}",
                                stringify!($name), passed + 1, cases, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn size_range_conversions() {
        let exact: super::SizeRange = 5usize.into();
        let mut rng = super::runner_rng("size_range");
        assert_eq!(exact.draw(&mut rng), 5);
        let ranged: super::SizeRange = (2usize..9).into();
        for _ in 0..100 {
            let v = ranged.draw(&mut rng);
            assert!((2..9).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_strategy_obeys_size(v in crate::collection::vec(0u8..10, 3..6)) {
            prop_assert!(v.len() >= 3 && v.len() < 6, "len {}", v.len());
            for e in &v {
                prop_assert!(*e < 10);
            }
        }

        #[test]
        fn map_and_flat_map_compose(n in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0u32..100, n).prop_map(move |v| (n, v))
        })) {
            let (len, v) = n;
            prop_assert_eq!(v.len(), len);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn btree_set_is_sorted_unique(s in crate::collection::btree_set(0u32..50, 0..20)) {
            let v: Vec<u32> = s.iter().copied().collect();
            let mut sorted = v.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(v, sorted);
        }

        #[test]
        fn any_bool_takes_both_values(mask in crate::collection::vec(any::<bool>(), 64)) {
            prop_assert_eq!(mask.len(), 64);
        }
    }
}
