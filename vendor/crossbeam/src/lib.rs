//! Offline shim for the `crossbeam` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the crossbeam API the work-stealing runtime uses: the
//! [`deque`] module with [`deque::Injector`], [`deque::Worker`],
//! [`deque::Stealer`], and [`deque::Steal`].
//!
//! Upstream implements the Chase–Lev lock-free deque; this shim uses a
//! mutex-protected `VecDeque` per queue. The scheduling semantics are the
//! same (LIFO owner pops, FIFO steals, FIFO injector), and at the chunk
//! granularity the runtime operates at (thousands of chunks, each worth
//! ~1k operations) lock contention is negligible next to the work itself.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and may be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// `true` iff the attempt yielded a task.
        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }

        /// Converts to `Option`, discarding the retry/empty distinction.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// A global FIFO queue every worker can push to and steal from.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// An empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Appends a task to the back of the queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Takes a task from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steals a batch of tasks, moving all but the first into `dest`
        /// and returning the first (upstream `steal_batch_and_pop`
        /// semantics: up to half the queue, capped at 32, in one lock).
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut queue = self.queue.lock().expect("injector poisoned");
            let first = match queue.pop_front() {
                Some(t) => t,
                None => return Steal::Empty,
            };
            let extra = (queue.len() / 2).min(31);
            for _ in 0..extra {
                let task = queue.pop_front().expect("len checked");
                dest.push(task);
            }
            Steal::Success(first)
        }

        /// `true` iff the queue has no tasks.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("injector poisoned").len()
        }
    }

    /// A worker-owned deque: the owner pushes and pops at the back (LIFO),
    /// thieves steal from the front (FIFO).
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// A new FIFO worker queue (`pop` takes the front).
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// A new LIFO worker queue (`pop` takes the back).
        pub fn new_lifo() -> Self {
            // the shim always pops the front; LIFO vs FIFO only changes
            // owner locality, not correctness, at chunk granularity
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("worker queue poisoned")
                .push_back(task);
        }

        /// Pops the owner's next task.
        pub fn pop(&self) -> Option<T> {
            self.queue
                .lock()
                .expect("worker queue poisoned")
                .pop_front()
        }

        /// `true` iff the queue has no tasks.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("worker queue poisoned").is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("worker queue poisoned").len()
        }

        /// A handle other threads can steal through.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A shareable handle that steals from the far end of a [`Worker`].
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the opposite end to the owner.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("worker queue poisoned").pop_back() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// `true` iff the queue has no tasks.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("worker queue poisoned").is_empty()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn injector_is_fifo() {
            let inj = Injector::new();
            inj.push(1);
            inj.push(2);
            inj.push(3);
            assert_eq!(inj.len(), 3);
            assert_eq!(inj.steal(), Steal::Success(1));
            assert_eq!(inj.steal(), Steal::Success(2));
            assert_eq!(inj.steal(), Steal::Success(3));
            assert_eq!(inj.steal(), Steal::Empty);
            assert!(inj.is_empty());
        }

        #[test]
        fn stealer_takes_opposite_end() {
            let w: Worker<u32> = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(s.steal(), Steal::Success(3));
            assert_eq!(w.pop(), Some(1));
            assert_eq!(s.clone().steal(), Steal::Success(2));
            assert_eq!(w.pop(), None);
            assert!(w.is_empty() && s.is_empty());
            assert_eq!(w.len(), 0);
        }

        #[test]
        fn concurrent_stealing_conserves_tasks() {
            let inj = std::sync::Arc::new(Injector::new());
            for i in 0..10_000u64 {
                inj.push(i);
            }
            let total: u64 = std::thread::scope(|scope| {
                (0..8)
                    .map(|_| {
                        let inj = std::sync::Arc::clone(&inj);
                        scope.spawn(move || {
                            let mut sum = 0u64;
                            while let Steal::Success(v) = inj.steal() {
                                sum += v;
                            }
                            sum
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .sum()
            });
            assert_eq!(total, 10_000 * 9_999 / 2);
        }

        #[test]
        fn batch_steal_moves_tasks_to_worker() {
            let inj = Injector::new();
            for i in 0..20 {
                inj.push(i);
            }
            let w = Worker::new_fifo();
            assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
            // half of the remaining 19 tasks move to the worker
            assert_eq!(w.len(), 9);
            assert_eq!(inj.len(), 10);
            assert_eq!(w.pop(), Some(1));
            let empty: Injector<i32> = Injector::new();
            assert_eq!(empty.steal_batch_and_pop(&w), Steal::Empty);
        }

        #[test]
        fn steal_helpers() {
            let s: Steal<u32> = Steal::Success(5);
            assert!(s.is_success());
            assert_eq!(s.success(), Some(5));
            assert_eq!(Steal::<u32>::Empty.success(), None);
            assert!(!Steal::<u32>::Retry.is_success());
        }
    }
}
