//! Offline shim for the `mio` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the mio API the serve event loop uses: [`Poll`],
//! [`Events`], [`Event`], [`Token`], [`Interest`], and [`Waker`],
//! registering raw file descriptors (upstream's `SourceFd` shape) rather
//! than wrapped socket types.
//!
//! Upstream mio backs these with epoll on Linux and kqueue elsewhere.
//! This shim speaks to the kernel directly through a thin `libc`-style
//! FFI layer ([`sys`]): **epoll** (`epoll_create1` / `epoll_ctl` /
//! `epoll_wait`) on Linux, and portable **poll(2)** on other unixes —
//! level-triggered in both backends, so a readiness event is never lost
//! by consuming only part of a buffer. [`Waker`] is an `eventfd` on
//! Linux and a self-pipe on the poll backend; either way `wake()` is
//! async-signal-safe-ish (one `write` syscall) and coalesces: any number
//! of wakes before the next `poll` produce one readiness event.
//!
//! Nothing here spins: with no ready descriptors and no timeout, both
//! backends block in the kernel at zero CPU (`tests/serve_idle.rs`
//! pins this for the serve event loop).

#![warn(missing_docs)]
#![cfg(unix)]

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Caller-chosen identifier attached to a registered file descriptor and
/// echoed back on every [`Event`] for it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Readiness interest: readable, writable, or both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest(1);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(2);

    /// Union of two interests. Named to match the real mio's
    /// `Interest::add`, which deliberately isn't `std::ops::Add`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Does this interest include read readiness?
    pub fn is_readable(self) -> bool {
        self.0 & 1 != 0
    }

    /// Does this interest include write readiness?
    pub fn is_writable(self) -> bool {
        self.0 & 2 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness notification.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    error: bool,
    hup: bool,
}

impl Event {
    /// The token the descriptor was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Read readiness (includes peer-closed, so a subsequent `read`
    /// observes the EOF rather than blocking).
    pub fn is_readable(&self) -> bool {
        self.readable || self.hup || self.error
    }

    /// Write readiness.
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// An error condition on the descriptor (`EPOLLERR`/`POLLERR`).
    pub fn is_error(&self) -> bool {
        self.error
    }

    /// Peer hangup (`EPOLLHUP`/`POLLHUP`).
    pub fn is_read_closed(&self) -> bool {
        self.hup
    }
}

/// A batch of events filled by [`Poll::poll`].
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// An empty batch that will deliver at most `capacity` events per
    /// poll call.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Iterates the events from the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// Were any events delivered?
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Events delivered by the last poll.
    pub fn len(&self) -> usize {
        self.inner.len()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// Thin `libc`-style FFI: just the syscalls the two backends need, with
/// the constants transcribed from the kernel/POSIX headers.
mod sys {
    #![allow(non_camel_case_types, missing_docs)]
    use std::os::unix::io::RawFd;

    pub type c_int = i32;

    // fcntl
    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    pub const O_NONBLOCK: c_int = 0o4000;

    extern "C" {
        pub fn close(fd: RawFd) -> c_int;
        pub fn read(fd: RawFd, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: RawFd, buf: *const u8, count: usize) -> isize;
        pub fn fcntl(fd: RawFd, cmd: c_int, arg: c_int) -> c_int;
        #[cfg(not(target_os = "linux"))]
        pub fn pipe(fds: *mut RawFd) -> c_int;
    }

    #[cfg(target_os = "linux")]
    pub mod epoll {
        use super::c_int;
        use std::os::unix::io::RawFd;

        pub const EPOLL_CLOEXEC: c_int = 0o2000000;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;

        pub const EFD_CLOEXEC: c_int = 0o2000000;
        pub const EFD_NONBLOCK: c_int = 0o4000;

        /// The kernel ABI struct. Packed on x86-64 (and x32), naturally
        /// aligned everywhere else — exactly as `<sys/epoll.h>` declares
        /// it.
        #[repr(C)]
        #[cfg_attr(target_arch = "x86_64", repr(packed))]
        #[derive(Clone, Copy)]
        pub struct epoll_event {
            pub events: u32,
            pub u64: u64,
        }

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> RawFd;
            pub fn epoll_ctl(epfd: RawFd, op: c_int, fd: RawFd, event: *mut epoll_event) -> c_int;
            pub fn epoll_wait(
                epfd: RawFd,
                events: *mut epoll_event,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            pub fn eventfd(initval: u32, flags: c_int) -> RawFd;
        }
    }

    #[cfg(not(target_os = "linux"))]
    pub mod pollsys {
        use super::c_int;
        use std::os::unix::io::RawFd;

        pub const POLLIN: i16 = 0x001;
        pub const POLLOUT: i16 = 0x004;
        pub const POLLERR: i16 = 0x008;
        pub const POLLHUP: i16 = 0x010;

        /// POSIX `struct pollfd` — identical layout on every unix.
        #[repr(C)]
        #[derive(Clone, Copy)]
        pub struct pollfd {
            pub fd: RawFd,
            pub events: i16,
            pub revents: i16,
        }

        extern "C" {
            pub fn poll(fds: *mut pollfd, nfds: u64, timeout: c_int) -> c_int;
        }
    }
}

fn cvt(ret: sys::c_int) -> io::Result<sys::c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Marks `fd` nonblocking via `fcntl` — a convenience for callers that
/// hold raw descriptors (accepted sockets already go through
/// `TcpStream::set_nonblocking`).
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    unsafe {
        let flags = cvt(sys::fcntl(fd, sys::F_GETFL, 0))?;
        cvt(sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK))?;
    }
    Ok(())
}

/// Milliseconds for the kernel timeout argument: `None` blocks forever
/// (-1), sub-millisecond durations round up so a short timeout never
/// turns into a busy loop.
fn timeout_ms(timeout: Option<Duration>) -> sys::c_int {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            let ms = if ms == 0 && d.as_nanos() > 0 { 1 } else { ms };
            ms.min(sys::c_int::MAX as u128) as sys::c_int
        }
    }
}

/// Handle used to (de)register descriptors with a [`Poll`]. Cloneable and
/// thread-safe — [`Waker`] holds one.
#[derive(Clone)]
pub struct Registry {
    inner: std::sync::Arc<imp::Selector>,
}

impl Registry {
    /// Starts watching `fd` under `token` with `interest`.
    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.inner.register(fd, token, interest)
    }

    /// Changes the interest set of an already-registered `fd`.
    pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.inner.reregister(fd, token, interest)
    }

    /// Stops watching `fd`.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.inner.deregister(fd)
    }
}

/// The readiness selector: epoll on Linux, poll(2) elsewhere.
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// A fresh selector.
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            registry: Registry {
                inner: std::sync::Arc::new(imp::Selector::new()?),
            },
        })
    }

    /// The registration handle.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until at least one registered descriptor is ready, the
    /// timeout elapses, or a [`Waker`] fires. Fills `events` with what
    /// became ready (empty on timeout).
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        self.registry.inner.poll(events, timeout)
    }
}

/// Wakes a [`Poll`] blocked in [`Poll::poll`] from another thread: the
/// waker's token surfaces as a readable [`Event`]. Multiple wakes before
/// the next poll coalesce into one event.
pub struct Waker {
    inner: imp::WakerImpl,
}

impl Waker {
    /// A waker delivering `token` through `registry`'s poll.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        Ok(Waker {
            inner: imp::WakerImpl::new(registry, token)?,
        })
    }

    /// Triggers the wake. Cheap (one `write` syscall) and safe to call
    /// from any thread, any number of times.
    pub fn wake(&self) -> io::Result<()> {
        self.inner.wake()
    }

    /// Re-arms a level-triggered waker: call when its token surfaces
    /// from a poll, or the selector keeps reporting it readable.
    /// (Upstream mio hides this inside its edge-triggered `Waker`; the
    /// shim's selectors are level-triggered, so the drain is explicit.)
    pub fn drain(&self) {
        self.inner.drain();
    }
}

#[cfg(target_os = "linux")]
mod imp {
    //! epoll backend.

    use super::sys::epoll::*;
    use super::{cvt, sys, timeout_ms, Event, Events, Interest, Registry, Token};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    pub struct Selector {
        epfd: RawFd,
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut ev = EPOLLRDHUP;
        if interest.is_readable() {
            ev |= EPOLLIN;
        }
        if interest.is_writable() {
            ev |= EPOLLOUT;
        }
        ev
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            cvt(epfd)?;
            Ok(Selector { epfd })
        }

        fn ctl(&self, op: sys::c_int, fd: RawFd, ev: Option<epoll_event>) -> io::Result<()> {
            let mut ev = ev;
            let ptr = ev
                .as_mut()
                .map(|e| e as *mut epoll_event)
                .unwrap_or(std::ptr::null_mut());
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, ptr) })?;
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_ADD,
                fd,
                Some(epoll_event {
                    events: interest_bits(interest),
                    u64: token.0 as u64,
                }),
            )
        }

        pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_MOD,
                fd,
                Some(epoll_event {
                    events: interest_bits(interest),
                    u64: token.0 as u64,
                }),
            )
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
            events.inner.clear();
            let mut buf = vec![epoll_event { events: 0, u64: 0 }; events.capacity];
            let n = loop {
                let n = unsafe {
                    epoll_wait(
                        self.epfd,
                        buf.as_mut_ptr(),
                        buf.len() as sys::c_int,
                        timeout_ms(timeout),
                    )
                };
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
                // EINTR with a timeout: retry with the full timeout; the
                // caller's loop owns overall pacing.
            };
            for raw in &buf[..n] {
                let bits = raw.events;
                events.inner.push(Event {
                    token: Token(raw.u64 as usize),
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & EPOLLERR != 0,
                    hup: bits & (EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            unsafe { sys::close(self.epfd) };
        }
    }

    pub struct WakerImpl {
        efd: RawFd,
    }

    impl WakerImpl {
        pub fn new(registry: &Registry, token: Token) -> io::Result<WakerImpl> {
            let efd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            cvt(efd)?;
            registry.register(efd, token, Interest::READABLE)?;
            Ok(WakerImpl { efd })
        }

        pub fn wake(&self) -> io::Result<()> {
            let one: u64 = 1;
            let ret = unsafe { sys::write(self.efd, &one as *const u64 as *const u8, 8) };
            // EAGAIN means the counter is already at max — the poller is
            // overdue for a wake anyway, which is all we wanted.
            if ret < 0 {
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::WouldBlock {
                    return Err(err);
                }
            }
            Ok(())
        }

        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            unsafe { sys::read(self.efd, buf.as_mut_ptr(), buf.len()) };
        }
    }

    impl Drop for WakerImpl {
        fn drop(&mut self) {
            unsafe { sys::close(self.efd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    //! Portable poll(2) backend for non-Linux unixes.

    use super::sys::pollsys::*;
    use super::{cvt, sys, timeout_ms, Event, Events, Interest, Registry, Token};
    use std::collections::HashMap;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    pub struct Selector {
        registered: Mutex<HashMap<RawFd, (Token, Interest)>>,
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            Ok(Selector {
                registered: Mutex::new(HashMap::new()),
            })
        }

        pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.registered
                .lock()
                .unwrap()
                .insert(fd, (token, interest));
            Ok(())
        }

        pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.register(fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().unwrap().remove(&fd);
            Ok(())
        }

        pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
            events.inner.clear();
            let snapshot: Vec<(RawFd, Token, Interest)> = {
                let reg = self.registered.lock().unwrap();
                reg.iter().map(|(&fd, &(t, i))| (fd, t, i)).collect()
            };
            let mut fds: Vec<pollfd> = snapshot
                .iter()
                .map(|&(fd, _, interest)| pollfd {
                    fd,
                    events: if interest.is_readable() { POLLIN } else { 0 }
                        | if interest.is_writable() { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let n = loop {
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms(timeout)) };
                if n >= 0 {
                    break n;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            if n == 0 {
                return Ok(());
            }
            for (slot, &(_, token, _)) in fds.iter().zip(&snapshot) {
                if slot.revents == 0 {
                    continue;
                }
                if events.inner.len() == events.capacity {
                    break;
                }
                events.inner.push(Event {
                    token,
                    readable: slot.revents & POLLIN != 0,
                    writable: slot.revents & POLLOUT != 0,
                    error: slot.revents & POLLERR != 0,
                    hup: slot.revents & POLLHUP != 0,
                });
            }
            Ok(())
        }
    }

    pub struct WakerImpl {
        read_fd: RawFd,
        write_fd: RawFd,
    }

    impl WakerImpl {
        pub fn new(registry: &Registry, token: Token) -> io::Result<WakerImpl> {
            let mut fds: [RawFd; 2] = [0; 2];
            cvt(unsafe { sys::pipe(fds.as_mut_ptr()) })?;
            super::set_nonblocking(fds[0])?;
            super::set_nonblocking(fds[1])?;
            registry.register(fds[0], token, Interest::READABLE)?;
            Ok(WakerImpl {
                read_fd: fds[0],
                write_fd: fds[1],
            })
        }

        pub fn wake(&self) -> io::Result<()> {
            let byte = [1u8];
            let ret = unsafe { sys::write(self.write_fd, byte.as_ptr(), 1) };
            if ret < 0 {
                let err = io::Error::last_os_error();
                // a full pipe already guarantees the poller will wake
                if err.kind() != io::ErrorKind::WouldBlock {
                    return Err(err);
                }
            }
            Ok(())
        }

        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            loop {
                let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
                if n <= 0 {
                    break;
                }
            }
        }
    }

    impl Drop for WakerImpl {
        fn drop(&mut self) {
            unsafe {
                sys::close(self.read_fd);
                sys::close(self.write_fd);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readable_when_bytes_arrive_and_not_before() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        poll.registry()
            .register(b.as_raw_fd(), Token(7), Interest::READABLE)
            .unwrap();

        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "no bytes yet, no event");

        a.write_all(b"hi").unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        let ev = events.iter().next().expect("readable event");
        assert_eq!(ev.token(), Token(7));
        assert!(ev.is_readable());

        // level-triggered: still readable until drained
        poll.poll(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(!events.is_empty(), "level-triggered readiness persists");
        let mut buf = [0u8; 8];
        let mut b2 = &b;
        assert_eq!(b2.read(&mut buf).unwrap(), 2);
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "drained socket is quiet");
    }

    #[test]
    fn writable_and_interest_changes() {
        let (a, _b) = pair();
        a.set_nonblocking(true).unwrap();
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        let fd = a.as_raw_fd();
        poll.registry()
            .register(fd, Token(1), Interest::READABLE)
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "read-only interest on idle socket");

        poll.registry()
            .reregister(fd, Token(1), Interest::READABLE | Interest::WRITABLE)
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(events.iter().any(|e| e.is_writable()));

        poll.registry().deregister(fd).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "deregistered fd reports nothing");
    }

    #[test]
    fn hup_reported_as_readable() {
        let (a, b) = pair();
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        poll.registry()
            .register(b.as_raw_fd(), Token(3), Interest::READABLE)
            .unwrap();
        drop(a);
        poll.poll(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        let ev = events.iter().next().expect("hangup event");
        assert!(ev.is_readable(), "peer close surfaces as readable (EOF)");
    }

    #[test]
    fn waker_wakes_across_threads_and_coalesces() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        let waker = std::sync::Arc::new(Waker::new(poll.registry(), Token(99)).unwrap());
        let w2 = std::sync::Arc::clone(&waker);
        let t0 = Instant::now();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            for _ in 0..5 {
                w2.wake().unwrap(); // coalesce
            }
        });
        poll.poll(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(t0.elapsed() < Duration::from_secs(5), "woke, not timed out");
        let evs: Vec<_> = events.iter().collect();
        assert_eq!(evs.len(), 1, "five wakes coalesce to one event");
        assert_eq!(evs[0].token(), Token(99));
        h.join().unwrap();
    }

    #[test]
    fn timeout_expires_without_events() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        let t0 = Instant::now();
        poll.poll(&mut events, Some(Duration::from_millis(25)))
            .unwrap();
        assert!(events.is_empty());
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }
}
