//! Offline shim for the `rand` crate.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the workspace vendors the *subset* of the `rand` 0.8 API it actually
//! uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`), [`rngs::StdRng`], and [`seq::SliceRandom`]
//! (`shuffle`, `choose`).
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but every consumer in this workspace
//! treats the generator as an opaque seeded stream, so only statistical
//! quality matters (xoshiro256++ passes BigCrush). Streams are fully
//! deterministic per seed, which the differential and property tests rely
//! on.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (subset: `seed_from_u64` plus a fixed-size seed).
pub trait SeedableRng: Sized {
    /// Expands a `u64` into a full state via SplitMix64 (the upstream
    /// convention for this constructor).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce from raw bits.
pub trait Standard: Sized {
    /// Draws one value from the "standard" distribution of the type:
    /// uniform on `[0, 1)` for floats, uniform over all values otherwise.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform on [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform distribution over half-open/closed ranges.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased uniform draw from `[0, span)` via Lemire's multiply-shift
/// rejection method.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span; // (2^64 - span) mod span
    loop {
        let wide = (rng.next_u64() as u128) * (span as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                (low as $wide).wrapping_add(uniform_below(rng, span) as $wide) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (low as $wide).wrapping_add(uniform_below(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}
uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let std = <$t as Standard>::sample_standard(rng);
                let v = low + std * (high - low);
                // guard against rounding up to the open bound
                if v < high { v } else { low }
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                low + <$t as Standard>::sample_standard(rng) * (high - low)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range_inclusive(rng, lo, hi)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro's all-zero state is absorbing; splitmix64 cannot
            // produce it from any seed, but keep the guard explicit
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small generator is the same xoshiro core here.
    pub type SmallRng = StdRng;
}

/// Sequence helpers (subset: `shuffle` and `choose`).
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_f64_is_unit_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn unbiased_small_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 3];
        for _ in 0..90_000 {
            counts[rng.gen_range(0..3usize)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 30_000.0).abs() < 1_000.0, "counts {counts:?}");
        }
    }
}
