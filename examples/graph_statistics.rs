//! Triangle-driven network analysis — the application side the paper's
//! introduction motivates (community structure, clustering, sybil
//! detection): per-node triangle counts, local clustering coefficients,
//! and transitivity, computed with the optimal listing machinery.
//!
//! Also demonstrates edge-list I/O: the graph is written to a temp file
//! and re-loaded, the way a real dataset (e.g. Twitter [27]) would be.
//!
//! ```sh
//! cargo run --release --example graph_statistics
//! ```

use rand::SeedableRng;
use trilist::core::clustering::{
    average_clustering, local_clustering, transitivity, triangle_counts,
};
use trilist::graph::components::summarize;
use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated, Truncation};
use trilist::graph::gen::{GraphGenerator, ResidualSampler};
use trilist::graph::io::{read_edge_list, write_edge_list};

fn main() {
    let n = 20_000;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let dist = Truncated::new(DiscretePareto::paper_beta(1.7), Truncation::Root.t_n(n));
    let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
    let graph = ResidualSampler.generate(&seq, &mut rng).graph;

    // round-trip through the edge-list format
    let mut buf = Vec::new();
    write_edge_list(&graph, &mut buf).expect("in-memory write");
    let loaded = read_edge_list(buf.as_slice()).expect("parse back");
    let graph = loaded.graph;

    let s = summarize(&graph);
    println!(
        "n = {}, m = {}, max degree = {}, mean degree = {:.1}, giant component = {:.1}%",
        s.n,
        s.m,
        s.max_degree,
        s.mean_degree,
        100.0 * s.giant_fraction
    );

    let counts = triangle_counts(&graph);
    let total: u64 = counts.iter().sum::<u64>() / 3;
    println!("triangles: {total}");
    println!("transitivity: {:.4}", transitivity(&graph));
    println!(
        "average local clustering: {:.4}",
        average_clustering(&graph)
    );

    // the most triangle-dense nodes — hubs of tightly knit neighborhoods
    let clustering = local_clustering(&graph);
    let mut by_triangles: Vec<usize> = (0..graph.n()).collect();
    by_triangles.sort_by_key(|&v| std::cmp::Reverse(counts[v]));
    println!("\ntop 5 nodes by triangle count:");
    println!(
        "{:>8} {:>8} {:>11} {:>11}",
        "node", "degree", "triangles", "clustering"
    );
    for &v in by_triangles.iter().take(5) {
        println!(
            "{v:>8} {:>8} {:>11} {:>11.4}",
            graph.degree(v as u32),
            counts[v],
            clustering[v]
        );
    }
    println!(
        "\npower-law graphs from the configuration family have vanishing clustering as n \
         grows — real social graphs have far more triangles, which is exactly why \
         triangle counting is a useful signal (Section 1)."
    );
}
