//! Multicore triangle listing: the acyclic orientation makes every
//! candidate pair owned by exactly one node, so the work partitions across
//! threads with no synchronization — operation counts stay identical and
//! wall time divides.
//!
//! ```sh
//! cargo run --release --example parallel_listing
//! ```

use rand::SeedableRng;
use std::time::Instant;
use trilist::core::{par_list, Method};
use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated, Truncation};
use trilist::graph::gen::{GraphGenerator, ResidualSampler};
use trilist::order::{DirectedGraph, OrderFamily};

fn main() {
    let n = 200_000;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let dist = Truncated::new(DiscretePareto::paper_beta(1.7), Truncation::Root.t_n(n));
    let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
    let graph = ResidualSampler.generate(&seq, &mut rng).graph;
    let dg = DirectedGraph::orient(
        &graph,
        &OrderFamily::Descending.relabeling(&graph, &mut rng),
    );
    println!("graph: n = {n}, m = {}", graph.m());

    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!("available cores: {cores} (speedup is bounded by this)");
    println!(
        "{:>8} {:>12} {:>14} {:>10}",
        "threads", "seconds", "triangles", "speedup"
    );
    let mut baseline = None;
    for threads in [1, 2, 4, cores] {
        let start = Instant::now();
        let run = par_list(&dg, Method::E1, threads).expect("parallel E1 should succeed");
        let secs = start.elapsed().as_secs_f64();
        let base = *baseline.get_or_insert(secs);
        println!(
            "{threads:>8} {secs:>12.3} {:>14} {:>9.2}x",
            run.cost.triangles,
            base / secs
        );
    }
    println!("\noperation counts are identical across thread counts; only wall time changes.");
}
