//! Finiteness regimes: how the Pareto tail index α controls whether each
//! method's asymptotic cost converges, and at what rate it diverges when
//! it does not (§4.2, §6.3).
//!
//! Sweeps α across the paper's four regimes and prints, for every
//! fundamental method under its optimal orientation, the limiting cost or
//! the divergence-rate exponent.
//!
//! ```sh
//! cargo run --release --example degree_scaling
//! ```

use trilist::graph::dist::DiscretePareto;
use trilist::model::{finiteness_threshold, limiting_cost, scaling, CostClass, ModelSpec};
use trilist::order::LimitMap;

fn main() {
    let optimal: [(CostClass, LimitMap, &str); 4] = [
        (CostClass::T1, LimitMap::Descending, "T1+desc"),
        (CostClass::T2, LimitMap::RoundRobin, "T2+rr"),
        (CostClass::E1, LimitMap::Descending, "E1+desc"),
        (CostClass::E4, LimitMap::ComplementaryRoundRobin, "E4+crr"),
    ];

    println!("finiteness thresholds (limit exists iff alpha > threshold):");
    for (class, map, label) in optimal {
        println!(
            "  {label:<8} alpha > {:.4}",
            finiteness_threshold(class, map)
        );
    }
    println!();

    println!(
        "{:>6} | {:>14} {:>14} {:>14} {:>14}",
        "alpha", "T1+desc", "T2+rr", "E1+desc", "E4+crr"
    );
    for &alpha in &[1.25, 1.45, 1.7, 2.1, 2.5] {
        print!("{alpha:>6.2} |");
        let pareto = DiscretePareto::paper_beta(alpha);
        for (class, map, _) in optimal {
            let spec = ModelSpec::new(class, map);
            match limiting_cost(&pareto, &spec) {
                Some(v) => print!(" {v:>14.1}"),
                None => {
                    // divergent: show the root-truncation growth exponent
                    let expo = match class {
                        CostClass::T1 => scaling::t1_growth_exponent(alpha),
                        CostClass::E1 => scaling::e1_growth_exponent(alpha),
                        _ => f64::NAN,
                    };
                    if expo.is_nan() {
                        print!(" {:>14}", "inf");
                    } else {
                        print!(" {:>14}", format!("~n^{expo:.2}"));
                    }
                }
            }
        }
        println!();
    }
    println!(
        "\nalpha in (4/3, 1.5]: T1 is provably faster than E1 as n grows — the only regime \
         where the vertex/edge iterator choice is settled by asymptotics alone (Section 6.3)."
    );
}
