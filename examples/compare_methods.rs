//! A miniature Table 12: operation counts of the four fundamental methods
//! (T1, T2, E1, E4) under all six orientations on one synthetic power-law
//! graph, demonstrating the paper's optimality results —
//! θ_D for T1/E1, Round-Robin for T2, Complementary RR for E4.
//!
//! ```sh
//! cargo run --release --example compare_methods
//! ```

use rand::SeedableRng;
use trilist::core::Method;
use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated, Truncation};
use trilist::graph::gen::{GraphGenerator, ResidualSampler};
use trilist::order::{DirectedGraph, OrderFamily};

fn main() {
    let n = 30_000;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let dist = Truncated::new(DiscretePareto::paper_beta(1.7), Truncation::Linear.t_n(n));
    let (degrees, _) = sample_degree_sequence(&dist, n, &mut rng);
    let graph = ResidualSampler.generate(&degrees, &mut rng).graph;
    println!("graph: n = {}, m = {}\n", graph.n(), graph.m());

    // orient once per family; every method reads the same oriented graph
    let oriented: Vec<(OrderFamily, DirectedGraph)> = OrderFamily::ALL
        .iter()
        .map(|&f| {
            (
                f,
                DirectedGraph::orient(&graph, &f.relabeling(&graph, &mut rng)),
            )
        })
        .collect();

    print!("{:>8}", "method");
    for (f, _) in &oriented {
        print!("{:>12}", f.name());
    }
    println!("{:>10}", "best");

    let mut triangle_counts = Vec::new();
    for method in Method::FUNDAMENTAL {
        print!("{:>8}", method.name());
        let mut best = (f64::INFINITY, "");
        for (f, dg) in &oriented {
            let cost = method.run(dg, |_, _, _| {});
            triangle_counts.push(cost.triangles);
            let ops = cost.operations() as f64;
            if ops < best.0 {
                best = (ops, f.name());
            }
            print!("{:>12}", format_ops(ops));
        }
        println!("{:>10}", best.1);
    }

    // all 24 runs found the same number of triangles
    assert!(triangle_counts.windows(2).all(|w| w[0] == w[1]));
    println!(
        "\nall method/orientation pairs agree: {} triangles",
        triangle_counts[0]
    );
    println!(
        "paper's optimal orientations: T1 -> desc (or degen), T2 -> rr, E1 -> desc, E4 -> crr"
    );
}

fn format_ops(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}B", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else {
        format!("{v:.0}")
    }
}
