//! Model vs simulation: evaluates the closed-form discrete model (eq. 50)
//! against Monte-Carlo runs on actual random graphs — a laptop-scale
//! rendition of the paper's Table 6.
//!
//! ```sh
//! cargo run --release --example model_vs_simulation
//! ```

use trilist::graph::dist::Truncation;
use trilist::model::{CostClass, WeightFn};
use trilist::order::{LimitMap, OrderFamily};
use trilist_core::Method;
use trilist_experiments::{model_cell, simulate, SimConfig};

fn main() {
    let alpha = 1.5;
    let cfg = SimConfig {
        sequences: 5,
        graphs_per_sequence: 5,
        ..SimConfig::quick(alpha, Truncation::Root)
    };
    println!(
        "alpha = {alpha}, beta = {} (E[D] ~ 30.5), root truncation, {}x{} replicates\n",
        cfg.beta, cfg.sequences, cfg.graphs_per_sequence
    );
    println!(
        "{:>8} | {:>12} {:>12} {:>7} | {:>12} {:>12} {:>7}",
        "n", "T1+asc sim", "model(50)", "err", "T1+desc sim", "model(50)", "err"
    );
    for n in [2_000usize, 10_000, 50_000] {
        let cells = simulate(
            &cfg,
            n,
            &[
                (Method::T1, OrderFamily::Ascending),
                (Method::T1, OrderFamily::Descending),
            ],
        );
        let model_asc = model_cell(
            &cfg,
            n,
            CostClass::T1,
            LimitMap::Ascending,
            WeightFn::Identity,
        );
        let model_desc = model_cell(
            &cfg,
            n,
            CostClass::T1,
            LimitMap::Descending,
            WeightFn::Identity,
        );
        let err = |sim: f64, model: f64| format!("{:+.1}%", (model - sim) / sim * 100.0);
        println!(
            "{:>8} | {:>12.1} {:>12.1} {:>7} | {:>12.2} {:>12.2} {:>7}",
            n,
            cells[0].mean,
            model_asc,
            err(cells[0].mean, model_asc),
            cells[1].mean,
            model_desc,
            err(cells[1].mean, model_desc),
        );
    }
    println!(
        "\nThe model is asymptotically exact for AMRC sequences; errors shrink as n grows \
         (paper Table 6 reports <2.2% from n = 10^4 up)."
    );
}
