//! Quickstart: generate a power-law random graph, orient it, and list its
//! triangles with the optimal vertex iterator (T1 under descending-degree
//! order).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;
use trilist::core::{list_triangles, Method};
use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated, Truncation};
use trilist::graph::gen::{GraphGenerator, ResidualSampler};
use trilist::order::OrderFamily;

fn main() {
    let n = 50_000;
    let alpha = 1.7;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // 1. Degree distribution: discretized Pareto with E[D] ≈ 30.5, truncated
    //    at √n so the sequence is AMRC (max degree ≤ √n).
    let t_n = Truncation::Root.t_n(n);
    let dist = Truncated::new(DiscretePareto::paper_beta(alpha), t_n);

    // 2. Draw an iid degree sequence and realize it exactly with the
    //    residual-degree sampler (no erasure distortion).
    let (degrees, _) = sample_degree_sequence(&dist, n, &mut rng);
    let generated = ResidualSampler.generate(&degrees, &mut rng);
    let graph = generated.graph;
    println!(
        "graph: n = {}, m = {}, max degree = {}, shortfall = {}",
        graph.n(),
        graph.m(),
        graph.max_degree(),
        generated.shortfall
    );

    // 3. Relabel (descending degree), orient, and list with T1. The
    //    framework returns triangles in original node IDs plus the exact
    //    operation counts of eq. (7).
    let run = list_triangles(&graph, Method::T1, OrderFamily::Descending, &mut rng);
    println!(
        "T1 + descending: {} triangles, {} candidate checks ({:.2} per node)",
        run.cost.triangles,
        run.cost.lookups,
        run.cost.per_node(n)
    );

    // 4. Compare with the unoriented baseline: orientation avoids counting
    //    each triangle three times and slashes the candidate count.
    let baseline = trilist::core::baseline::unoriented_vertex_iterator(&graph, |_, _, _| {});
    println!(
        "unoriented baseline: {} candidate checks ({:.1}x more)",
        baseline.lookups,
        baseline.lookups as f64 / run.cost.lookups as f64
    );

    let (x, y, z) = run.triangles[0];
    println!("first triangle (original IDs): ({x}, {y}, {z})");
}
