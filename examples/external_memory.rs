//! External-memory triangle listing: the I/O-vs-RAM tradeoff the paper
//! names as its companion problem (§8), measured on a simulated disk.
//!
//! Builds a power-law graph, then lists its triangles while only ever
//! holding one partition column in memory — sweeping the partition count
//! shows the `P·m` streamed-edge cost against the `m/P` resident set.
//!
//! ```sh
//! cargo run --release --example external_memory
//! ```

use rand::SeedableRng;
use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated, Truncation};
use trilist::graph::gen::{GraphGenerator, ResidualSampler};
use trilist::order::{DirectedGraph, OrderFamily};
use trilist::xm::xm_e1;

fn main() {
    let n = 50_000;
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let dist = Truncated::new(DiscretePareto::paper_beta(1.7), Truncation::Root.t_n(n));
    let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
    let graph = ResidualSampler.generate(&seq, &mut rng).graph;
    let dg = DirectedGraph::orient(
        &graph,
        &OrderFamily::Descending.relabeling(&graph, &mut rng),
    );
    println!("graph: n = {n}, m = {} directed edges\n", dg.m());

    println!(
        "{:>4} {:>16} {:>16} {:>18} {:>12}",
        "P", "bytes read", "bytes written", "peak RAM (edges)", "triangles"
    );
    for p in [1usize, 2, 4, 8, 16, 32] {
        let run = xm_e1(&dg, p, |_, _, _| {}).expect("scratch files");
        println!(
            "{p:>4} {:>16} {:>16} {:>18} {:>12}",
            run.io.bytes_read, run.io.bytes_written, run.peak_memory_edges, run.cost.triangles
        );
    }
    println!(
        "\nreads grow ~linearly in P (the edge stream is re-scanned every pass) while the \
         resident column shrinks as m/P; pick P as ceil(m / RAM-budget). CPU comparisons \
         are identical to in-memory E1 at every P."
    );
}
