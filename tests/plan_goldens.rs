//! Golden plan pins: the autotuner's exact choice and predicted cost on
//! three Pareto tail configurations and two corpus fixtures, scored
//! against the deterministic reference machine profile. Any change to
//! the ordering implementations, the cost model, or the candidate
//! ranking that moves a winner — or shifts a predicted cost by more than
//! 1 part in 10⁹ — fails loudly here. The same values are pinned
//! machine-readably in `BENCH_autotune.json` (see
//! `crates/experiments/src/bin/autotune_matrix.rs`).

use rand::SeedableRng;
use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated, Truncation};
use trilist::graph::gen::scenarios;
use trilist::graph::gen::{GraphGenerator, ResidualSampler};
use trilist::graph::Graph;
use trilist::model::{rank_plans, MachineProfile, PlanConfig, RankedPlans};

/// Matches the `autotune_matrix` binary's Pareto fixtures: α-tail,
/// root-truncated, n = 2048 (planner exact mode), seeded from the
/// default experiment seed.
fn pareto_fixture(alpha: f64) -> Graph {
    let n = 2048;
    let seed = 0x7717_1157u64 ^ ((alpha * 10.0).round() as u64);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dist = Truncated::new(DiscretePareto::paper_beta(alpha), Truncation::Root.t_n(n));
    let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
    ResidualSampler.generate(&seq, &mut rng).graph
}

/// One golden pin.
struct Golden {
    name: &'static str,
    ordering: &'static str,
    method: &'static str,
    policy: &'static str,
    predicted_ops: f64,
    predicted_seconds: f64,
    default_ops: f64,
}

/// Values learned from the committed `BENCH_autotune.json` generation
/// run; predicted ops are exact integers, seconds pinned at rel 1e-9.
const GOLDENS: [Golden; 5] = [
    Golden {
        name: "pareto_a15",
        ordering: "refined",
        method: "E1",
        policy: "bitset",
        predicted_ops: 110109.0,
        predicted_seconds: 965.868421053,
        default_ops: 111178.0,
    },
    Golden {
        name: "pareto_a25",
        ordering: "refined",
        method: "E1",
        policy: "bitset",
        predicted_ops: 182266.0,
        predicted_seconds: 1598.824561404,
        default_ops: 183911.0,
    },
    Golden {
        name: "pareto_a35",
        ordering: "refined",
        method: "E1",
        policy: "bitset",
        predicted_ops: 202114.0,
        predicted_seconds: 1772.929824561,
        default_ops: 204069.0,
    },
    Golden {
        name: "planted_community",
        ordering: "degen",
        method: "E4",
        policy: "bitset",
        predicted_ops: 13695.0,
        predicted_seconds: 120.131578947,
        default_ops: 14571.0,
    },
    Golden {
        name: "core_periphery",
        ordering: "desc",
        method: "E1",
        policy: "bitset",
        predicted_ops: 14550.0,
        predicted_seconds: 127.631578947,
        default_ops: 14550.0,
    },
];

fn build(name: &str) -> Graph {
    match name {
        "pareto_a15" => pareto_fixture(1.5),
        "pareto_a25" => pareto_fixture(2.5),
        "pareto_a35" => pareto_fixture(3.5),
        other => {
            let sc = scenarios::CORPUS
                .iter()
                .find(|sc| sc.name == other)
                .unwrap_or_else(|| panic!("unknown golden fixture {other}"));
            (sc.build)()
        }
    }
}

fn rank(g: &Graph) -> RankedPlans {
    rank_plans(g, &MachineProfile::reference(), &PlanConfig::default())
}

fn assert_rel(got: f64, want: f64, what: &str, fixture: &str) {
    let rel = (got - want).abs() / want.abs().max(f64::MIN_POSITIVE);
    assert!(
        rel <= 1e-9,
        "{fixture}: {what} = {got:.12} drifted from golden {want:.12} (rel {rel:.2e})"
    );
}

#[test]
fn golden_plans_are_pinned() {
    for golden in &GOLDENS {
        let g = build(golden.name);
        let ranked = rank(&g);
        let best = ranked.best;
        assert_eq!(
            (
                best.ordering.name(),
                best.method_hint.name(),
                best.policy.name()
            ),
            (golden.ordering, golden.method, golden.policy),
            "{}: the winning plan moved",
            golden.name
        );
        assert!(
            !best.compressed,
            "{}: reference profile never compresses",
            golden.name
        );
        let row = ranked
            .candidate_for(&best)
            .expect("winner is an evaluated candidate");
        assert_eq!(
            row.predicted_ops, golden.predicted_ops,
            "{}: exact-mode op count moved",
            golden.name
        );
        assert_rel(
            row.predicted_seconds,
            golden.predicted_seconds,
            "predicted seconds",
            golden.name,
        );
        assert_eq!(
            ranked.default_ops, golden.default_ops,
            "{}: paper-default op count moved",
            golden.name
        );
        assert_eq!(
            ranked.evaluations, 96,
            "{}: 8 orderings x 4 methods x 3 policies",
            golden.name
        );
        assert!(
            !ranked.sampled,
            "{}: golden fixtures price exactly",
            golden.name
        );
    }
}

#[test]
fn golden_ranking_is_run_to_run_deterministic() {
    for golden in &GOLDENS[..2] {
        let g = build(golden.name);
        let a = rank(&g);
        let b = rank(&g);
        assert_eq!(a.best, b.best, "{}", golden.name);
        assert_eq!(a.evaluations, b.evaluations);
        let pairs = a.candidates.iter().zip(b.candidates.iter());
        for (ca, cb) in pairs {
            assert_eq!(
                ca.plan(),
                cb.plan(),
                "{}: candidate order drifted",
                golden.name
            );
            assert_eq!(
                ca.predicted_seconds, cb.predicted_seconds,
                "{}",
                golden.name
            );
        }
    }
}
