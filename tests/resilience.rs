//! Fault-injection differential suite for the resilient runtime: across a
//! seeded matrix of fault kinds (recoverable panics, permanent panics,
//! slow chunks, alloc pressure), every fundamental method, and 1–4 worker
//! threads, a budgeted run must either complete byte-identically to the
//! sequential listing or stop cleanly at a chunk boundary with a
//! [`PartialRun`] whose resume-and-merge is byte-identical — same triangle
//! emission order, same merged `CostReport` — to an uninterrupted run.
//! Interruptions (deadline, cancellation, memory) must never tear a chunk:
//! the completed pieces are always an exact subset of the sequential
//! chunking.

use rand::SeedableRng;
use std::time::Duration;
use trilist::core::{
    list_resilient, silence_injected_panics, CancelToken, FaultPlan, Method, ResilientOpts,
    ResumePoint, RunBudget, RunOutcome, StopReason,
};
use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated};
use trilist::graph::gen::{GraphGenerator, ResidualSampler};
use trilist::order::{DirectedGraph, OrderFamily};

/// A Pareto-ish test graph oriented descending (hubs first: many chunks).
fn fixture(n: usize, seed: u64) -> DirectedGraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dist = Truncated::new(
        DiscretePareto {
            alpha: 1.6,
            beta: 5.0,
        },
        40,
    );
    let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
    let g = ResidualSampler.generate(&seq, &mut rng).graph;
    let relabeling = OrderFamily::Descending.relabeling(&g, &mut rng);
    DirectedGraph::orient(&g, &relabeling)
}

fn opts(threads: usize) -> ResilientOpts {
    let mut o = ResilientOpts::with_threads(threads);
    o.parallel.target_chunk_ops = 256; // plenty of chunks to fault
    o
}

/// Asserts the outcome equals the sequential run — directly when complete,
/// after a clean (unlimited, fault-free) resume when partial. Returns how
/// the outcome ended for matrix accounting.
fn assert_complete_or_resumes(
    dg: &DirectedGraph,
    method: Method,
    outcome: RunOutcome,
    threads: usize,
    ctx: &str,
) -> &'static str {
    let mut seq = Vec::new();
    let seq_cost = method.run(dg, |x, y, z| seq.push((x, y, z)));
    match outcome {
        RunOutcome::Complete(run) => {
            assert_eq!(run.triangles, seq, "{ctx}: complete run diverged");
            assert_eq!(run.cost, seq_cost, "{ctx}: complete cost diverged");
            "complete"
        }
        RunOutcome::Partial(partial) => {
            // the partial piece set is a clean prefix-by-chunk subset:
            // no torn chunks, no duplicated triangles
            let total = partial.total_chunks();
            assert!(
                partial.completed_chunks() < total,
                "{ctx}: partial but done"
            );
            let merged = partial
                .resume_with(dg, &opts(threads))
                .unwrap_or_else(|e| panic!("{ctx}: resume rejected: {e}"))
                .complete()
                .unwrap_or_else(|| panic!("{ctx}: clean resume did not complete"));
            assert_eq!(merged.triangles, seq, "{ctx}: merged run diverged");
            assert_eq!(merged.cost, seq_cost, "{ctx}: merged cost diverged");
            "partial"
        }
    }
}

#[test]
fn fault_matrix_complete_or_resume_identical() {
    silence_injected_panics();
    let dg = fixture(500, 0xFA_17);
    type PlanFn = fn(u64) -> FaultPlan;
    let plans: [(&str, PlanFn); 4] = [
        ("panic-recoverable", |s| FaultPlan::panic_at(s, 300, 2)),
        ("panic-permanent", |s| FaultPlan::panic_at(s, 150, u32::MAX)),
        ("slow", |s| {
            FaultPlan::slow_chunks(s, 400, Duration::from_micros(100))
        }),
        ("alloc", |s| FaultPlan::alloc_pressure(s, 400, 1 << 16)),
    ];
    let mut partials = 0usize;
    for seed in [1u64, 2, 3] {
        for (kind, plan) in &plans {
            for method in Method::FUNDAMENTAL {
                for threads in [1usize, 2, 4] {
                    let ctx = format!("{kind} seed={seed} {method} threads={threads}");
                    let mut o = opts(threads);
                    o.fault_plan = Some(plan(seed));
                    let outcome = list_resilient(&dg, method, &o).expect("fundamental");
                    let ended = assert_complete_or_resumes(&dg, method, outcome, threads, &ctx);
                    if ended == "partial" {
                        partials += 1;
                        assert_eq!(*kind, "panic-permanent", "{ctx}: unexpected partial");
                    } else if *kind == "panic-permanent" {
                        panic!("{ctx}: permanent faults must leave a partial run");
                    }
                }
            }
        }
    }
    // the permanent-panic leg of the matrix must actually exercise resume
    assert_eq!(partials, 3 * 4 * 3, "3 seeds x 4 methods x 3 thread counts");
}

#[test]
fn recoverable_faults_recover_without_changing_telemetry_totals() {
    silence_injected_panics();
    let dg = fixture(500, 0xFA_18);
    let seq_cost = Method::E4.run(&dg, |_, _, _| {});
    let mut o = opts(3);
    o.fault_plan = Some(FaultPlan::seeded(9)); // mixed: 1-shot panics, slow, alloc
    let run = list_resilient(&dg, Method::E4, &o)
        .unwrap()
        .complete()
        .expect("seeded plan's panics are single-attempt: recoverable");
    assert_eq!(run.cost, seq_cost);
    assert!(!run.faults.is_empty(), "the plan must fire at this scale");
    assert!(run.faults.iter().all(|f| !f.fatal));
    // retried chunks are counted once in the merged telemetry
    let processed: u64 = run.threads.iter().map(|t| t.chunks).sum();
    assert!(processed as usize >= run.chunks);
}

#[test]
fn pre_cancelled_run_stops_before_any_chunk() {
    let dg = fixture(400, 0xFA_19);
    for method in Method::FUNDAMENTAL {
        let token = CancelToken::new();
        token.cancel();
        let mut o = opts(2);
        o.budget = RunBudget::unlimited().with_cancel(token);
        let partial = list_resilient(&dg, method, &o)
            .unwrap()
            .partial()
            .expect("a cancelled token must interrupt the run");
        assert_eq!(partial.reason, StopReason::Cancelled, "{method}");
        assert_eq!(partial.completed_chunks(), 0, "{method}");
        assert!(partial.triangles().is_empty(), "{method}: torn output");
    }
}

#[test]
fn mid_run_cancellation_leaves_a_mergeable_prefix() {
    let dg = fixture(600, 0xFA_20);
    // slow every chunk so the run outlives the cancellation trigger
    let mut o = opts(2);
    o.fault_plan = Some(FaultPlan::slow_chunks(5, 1000, Duration::from_micros(500)));
    let token = CancelToken::new();
    o.budget = RunBudget::unlimited().with_cancel(token.clone());
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(4));
        token.cancel();
    });
    let outcome = list_resilient(&dg, Method::E1, &o).unwrap();
    canceller.join().unwrap();
    // either it beat the trigger (complete) or it stopped cleanly; both
    // must reconstruct the sequential run exactly
    assert_complete_or_resumes(&dg, Method::E1, outcome, 2, "mid-run cancel");
}

#[test]
fn zero_deadline_terminates_immediately_and_resumes_to_identical() {
    let dg = fixture(500, 0xFA_21);
    for threads in [1usize, 4] {
        let mut o = opts(threads);
        o.budget = RunBudget::unlimited().with_deadline(Duration::ZERO);
        let outcome = list_resilient(&dg, Method::T1, &o).unwrap();
        match &outcome {
            RunOutcome::Partial(p) => {
                assert_eq!(p.reason, StopReason::DeadlineExceeded);
                assert_eq!(p.completed_chunks(), 0, "threads={threads}");
            }
            RunOutcome::Complete(_) => panic!("zero deadline must interrupt"),
        }
        assert_complete_or_resumes(&dg, Method::T1, outcome, threads, "zero deadline");
    }
}

#[test]
fn memory_ceiling_interrupts_oracle_methods_and_resume_completes() {
    let dg = fixture(800, 0xFA_22);
    // T1/T2 charge the hash oracle (~12 bytes/edge) up front; a ceiling
    // below that trips before any chunk runs
    let mut o = opts(2);
    o.budget = RunBudget::unlimited().with_memory_bytes(64);
    let outcome = list_resilient(&dg, Method::T2, &o).unwrap();
    match &outcome {
        RunOutcome::Partial(p) => assert_eq!(p.reason, StopReason::MemoryExhausted),
        RunOutcome::Complete(_) => panic!("64-byte ceiling must interrupt T2"),
    }
    assert_complete_or_resumes(&dg, Method::T2, outcome, 2, "memory ceiling");
}

#[test]
fn resume_point_round_trips_through_text_across_thread_counts() {
    silence_injected_panics();
    let dg = fixture(500, 0xFA_23);
    let mut o = opts(2);
    o.fault_plan = Some(FaultPlan::panic_at(13, 200, u32::MAX));
    o.max_attempts = 2;
    let partial = list_resilient(&dg, Method::E1, &o)
        .unwrap()
        .partial()
        .expect("permanent faults leave a partial run");
    let text = partial.resume.to_string();
    assert!(text.starts_with("trilist-resume v1 E1 n=500"), "{text}");
    let parsed: ResumePoint = text.parse().expect("serialized point re-parses");
    assert_eq!(parsed, partial.resume);
    // the deserialized point drives the remainder on a different thread
    // count; checkpointed pieces plus the remainder cover the sequential
    // run exactly — no lost and no duplicated triangles, costs additive
    let mut seq = Vec::new();
    let seq_cost = Method::E1.run(&dg, |x, y, z| seq.push((x, y, z)));
    seq.sort_unstable();
    for threads in [1usize, 3] {
        let rest = parsed
            .run(&dg, &opts(threads))
            .unwrap()
            .complete()
            .expect("fault-free remainder completes");
        let mut merged = partial.triangles();
        merged.extend(rest.triangles.iter().copied());
        merged.sort_unstable();
        assert_eq!(merged, seq, "threads={threads}");
        let mut cost = partial.cost();
        cost.accumulate(&rest.cost);
        assert_eq!(cost, seq_cost, "threads={threads}");
    }
}

#[test]
fn default_resilient_path_matches_plain_runtime() {
    let dg = fixture(700, 0xFA_24);
    for method in Method::FUNDAMENTAL {
        let plain = trilist::core::par_list(&dg, method, 3).unwrap();
        let resilient = list_resilient(&dg, method, &ResilientOpts::with_threads(3))
            .unwrap()
            .complete()
            .expect("no budget, no faults: always complete");
        assert_eq!(resilient.triangles, plain.triangles, "{method}");
        assert_eq!(resilient.cost, plain.cost, "{method}");
        assert!(resilient.faults.is_empty(), "{method}");
    }
}
