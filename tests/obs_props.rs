//! Property-based invariants for the observability layer (proptest):
//! log2 bucketing is total and monotone over all of `u64`, counter
//! snapshot merging is associative and commutative, and the hand-rolled
//! measured-vs-model JSON codec round-trips losslessly.

use proptest::prelude::*;
use trilist::core::{
    log2_bucket, Counter, CounterSnapshot, MeasuredVsModel, MethodMeasurement, HIST_BUCKETS,
};

/// Strategy: an arbitrary counter snapshot.
fn arb_snapshot() -> impl Strategy<Value = CounterSnapshot> {
    proptest::collection::vec(any::<u64>(), Counter::COUNT).prop_map(|v| {
        let mut s = CounterSnapshot::default();
        s.counts.copy_from_slice(&v);
        s
    })
}

/// Characters the JSON escaper must survive: quotes, backslashes, braces,
/// separators, a control character, and a non-ASCII scalar.
const AWKWARD: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '/', '{', '}', '[', ']', ':', ',', '.', '-', '_', '\n', '\t',
    '\u{1}', 'é',
];

/// Strategy: a short string over [`AWKWARD`].
fn arb_label() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..AWKWARD.len(), 0..12)
        .prop_map(|ix| ix.into_iter().map(|i| AWKWARD[i]).collect())
}

/// Strategy: one measured-vs-model entry with awkward strings and finite
/// floats.
fn arb_entry() -> impl Strategy<Value = MethodMeasurement> {
    (
        (arb_label(), arb_label()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u32>(), any::<u32>(), 0u32..=1_000_000),
    )
        .prop_map(
            |((method, policy), (modeled, measured, wall), (spans, tris, eff_millionths))| {
                MethodMeasurement::derive(
                    &method,
                    &policy,
                    modeled,
                    measured,
                    wall,
                    spans as u64,
                    tris as u64,
                    eff_millionths as f64 / 1e6,
                )
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn log2_bucket_total_and_monotone(v in any::<u64>(), w in any::<u64>()) {
        let (bv, bw) = (log2_bucket(v), log2_bucket(w));
        prop_assert!(bv < HIST_BUCKETS, "bucket {bv} out of range for {v}");
        prop_assert!(bw < HIST_BUCKETS);
        if v <= w {
            prop_assert!(bv <= bw, "bucketing must be monotone: {v}→{bv}, {w}→{bw}");
        }
        // the bucket is the bit length: 2^(b-1) <= v < 2^b for v > 0
        if v > 0 {
            let b = bv as u32;
            prop_assert!(v >= 1u64.checked_shl(b - 1).unwrap_or(u64::MAX));
            prop_assert!(b == 64 || v < 1u64 << b);
        } else {
            prop_assert_eq!(bv, 0);
        }
    }

    #[test]
    fn snapshot_merge_is_associative_and_commutative(
        a in arb_snapshot(),
        b in arb_snapshot(),
        c in arb_snapshot(),
    ) {
        let ab = a.merge(&b);
        prop_assert_eq!(ab, b.merge(&a), "merge must commute");
        prop_assert_eq!(ab.merge(&c), a.merge(&b.merge(&c)), "merge must associate");
        let zero = CounterSnapshot::default();
        prop_assert_eq!(a.merge(&zero), a, "zero is the identity");
    }

    #[test]
    fn measured_vs_model_json_round_trips(entries in proptest::collection::vec(arb_entry(), 0..6)) {
        let report = MeasuredVsModel { entries };
        let json = report.to_json();
        let parsed = MeasuredVsModel::from_json(&json).expect("own output must parse");
        prop_assert_eq!(&parsed, &report, "decode(encode(r)) != r\njson: {}", json);
        // and the codec is a fixpoint: re-encoding the parse is stable
        prop_assert_eq!(parsed.to_json(), json);
    }
}
