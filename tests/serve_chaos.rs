//! Chaos suite for the service layer: with deterministic fault injection
//! armed — short reads/writes, `WouldBlock`/`EINTR` storms, mid-frame
//! resets, stalls, worker panics, gauge spikes, deadline skew — a
//! retrying client must still extract results *byte-identical* to a
//! fault-free oracle, on both connection layers and at every worker
//! count. Plus: the kill-and-restart drill (a `List` resume chain
//! survives the server dying and a replacement coming up), the
//! degrade-before-reject ladder (pinned counters prove degradation
//! engages before anything is shed), the retry-policy backoff laws, and
//! chaos-schedule determinism (all proptests, raised by the weekly
//! `PROPTEST_CASES` run).

use proptest::prelude::*;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use trilist::core::{fault_roll, silence_injected_panics, CostReport};
use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated, Truncation};
use trilist::graph::gen::{GraphGenerator, ResidualSampler};
use trilist::graph::Graph;
use trilist::serve::{
    ChaosPlan, Client, ClientError, IoOp, ListParams, RetryPolicy, ServeConfig, Server,
};

/// A reproducible Pareto α = 1.5 graph with plenty of triangles.
fn pareto_graph(n: usize, seed: u64) -> Graph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dist = Truncated::new(DiscretePareto::paper_beta(1.5), Truncation::Root.t_n(n));
    let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
    ResidualSampler.generate(&seq, &mut rng).graph
}

/// The request shapes every chaos run drives: a mix of methods,
/// families, policies, and deadlines (deadline shapes exercise resume
/// chains and the chaos deadline skew).
const SHAPES: [(&str, &str, &str, u64, bool); 4] = [
    ("T1", "desc", "paper", 0, true),
    ("E4", "crr", "adaptive", 4, true),
    ("T2", "rr", "bitset", 0, false),
    ("E1", "desc", "adaptive", 3, true),
];

/// What one shape must produce: the exact triangle stream (empty for
/// `Count`) and the exact accumulated cost.
#[derive(Clone, Debug, PartialEq)]
struct ShapeResult {
    triangles: Vec<(u32, u32, u32)>,
    cost: CostReport,
}

fn drive_shapes(client: &mut Client, graph: &str) -> Vec<ShapeResult> {
    SHAPES
        .iter()
        .map(|&(method, family, policy, deadline_ms, list)| {
            let params = ListParams {
                deadline_ms,
                ..ListParams::new(graph, method, family, policy)
            };
            if list {
                let chain = client.list_to_completion(params).expect("chain completes");
                ShapeResult {
                    triangles: chain.triangles,
                    cost: chain.cost,
                }
            } else {
                let run = client.count(params).expect("count completes");
                assert!(run.complete, "count without deadline completes");
                ShapeResult {
                    triangles: run.triangles,
                    cost: run.cost,
                }
            }
        })
        .collect()
}

/// The fault-free oracle: the same shapes against an unfaulted default
/// server. Cost accounting and triangles are policy-, thread-, and
/// layer-invariant, so one oracle covers the whole matrix.
fn oracle(g: &Graph) -> Vec<ShapeResult> {
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .register_graph("chaos", g.n() as u32, &edges)
        .unwrap();
    let results = drive_shapes(&mut client, "chaos");
    client.shutdown().unwrap();
    server.join();
    results
}

#[test]
fn chaos_matrix_completed_responses_are_byte_identical_to_fault_free_oracle() {
    silence_injected_panics();
    let g = pareto_graph(400, 0xC4A0);
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let expected = oracle(&g);
    assert!(
        expected.iter().any(|r| r.cost.triangles > 0),
        "fixture must have triangles"
    );

    // Injection totals per connection layer. A single short run sees few
    // syscalls (loopback coalesces whole frames into one read/write), so
    // any one combo may legitimately draw zero faults; across a layer's
    // 24 runs, zero means injection is broken for that layer.
    let mut injected = [0u64; 2];
    for chaos_seed in [1u64, 2, 3, 5, 8, 13, 21, 34] {
        for blocking in [false, true] {
            for workers in [1usize, 2, 4] {
                let cfg = ServeConfig {
                    workers,
                    blocking,
                    chaos: Some(ChaosPlan::seeded(chaos_seed)),
                    ..ServeConfig::default()
                };
                let server = Server::bind("127.0.0.1:0", cfg).unwrap();
                let policy = RetryPolicy {
                    attempt_timeout: Some(Duration::from_secs(5)),
                    ..RetryPolicy::seeded(chaos_seed)
                };
                let mut client = Client::connect_with_retry(server.addr(), policy).unwrap();
                client
                    .register_graph("chaos", g.n() as u32, &edges)
                    .unwrap();
                let got = drive_shapes(&mut client, "chaos");
                assert_eq!(
                    got, expected,
                    "seed {chaos_seed} blocking {blocking} workers {workers}: \
                     completed responses must be byte-identical to the oracle"
                );
                let stats = client.stats().expect("stats under chaos");
                injected[blocking as usize] += stats
                    .iter()
                    .filter(|(k, _)| k.starts_with("chaos_"))
                    .map(|&(_, v)| v)
                    .sum::<u64>();
                client.shutdown().expect("shutdown under chaos");
                server.join();
            }
        }
    }
    // Chaos must actually have fired on both layers, or the matrix
    // proves nothing.
    assert!(injected[0] > 0, "no faults injected on the event loop");
    assert!(injected[1] > 0, "no faults injected on the blocking layer");
}

#[test]
fn no_retried_call_exceeds_its_worst_case_budget() {
    silence_injected_panics();
    let g = pareto_graph(200, 0xB0D9);
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let cfg = ServeConfig {
        chaos: Some(ChaosPlan::seeded(0x7E57)),
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let policy = RetryPolicy {
        attempt_timeout: Some(Duration::from_secs(2)),
        ..RetryPolicy::seeded(0x7E57)
    };
    let budget = policy.worst_case_budget().expect("timeout set");
    // Generous slack for reconnect dials and scheduler noise; the point
    // is that a retried call is *bounded*, not that it is fast.
    let limit = budget + Duration::from_secs(2);
    let mut client = Client::connect_with_retry(server.addr(), policy).unwrap();
    client
        .register_graph("chaos", g.n() as u32, &edges)
        .unwrap();
    for i in 0..40u64 {
        let t0 = Instant::now();
        let run = client
            .count(ListParams::new("chaos", "T1", "desc", "paper"))
            .expect("count under chaos");
        assert!(run.complete);
        let elapsed = t0.elapsed();
        assert!(
            elapsed <= limit,
            "call {i} took {elapsed:?}, over the worst-case budget {budget:?} (+2s slack)"
        );
    }
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn killed_and_restarted_server_resumes_list_chain_byte_identically() {
    let g = pareto_graph(900, 0xD211);
    let edges: Vec<(u32, u32)> = g.edges().collect();

    // The uninterrupted stream the drill must reproduce.
    let expected = {
        let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        client
            .register_graph("drill", g.n() as u32, &edges)
            .unwrap();
        let run = client
            .list(ListParams::new("drill", "T1", "desc", "paper"))
            .unwrap();
        assert!(run.complete);
        client.shutdown().unwrap();
        server.join();
        (run.triangles, run.cost)
    };

    // Server A: start a deadline-interrupted chain and collect a few
    // partial responses.
    let server_a = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut admin_a = Client::connect(server_a.addr()).unwrap();
    admin_a
        .register_graph("drill", g.n() as u32, &edges)
        .unwrap();
    let mut client = Client::connect_with_retry(
        server_a.addr(),
        RetryPolicy {
            attempt_timeout: Some(Duration::from_secs(5)),
            ..RetryPolicy::seeded(0xD211)
        },
    )
    .unwrap();
    // A 1-byte memory ceiling is always already exceeded (cache
    // residency counts against the shared gauge), so this request stops
    // deterministically at the first budget check and answers with a
    // resume token — the chain is now provably mid-flight.
    let mut params = ListParams {
        memory_bytes: 1,
        ..ListParams::new("drill", "T1", "desc", "paper")
    };
    let first = client.list(params.clone()).expect("partial before kill");
    assert!(!first.complete, "a 1-byte ceiling must interrupt");
    assert!(!first.resume.is_empty());
    params.resume = first.resume.clone();
    params.memory_bytes = 0;
    let mut responses = vec![first];

    // Kill A (graceful drain so the fixture is not timing-dependent;
    // the client's connection still dies with the process).
    admin_a.shutdown().unwrap();
    server_a.join();

    // Server B: a fresh process on a fresh port with the graph
    // re-registered. The resume token lives on the client, so pointing
    // the client's reconnect target at B is all the drill needs.
    let server_b = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut admin_b = Client::connect(server_b.addr()).unwrap();
    admin_b
        .register_graph("drill", g.n() as u32, &edges)
        .unwrap();
    client.set_reconnect_addr(server_b.addr().to_string());

    let reconnects_before = client.reconnects();
    loop {
        let res = client.list(params.clone()).expect("resume against B");
        let done = res.complete;
        params.resume = res.resume.clone();
        responses.push(res);
        if done {
            break;
        }
    }
    assert!(
        client.reconnects() > reconnects_before,
        "the chain must have crossed the restart via a reconnect"
    );

    let mut cost = CostReport::default();
    for res in &responses {
        cost.accumulate(&res.cost);
    }
    let triangles = trilist::serve::merge_pieces(&responses).expect("consistent piece tables");
    assert_eq!(triangles, expected.0, "stream must be byte-identical");
    assert_eq!(cost, expected.1, "cost must be byte-identical");

    admin_b.shutdown().unwrap();
    server_b.join();
}

/// Looks a counter up in a stats payload.
fn field(stats: &[(String, u64)], name: &str) -> u64 {
    stats
        .iter()
        .find(|(k, _)| k == name)
        .map(|&(_, v)| v)
        .unwrap_or_else(|| panic!("stats missing {name}"))
}

#[test]
fn degradation_ladder_engages_before_anything_is_rejected() {
    let big = pareto_graph(800, 0x1ADD);
    let small = pareto_graph(50, 0x1ADE);
    let big_edges: Vec<(u32, u32)> = big.edges().collect();
    let small_edges: Vec<(u32, u32)> = small.edges().collect();

    // Measurement pass (no ceiling): how many bytes the two prepared
    // graphs actually occupy, so the real server's memory ceiling can be
    // pitched to a known gauge fill.
    let (resident_total, resident_small_entry) = {
        let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        c.register_graph("big", big.n() as u32, &big_edges).unwrap();
        c.register_graph("small", small.n() as u32, &small_edges)
            .unwrap();
        let raw = field(&c.stats().unwrap(), "gauge_bytes");
        c.list(ListParams::new("small", "T1", "desc", "paper"))
            .unwrap();
        let with_small = field(&c.stats().unwrap(), "gauge_bytes");
        c.list(ListParams::new("big", "T1", "desc", "paper"))
            .unwrap();
        let with_both = field(&c.stats().unwrap(), "gauge_bytes");
        assert!(with_both > with_small && with_small > raw);
        c.shutdown().unwrap();
        server.join();
        (with_both, with_small - raw)
    };
    // After the small graph's entry is evicted the gauge must still sit
    // at ≥ 90% of the ceiling, so the ladder stays engaged: ceiling =
    // (total − small_entry) · 10/9 (integer floor keeps fill ≥ 0.9).
    // That requires the big entry to dominate.
    assert!(
        resident_total > 10 * resident_small_entry,
        "fixture: big prepared entry must dominate ({resident_total} vs {resident_small_entry})"
    );
    let ceiling = (resident_total - resident_small_entry) * 10 / 9;
    assert!(ceiling > resident_total, "both graphs must fit under it");

    let cfg = ServeConfig {
        memory_bytes: Some(ceiling),
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .register_graph("big", big.n() as u32, &big_edges)
        .unwrap();
    client
        .register_graph("small", small.n() as u32, &small_edges)
        .unwrap();

    // Requests carry their own huge memory override, so the cfg ceiling
    // creates *pressure* (gauge fill) without stopping any run.
    let override_bytes = 1u64 << 40;

    // R1: prepares the small graph at low pressure. "paper" cannot be
    // downgraded further and there is no deadline, so whatever the fill,
    // R1 moves no ladder counter.
    let r1 = client
        .list(ListParams {
            memory_bytes: override_bytes,
            ..ListParams::new("small", "T1", "desc", "paper")
        })
        .unwrap();
    assert!(r1.complete);

    // R2: prepares the big graph, pushing the gauge past every rung
    // *before* the admission gate is consulted. Pinned effects: bitset →
    // paper (policy rung), 10 s deadline → clamped (deadline rung), the
    // small graph's cold entry evicted (evict rung) — and the request
    // still completes.
    let r2 = client
        .list(ListParams {
            memory_bytes: override_bytes,
            deadline_ms: 10_000,
            ..ListParams::new("big", "T1", "desc", "bitset")
        })
        .unwrap();
    assert!(r2.complete, "degraded, not rejected");

    // R3: same shape on the now-hot big graph. The policy and deadline
    // rungs fire again; the evict rung finds nothing cold (only the
    // current graph remains) and stays put.
    let r3 = client
        .list(ListParams {
            memory_bytes: override_bytes,
            deadline_ms: 10_000,
            ..ListParams::new("big", "T1", "desc", "bitset")
        })
        .unwrap();
    assert!(r3.complete, "degraded, not rejected");

    let stats = client.stats().unwrap();
    assert_eq!(field(&stats, "admission_degraded_policy"), 2);
    assert_eq!(field(&stats, "admission_degraded_deadline"), 2);
    assert_eq!(field(&stats, "admission_degraded_evict"), 1);
    assert_eq!(field(&stats, "cache_cold_evictions"), 1);
    assert_eq!(
        field(&stats, "admission_rejected_busy"),
        0,
        "the ladder must engage before anything is shed"
    );

    // Saturation phase: a concurrent burst against the default admission
    // limits. Now — and only now — rejections may appear, with the
    // ladder already demonstrably engaged above.
    let addr = server.addr().to_string();
    let rejected: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let addr = addr.as_str();
                scope.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    let mut rejected = 0u64;
                    for _ in 0..4 {
                        match c.list(ListParams {
                            memory_bytes: override_bytes,
                            ..ListParams::new("big", "T1", "desc", "bitset")
                        }) {
                            Ok(_) => {}
                            Err(ClientError::Server(e)) => {
                                assert_eq!(e.code, trilist::serve::ErrorCode::RejectedBusy);
                                rejected += 1;
                            }
                            Err(e) => panic!("unexpected failure under saturation: {e}"),
                        }
                    }
                    rejected
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let stats = client.stats().unwrap();
    assert_eq!(field(&stats, "admission_rejected_busy"), rejected);
    assert!(
        field(&stats, "admission_degraded_policy") >= 2,
        "degradation preceded every rejection"
    );

    client.shutdown().unwrap();
    server.join();
}

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    // The backoff schedule is monotone nondecreasing and capped, for
    // any jitter amplitude (the policy clamps it to the monotone
    // range) and any seed.
    #[test]
    fn prop_backoff_monotone_and_capped(
        base_ms in 1u64..50,
        cap_ms in 1u64..2_000,
        jitter in 0u16..1000,
        seed in any::<u64>(),
    ) {
        let policy = RetryPolicy {
            base: Duration::from_millis(base_ms),
            cap: Duration::from_millis(cap_ms),
            jitter_permille: jitter,
            seed,
            ..RetryPolicy::default()
        };
        let mut prev = Duration::ZERO;
        for retry in 0..24u32 {
            let d = policy.backoff(retry);
            prop_assert!(d <= policy.cap, "retry {} over cap: {:?}", retry, d);
            prop_assert!(d >= prev, "retry {} regressed: {:?} < {:?}", retry, d, prev);
            prev = d;
        }
        // And the tail saturates at the cap.
        prop_assert_eq!(policy.backoff(63), policy.backoff(64));
    }

    // Every delay stays within the jitter band of its nominal
    // exponential value: `nominal·(1000−j)/1000 ≤ delay ≤
    // min(nominal·(1000+j)/1000, cap)` with `j` clamped to 333‰.
    #[test]
    fn prop_backoff_jitter_bounded(
        base_ms in 1u64..50,
        jitter in 0u16..1000,
        seed in any::<u64>(),
        retry in 0u32..16,
    ) {
        let policy = RetryPolicy {
            base: Duration::from_millis(base_ms),
            cap: Duration::from_secs(1 << 12),
            jitter_permille: jitter,
            seed,
            ..RetryPolicy::default()
        };
        let j = u64::from(jitter.min(333));
        let nominal = base_ms.checked_mul(1u64 << retry).unwrap() * 1_000_000;
        let d = policy.backoff(retry).as_nanos() as u64;
        prop_assert!(d >= nominal / 1000 * (1000 - j));
        prop_assert!(d <= nominal / 1000 * (1000 + j));
    }

    // A chaos plan is a pure function of `(seed, conn, event)`: the
    // same coordinates always draw the same fault, and the per-mille
    // roll primitive it builds on stays in range.
    #[test]
    fn prop_chaos_plan_is_deterministic(
        seed in any::<u64>(),
        conn in any::<u64>(),
        event in any::<u64>(),
    ) {
        let a = ChaosPlan::seeded(seed);
        let b = ChaosPlan::seeded(seed);
        prop_assert_eq!(a.io_fault(IoOp::Read, conn, event), b.io_fault(IoOp::Read, conn, event));
        prop_assert_eq!(a.io_fault(IoOp::Write, conn, event), b.io_fault(IoOp::Write, conn, event));
        prop_assert_eq!(a.exec_fault(conn, event), b.exec_fault(conn, event));
        prop_assert_eq!(a.skews_deadline(conn, event), b.skews_deadline(conn, event));
        prop_assert!(fault_roll(seed, 0x524a_4954, conn, event) < 1000);
    }

    // Distinct seeds decorrelate: over a window of events, two seeds
    // must not replay each other's read-fault schedule.
    #[test]
    fn prop_chaos_seeds_decorrelate(seed in any::<u64>()) {
        let a = ChaosPlan::seeded(seed);
        let b = ChaosPlan::seeded(seed ^ 0x9E37_79B9_7F4A_7C15);
        let trace = |p: &ChaosPlan| -> Vec<_> {
            (0..512).map(|e| p.io_fault(IoOp::Read, 1, e)).collect()
        };
        prop_assert_ne!(trace(&a), trace(&b));
    }
}
