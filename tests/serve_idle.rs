//! Idle connections must not burn CPU. The event loop blocks in the
//! poller with no timeout when there is nothing to do, and the blocking
//! layer's per-connection readers back off exponentially (25 ms → 800 ms)
//! instead of spinning on a fixed 50 ms read timeout.
//!
//! This file holds exactly one test so `/proc/self/stat` measures only
//! this process doing only this work.

#![cfg(target_os = "linux")]

use trilist::serve::{Client, ServeConfig, Server};

/// Whole-process CPU time (user + system) in clock ticks.
fn cpu_ticks() -> u64 {
    let stat = std::fs::read_to_string("/proc/self/stat").expect("read /proc/self/stat");
    // Field 2 is `(comm)` and may contain spaces; parse after the ')'.
    let after = stat.rsplit(')').next().expect("stat tail");
    let fields: Vec<&str> = after.split_whitespace().collect();
    // After the ')' split, utime and stime are fields 11 and 12 (0-based).
    let utime: u64 = fields[11].parse().expect("utime");
    let stime: u64 = fields[12].parse().expect("stime");
    utime + stime
}

#[test]
fn idle_connections_burn_near_zero_cpu_in_both_layers() {
    let tick_ms = 1000 / unsafe { libc_sc_clk_tck() }.max(1);
    for blocking in [false, true] {
        let server = Server::bind(
            "127.0.0.1:0",
            ServeConfig {
                blocking,
                ..ServeConfig::default()
            },
        )
        .expect("bind");
        // Eight connections, each provably live (one round trip), then
        // left idle.
        let mut clients: Vec<Client> = (0..8)
            .map(|_| {
                let mut c = Client::connect(server.addr()).expect("connect");
                c.stats().expect("round trip");
                c
            })
            .collect();
        let before = cpu_ticks();
        std::thread::sleep(std::time::Duration::from_millis(1500));
        let burned_ms = (cpu_ticks() - before) * tick_ms;
        assert!(
            burned_ms <= 200,
            "blocking={blocking}: 8 idle connections burned ~{burned_ms} ms CPU over 1.5 s"
        );
        for c in &mut clients {
            c.stats().expect("still serving after the idle window");
        }
        drop(clients);
        server.join();
    }
}

/// `sysconf(_SC_CLK_TCK)` without a libc crate dependency.
unsafe fn libc_sc_clk_tck() -> u64 {
    extern "C" {
        fn sysconf(name: i32) -> i64;
    }
    const SC_CLK_TCK: i32 = 2;
    let v = sysconf(SC_CLK_TCK);
    if v > 0 {
        v as u64
    } else {
        100
    }
}
