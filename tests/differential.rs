//! Differential harness: every triangle-listing path in the repository —
//! the 18 framework methods, both prior-art algorithms, the parallel
//! runner, the compressed-adjacency E1, the external-memory engine, and
//! the three baselines — is run against the same randomized graphs and
//! must produce identical triangle sets. A disagreement anywhere points at
//! a real bug in exactly one component.

use rand::{Rng, SeedableRng};
use trilist::core::{
    baseline, compressed::CompressedOut, e1_compressed, par_list, prior_art, Method,
};
use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated, Zipf};
use trilist::graph::gen::{ConfigurationModel, Gnp, GraphGenerator, ResidualSampler};
use trilist::graph::Graph;
use trilist::order::{DirectedGraph, OrderFamily};
use trilist::xm::xm_e1;

/// Sorted canonical triangle set in original IDs.
fn canon(mut tris: Vec<(u32, u32, u32)>) -> Vec<(u32, u32, u32)> {
    tris.sort_unstable();
    tris
}

fn all_paths_agree(g: &Graph, seed: u64) {
    let mut want = Vec::new();
    baseline::brute_force(g, |x, y, z| want.push((x, y, z)));
    let want = canon(want);

    // baselines
    let mut v = Vec::new();
    baseline::unoriented_vertex_iterator(g, |x, y, z| v.push((x, y, z)));
    assert_eq!(canon(v), want, "unoriented vertex");
    let mut e = Vec::new();
    baseline::unoriented_edge_iterator(g, |x, y, z| e.push((x, y, z)));
    assert_eq!(canon(e), want, "unoriented edge");

    // prior art (original IDs already)
    let mut cn = Vec::new();
    prior_art::chiba_nishizeki(g, |x, y, z| cn.push((x, y, z)));
    assert_eq!(canon(cn), want, "chiba-nishizeki");
    let mut fw = Vec::new();
    prior_art::forward(g, |x, y, z| fw.push((x, y, z)));
    assert_eq!(canon(fw), want, "forward");

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for family in OrderFamily::ALL {
        let relabeling = family.relabeling(g, &mut rng);
        let dg = DirectedGraph::orient(g, &relabeling);
        let inv = relabeling.inverse();
        let to_orig = |x: u32, y: u32, z: u32| {
            let mut t = [inv[x as usize], inv[y as usize], inv[z as usize]];
            t.sort_unstable();
            (t[0], t[1], t[2])
        };

        // all 18 framework methods
        for method in Method::ALL {
            let mut got = Vec::new();
            method.run(&dg, |x, y, z| got.push(to_orig(x, y, z)));
            assert_eq!(canon(got), want, "{method} under {}", family.name());
        }
        // parallel fundamentals
        for method in Method::FUNDAMENTAL {
            let run = par_list(&dg, method, 3).unwrap();
            let got: Vec<_> = run
                .triangles
                .iter()
                .map(|&(x, y, z)| to_orig(x, y, z))
                .collect();
            assert_eq!(
                canon(got),
                want,
                "parallel {method} under {}",
                family.name()
            );
        }
        // compressed E1
        let mut got = Vec::new();
        e1_compressed(&CompressedOut::compress(&dg), |x, y, z| {
            got.push(to_orig(x, y, z))
        });
        assert_eq!(canon(got), want, "compressed E1 under {}", family.name());
        // external-memory E1
        let mut got = Vec::new();
        xm_e1(&dg, 3, |x, y, z| got.push(to_orig(x, y, z))).expect("scratch io");
        assert_eq!(canon(got), want, "xm E1 under {}", family.name());
    }
}

#[test]
fn differential_on_pareto_realizations() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for trial in 0..3 {
        let n = 60 + trial * 30;
        let dist = Truncated::new(
            DiscretePareto {
                alpha: 1.6,
                beta: 3.0,
            },
            12,
        );
        let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
        let g = ResidualSampler.generate(&seq, &mut rng).graph;
        all_paths_agree(&g, 100 + trial as u64);
    }
}

#[test]
fn differential_on_zipf_and_config_model() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let z = Zipf::new(2.2, 15);
    let (seq, _) = sample_degree_sequence(&z, 80, &mut rng);
    let g = ConfigurationModel.generate(&seq, &mut rng).graph;
    all_paths_agree(&g, 7);
}

#[test]
fn differential_on_dense_gnp() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let g = Gnp { p: 0.35 }.generate(40, &mut rng);
    all_paths_agree(&g, 9);
}

#[test]
fn differential_on_adversarial_shapes() {
    // complete graph, star, wheel, two cliques sharing a vertex
    let mut k8 = Vec::new();
    for u in 0..8u32 {
        for v in (u + 1)..8 {
            k8.push((u, v));
        }
    }
    all_paths_agree(&Graph::from_edges(8, &k8).unwrap(), 11);

    let star: Vec<_> = (1..12u32).map(|v| (0u32, v)).collect();
    all_paths_agree(&Graph::from_edges(12, &star).unwrap(), 12);

    let mut shared = Vec::new();
    for u in 0..5u32 {
        for v in (u + 1)..5 {
            shared.push((u, v));
        }
    }
    for u in 4..9u32 {
        for v in (u + 1)..9 {
            shared.push((u, v));
        }
    }
    all_paths_agree(&Graph::from_edges(9, &shared).unwrap(), 13);
}

#[test]
fn differential_random_gnp_sweep() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    for trial in 0..4 {
        let n = rng.gen_range(20..50);
        let p = rng.gen_range(0.05..0.4);
        let g = Gnp { p }.generate(n, &mut rng);
        all_paths_agree(&g, 20 + trial);
    }
}
