//! Property-based invariants across the whole stack (proptest).

use proptest::prelude::*;
use rand::SeedableRng;
use trilist::core::{baseline, list_triangles, Method};
use trilist::graph::dist::{DegreeModel, DiscretePareto, Truncated};
use trilist::graph::gen::{GraphGenerator, ResidualSampler};
use trilist::graph::{DegreeSequence, Graph};
use trilist::order::{round_robin, DirectedGraph, LimitMap, OrderFamily, Permutation, Relabeling};

/// Strategy: a random simple graph as an edge set over `n ≤ 16` nodes.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..16).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), max_edges).prop_map(move |mask| {
            let mut edges = Vec::new();
            let mut k = 0;
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if mask[k] {
                        edges.push((u, v));
                    }
                    k += 1;
                }
            }
            Graph::from_edges(n, &edges).expect("mask yields a simple graph")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_methods_match_brute_force(g in arb_graph(), seed in 0u64..1000) {
        let mut want = Vec::new();
        baseline::brute_force(&g, |x, y, z| want.push((x, y, z)));
        want.sort_unstable();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for family in OrderFamily::ALL {
            for method in [Method::T1, Method::T3, Method::E1, Method::E4, Method::E5, Method::L3] {
                let mut run = list_triangles(&g, method, family, &mut rng);
                run.triangles.sort_unstable();
                prop_assert_eq!(&run.triangles, &want, "{} under {}", method, family.name());
            }
        }
    }

    #[test]
    fn orientation_preserves_degrees(g in arb_graph(), seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let family = OrderFamily::ALL[(seed % 6) as usize];
        let relabeling = family.relabeling(&g, &mut rng);
        let dg = DirectedGraph::orient(&g, &relabeling);
        prop_assert!(dg.validate());
        let inv = relabeling.inverse();
        for label in 0..g.n() as u32 {
            prop_assert_eq!(dg.degree(label), g.degree(inv[label as usize]));
        }
    }

    #[test]
    fn measured_cost_equals_closed_form(g in arb_graph(), seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let family = OrderFamily::ALL[(seed % 6) as usize];
        let dg = DirectedGraph::orient(&g, &family.relabeling(&g, &mut rng));
        for method in Method::ALL {
            let cost = method.run(&dg, |_, _, _| {});
            prop_assert_eq!(cost.operations(), method.predicted_operations(&dg), "{}", method);
        }
    }

    #[test]
    fn round_robin_is_bijection(n in 1usize..500) {
        let p = round_robin(n);
        let mut seen = vec![false; n];
        for pos in 0..n {
            let l = p.label(pos) as usize;
            prop_assert!(!seen[l]);
            seen[l] = true;
        }
    }

    #[test]
    fn reverse_complement_involutions(theta in proptest::collection::vec(0u32..64, 1..64)) {
        // build a permutation from the random ranks (argsort makes it valid)
        let mut idx: Vec<u32> = (0..theta.len() as u32).collect();
        idx.sort_by_key(|&i| (theta[i as usize], i));
        let mut labels = vec![0u32; theta.len()];
        for (rank, &i) in idx.iter().enumerate() {
            labels[i as usize] = rank as u32;
        }
        let p = Permutation::new(labels).unwrap();
        prop_assert_eq!(p.reverse().reverse(), p.clone());
        prop_assert_eq!(p.complement().complement(), p.clone());
        // reverse and complement commute
        prop_assert_eq!(p.reverse().complement(), p.complement().reverse());
    }

    #[test]
    fn truncated_pareto_pmf_sums_to_one(alpha in 1.05f64..3.0, t in 2u64..500) {
        let dist = Truncated::new(DiscretePareto { alpha, beta: 30.0 * (alpha - 1.0) }, t);
        let total: f64 = (1..=t).map(|k| dist.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total {}", total);
        // quantile stays in the support and inverts the CDF
        for &u in &[0.01, 0.4, 0.99] {
            let k = dist.quantile(u);
            prop_assert!(k >= 1 && k <= t);
            prop_assert!(dist.cdf(k) >= u - 1e-12);
        }
    }

    #[test]
    fn generated_graph_is_simple_and_degree_bounded(
        seed in 0u64..500,
        n in 10usize..80,
        alpha in 1.1f64..2.5,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = ((n as f64).sqrt() as u64).max(2);
        let dist = Truncated::new(DiscretePareto { alpha, beta: 3.0 }, t);
        let (seq, _) = trilist::graph::dist::sample_degree_sequence(&dist, n, &mut rng);
        let gen = ResidualSampler.generate(&seq, &mut rng);
        // simplicity is enforced by Graph::from_adjacency; degrees bounded
        for v in 0..n as u32 {
            prop_assert!(gen.graph.degree(v) as u32 <= seq.as_slice()[v as usize]);
        }
        prop_assert_eq!(
            gen.shortfall,
            seq.sum() - 2 * gen.graph.m() as u64
        );
    }

    #[test]
    fn erdos_gallai_realizable_iff_sampler_exact_small(seed in 0u64..200) {
        // if the sequence is graphical, shortfall may still occur (the
        // sampler is greedy), but a non-graphical sequence can never be
        // realized exactly
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        let n = rng.gen_range(4..12usize);
        let degrees: Vec<u32> = (0..n).map(|_| rng.gen_range(0..n as u32)).collect();
        let mut seq = DegreeSequence::new(degrees);
        seq.make_even();
        let gen = ResidualSampler.generate(&seq, &mut rng);
        if gen.shortfall == 0 {
            prop_assert!(seq.is_graphical(), "realized a non-graphical sequence {:?}", seq);
        }
    }

    #[test]
    fn limit_maps_preserve_measure(v in 0.0f64..1.0) {
        for map in LimitMap::ALL {
            let grid = 4_000;
            let mean: f64 = (0..grid)
                .map(|i| map.kernel(v, (i as f64 + 0.5) / grid as f64))
                .sum::<f64>() / grid as f64;
            prop_assert!((mean - v).abs() < 5e-3, "{:?}: E[K({};U)]={}", map, v, mean);
        }
    }

    #[test]
    fn relabeling_from_positions_is_bijection(degrees in proptest::collection::vec(0u32..50, 1..100)) {
        let n = degrees.len();
        let perm = round_robin(n);
        let r = Relabeling::from_positions(&degrees, &perm);
        let mut seen = vec![false; n];
        for node in 0..n as u32 {
            let l = r.label(node) as usize;
            prop_assert!(!seen[l]);
            seen[l] = true;
        }
    }
}
