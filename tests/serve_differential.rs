//! Differential suite for the service layer: a `List`/`Count` request
//! answered over the wire must return triangles and a `CostReport`
//! byte-identical to a direct in-process run against the same prepared
//! artifacts — for every fundamental method, both kernel policies, and
//! 1–4 listing workers, including runs interrupted by a budget and
//! continued through the resume token.

use rand::SeedableRng;
use trilist::core::{
    list_resilient, CostReport, KernelPolicy, Method, ParallelOpts, ResilientOpts, RunOutcome,
};
use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated, Truncation};
use trilist::graph::gen::{GraphGenerator, ResidualSampler};
use trilist::graph::Graph;
use trilist::serve::{
    prepare_graph, prepare_seed_for, Client, ListParams, PlanMode, ServeConfig, Server, StoreConfig,
};

/// A reproducible Pareto α = 1.5 graph with plenty of triangles.
fn pareto_graph(n: usize, seed: u64) -> Graph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dist = Truncated::new(DiscretePareto::paper_beta(1.5), Truncation::Root.t_n(n));
    let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
    ResidualSampler.generate(&seq, &mut rng).graph
}

/// What a direct in-process run against the server's exact prepared
/// artifacts produces: triangles mapped to original IDs plus the cost.
fn direct_run(
    g: &Graph,
    graph_name: &str,
    method: Method,
    policy: KernelPolicy,
    threads: usize,
) -> (Vec<(u32, u32, u32)>, CostReport) {
    let family = method.optimal_family();
    let seed = prepare_seed_for(
        StoreConfig::default().prepare_seed,
        graph_name,
        family.name(),
    );
    let prepared = prepare_graph(g, family, seed);
    let opts = ResilientOpts {
        parallel: ParallelOpts {
            threads,
            policy,
            ..ParallelOpts::default()
        },
        ..ResilientOpts::default()
    };
    let run = match list_resilient(&prepared.dg, method, &opts).expect("direct run") {
        RunOutcome::Complete(run) => run,
        RunOutcome::Partial(_) => panic!("unlimited budget cannot stop early"),
    };
    let triangles = run
        .triangles
        .iter()
        .map(|&(x, y, z)| {
            let mut t = [
                prepared.inverse[x as usize],
                prepared.inverse[y as usize],
                prepared.inverse[z as usize],
            ];
            t.sort_unstable();
            (t[0], t[1], t[2])
        })
        .collect();
    (triangles, run.cost)
}

#[test]
fn wire_results_match_direct_runs_for_every_method_policy_and_worker_count() {
    let g = pareto_graph(600, 0xD1FF);
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.register_graph("diff", g.n() as u32, &edges).unwrap();

    for method in Method::FUNDAMENTAL {
        let family = method.optimal_family();
        for policy in [KernelPolicy::PaperFaithful, KernelPolicy::adaptive()] {
            let (expected_tris, expected_cost) = direct_run(&g, "diff", method, policy, 1);
            assert!(expected_cost.triangles > 0, "fixture must have triangles");
            for workers in [1u16, 2, 4] {
                let params = ListParams {
                    threads: workers,
                    ..ListParams::new("diff", method.name(), family.name(), policy.name())
                };
                let run = client.list(params.clone()).unwrap();
                assert!(run.complete, "unlimited budget completes");
                assert_eq!(
                    run.cost, expected_cost,
                    "{method} {policy:?} workers={workers}: cost must be byte-identical"
                );
                assert_eq!(
                    run.triangles, expected_tris,
                    "{method} {policy:?} workers={workers}: triangles must be byte-identical"
                );
                // Count is the same execution without the triangle payload.
                let count = client.count(params).unwrap();
                assert_eq!(count.cost, expected_cost);
                assert!(count.triangles.is_empty());
                assert!(count.complete);
            }
        }
    }
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn interrupted_then_resumed_chain_is_byte_identical() {
    let g = pareto_graph(900, 0x5E5);
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .register_graph("resume", g.n() as u32, &edges)
        .unwrap();

    for method in Method::FUNDAMENTAL {
        let family = method.optimal_family();
        let (expected_tris, expected_cost) =
            direct_run(&g, "resume", method, KernelPolicy::PaperFaithful, 2);

        // A 1-byte memory ceiling is always already exceeded (cache
        // residency counts against the shared gauge), so the first
        // request stops at the first budget check and answers with a
        // resume token; the chain driver finishes the run without the
        // ceiling.
        let first = ListParams {
            threads: 2,
            memory_bytes: 1,
            ..ListParams::new("resume", method.name(), family.name(), "paper")
        };
        let partial = client.list(first).unwrap();
        assert!(!partial.complete, "{method}: 1-byte ceiling must interrupt");
        assert_eq!(partial.stop_reason, "memory budget exhausted");
        assert!(!partial.resume.is_empty());

        let rest = ListParams {
            threads: 2,
            resume: partial.resume.clone(),
            ..ListParams::new("resume", method.name(), family.name(), "paper")
        };
        let chain = {
            // drive the remainder (itself resumable) to completion
            let mut responses = vec![partial];
            let mut next = rest;
            loop {
                let res = client.list(next.clone()).unwrap();
                let done = res.complete;
                next.resume = res.resume.clone();
                responses.push(res);
                if done {
                    break;
                }
            }
            responses
        };
        assert!(chain.len() >= 2, "{method}: chain spans multiple requests");
        let mut cost = CostReport::default();
        for res in &chain {
            cost.accumulate(&res.cost);
        }
        let triangles = trilist::serve::merge_pieces(&chain).expect("consistent piece tables");
        assert_eq!(cost, expected_cost, "{method}: merged cost byte-identical");
        assert_eq!(
            triangles, expected_tris,
            "{method}: merged triangles byte-identical"
        );
    }
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn chain_driver_matches_manual_merge_and_deadlines_resume() {
    // The convenience driver on a deadline-interrupted run: whatever mix
    // of partial responses the deadline produces, the merged chain equals
    // the uninterrupted run.
    let g = pareto_graph(900, 0xCAFE);
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .register_graph("deadline", g.n() as u32, &edges)
        .unwrap();

    let method = Method::T2;
    let family = method.optimal_family();
    let (expected_tris, expected_cost) =
        direct_run(&g, "deadline", method, KernelPolicy::PaperFaithful, 2);
    let params = ListParams {
        threads: 2,
        deadline_ms: 1,
        ..ListParams::new("deadline", method.name(), family.name(), "paper")
    };
    let chain = client.list_to_completion(params).unwrap();
    assert_eq!(chain.cost, expected_cost);
    assert_eq!(chain.triangles, expected_tris);
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn unpinned_requests_are_byte_identical_to_the_plans_explicit_choices() {
    // An autotuning server (rounds = 0 → deterministic reference
    // profile): a request that leaves method/ordering/policy blank must
    // answer byte-identically to one that names the plan's choices
    // explicitly — including a resume chain interrupted by a memory
    // ceiling.
    let g = pareto_graph(600, 0xA070);
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let cfg = ServeConfig {
        store: StoreConfig {
            plan: PlanMode::Autotune { rounds: 0 },
            ..StoreConfig::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.register_graph("auto", g.n() as u32, &edges).unwrap();

    // the server explains the plan it will apply to unpinned requests
    let info = client.explain_plan("auto").unwrap();
    assert_eq!(info.evaluations, 96, "8 orderings x 4 methods x 3 policies");
    assert!(info.predicted_seconds <= info.default_seconds * 1.05);

    let explicit = ListParams {
        threads: 2,
        ..ListParams::new("auto", &info.method, &info.ordering, &info.policy)
    };
    let unpinned = ListParams {
        threads: 2,
        ..ListParams::new("auto", "", "", "")
    };
    let want = client.list(explicit.clone()).unwrap();
    let got = client.list(unpinned.clone()).unwrap();
    assert!(want.complete && got.complete);
    assert!(want.cost.triangles > 0, "fixture must have triangles");
    assert_eq!(got.cost, want.cost, "unpinned cost must be byte-identical");
    assert_eq!(got.triangles, want.triangles);
    assert_eq!(client.count(unpinned).unwrap().cost, want.cost);

    // partially-pinned: method fixed, ordering and policy from the plan
    let partial_pin = ListParams {
        threads: 2,
        ..ListParams::new("auto", &info.method, "", "")
    };
    let partly = client.list(partial_pin).unwrap();
    assert_eq!(partly.cost, want.cost);
    assert_eq!(partly.triangles, want.triangles);

    // interrupted resume chain: a 1-byte ceiling interrupts the unpinned
    // request; the merged chain equals the uninterrupted explicit run
    let first = ListParams {
        threads: 2,
        memory_bytes: 1,
        ..ListParams::new("auto", "", "", "")
    };
    let partial = client.list(first).unwrap();
    assert!(!partial.complete, "1-byte ceiling must interrupt");
    assert!(!partial.resume.is_empty());
    let mut chain = vec![partial];
    let mut next = ListParams {
        threads: 2,
        resume: chain[0].resume.clone(),
        ..ListParams::new("auto", "", "", "")
    };
    loop {
        let res = client.list(next.clone()).unwrap();
        let done = res.complete;
        next.resume = res.resume.clone();
        chain.push(res);
        if done {
            break;
        }
    }
    let mut cost = CostReport::default();
    for res in &chain {
        cost.accumulate(&res.cost);
    }
    let triangles = trilist::serve::merge_pieces(&chain).expect("consistent piece tables");
    assert_eq!(cost, want.cost, "merged unpinned chain cost byte-identical");
    assert_eq!(triangles, want.triangles);

    // the plan surfaces in stats: one cached plan, explain was counted
    let stats = client.stats().unwrap();
    let field = |name: &str| {
        stats
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("stats missing {name}"))
            .1
    };
    assert_eq!(field("plans_cached"), 1);
    assert!(field("plan_bytes") > 0);
    assert_eq!(field("requests_explain"), 1);
    assert_eq!(field("recorder_plan_pick"), 1);
    assert!(field("recorder_plan_evaluations") >= 96);
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn predict_matches_in_process_pricing() {
    let g = pareto_graph(400, 0xBEEF);
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.register_graph("p", g.n() as u32, &edges).unwrap();
    for method in Method::FUNDAMENTAL {
        let family = method.optimal_family();
        let seed = prepare_seed_for(StoreConfig::default().prepare_seed, "p", family.name());
        let prepared = prepare_graph(&g, family, seed);
        let expected = trilist::model::price_request(method, &prepared.degrees_by_label);
        let (per_node, total_ops, n) = client.predict("p", method.name(), family.name()).unwrap();
        assert_eq!(per_node.to_bits(), expected.per_node.to_bits());
        assert_eq!(total_ops.to_bits(), expected.total_ops.to_bits());
        assert_eq!(n, expected.n);
    }
    client.shutdown().unwrap();
    server.join();
}
