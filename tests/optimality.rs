//! Empirical verification of the paper's optimality theorems on simulated
//! graphs (§6): the predicted-optimal orientation wins for each method, and
//! the method comparisons (Theorems 4–5) hold.

use rand::SeedableRng;
use trilist::core::Method;
use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated, Truncation};
use trilist::graph::gen::{GraphGenerator, ResidualSampler};
use trilist::graph::Graph;
use trilist::order::{DirectedGraph, OrderFamily};

/// Average total operations of `method` under `family` over a few graphs.
fn avg_ops(graphs: &[Graph], method: Method, family: OrderFamily, seed: u64) -> f64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut total = 0.0;
    for g in graphs {
        let dg = DirectedGraph::orient(g, &family.relabeling(g, &mut rng));
        total += method.predicted_operations(&dg) as f64;
    }
    total / graphs.len() as f64
}

fn power_law_graphs(alpha: f64, n: usize, count: usize, seed: u64) -> Vec<Graph> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dist = Truncated::new(DiscretePareto::paper_beta(alpha), Truncation::Root.t_n(n));
    (0..count)
        .map(|_| {
            let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
            ResidualSampler.generate(&seq, &mut rng).graph
        })
        .collect()
}

const POSITION_FAMILIES: [OrderFamily; 5] = [
    OrderFamily::Ascending,
    OrderFamily::Descending,
    OrderFamily::RoundRobin,
    OrderFamily::ComplementaryRoundRobin,
    OrderFamily::Uniform,
];

fn best_family(graphs: &[Graph], method: Method) -> OrderFamily {
    POSITION_FAMILIES
        .into_iter()
        .min_by(|&a, &b| {
            avg_ops(graphs, method, a, 42)
                .partial_cmp(&avg_ops(graphs, method, b, 42))
                .expect("finite costs")
        })
        .expect("non-empty family list")
}

#[test]
fn corollary_1_descending_optimal_for_t1_and_e1() {
    let graphs = power_law_graphs(1.7, 6_000, 4, 1);
    assert_eq!(best_family(&graphs, Method::T1), OrderFamily::Descending);
    assert_eq!(best_family(&graphs, Method::E1), OrderFamily::Descending);
    // mirror: ascending optimal for T3 and E3
    assert_eq!(best_family(&graphs, Method::T3), OrderFamily::Ascending);
    assert_eq!(best_family(&graphs, Method::E3), OrderFamily::Ascending);
}

#[test]
fn corollary_2_rr_optimal_for_t2_crr_for_e4() {
    let graphs = power_law_graphs(1.7, 6_000, 4, 2);
    assert_eq!(best_family(&graphs, Method::T2), OrderFamily::RoundRobin);
    assert_eq!(
        best_family(&graphs, Method::E4),
        OrderFamily::ComplementaryRoundRobin
    );
    assert_eq!(
        best_family(&graphs, Method::E6),
        OrderFamily::ComplementaryRoundRobin
    );
}

#[test]
fn corollary_3_worst_is_complement_of_best() {
    let graphs = power_law_graphs(1.7, 6_000, 4, 3);
    for method in [Method::T1, Method::T2, Method::E1] {
        let costs: Vec<(OrderFamily, f64)> = POSITION_FAMILIES
            .into_iter()
            .map(|f| (f, avg_ops(&graphs, method, f, 7)))
            .collect();
        let best = costs
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        let worst = costs
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        // the complement of the best map should be the worst
        let complement = match best {
            OrderFamily::Ascending => OrderFamily::Descending,
            OrderFamily::Descending => OrderFamily::Ascending,
            OrderFamily::RoundRobin => OrderFamily::ComplementaryRoundRobin,
            OrderFamily::ComplementaryRoundRobin => OrderFamily::RoundRobin,
            other => other,
        };
        assert_eq!(worst, complement, "{method}");
    }
}

#[test]
fn theorem_4_t1_at_optimum_beats_t2_at_optimum() {
    let graphs = power_law_graphs(1.7, 6_000, 4, 4);
    let t1 = avg_ops(&graphs, Method::T1, OrderFamily::Descending, 9);
    let t2 = avg_ops(&graphs, Method::T2, OrderFamily::RoundRobin, 9);
    assert!(t1 < t2, "T1 {t1} vs T2 {t2}");
}

#[test]
fn theorem_5_e1_at_optimum_beats_e4_at_optimum() {
    let graphs = power_law_graphs(1.7, 6_000, 4, 5);
    let e1 = avg_ops(&graphs, Method::E1, OrderFamily::Descending, 9);
    let e4 = avg_ops(&graphs, Method::E4, OrderFamily::ComplementaryRoundRobin, 9);
    assert!(e1 < e4, "E1 {e1} vs E4 {e4}");
}

#[test]
fn orientation_beats_no_orientation_by_factor_three_under_uniform() {
    // §5.3: random orientation cuts the unoriented cost by ~3x for both
    // families (it stops counting each triangle three times)
    let graphs = power_law_graphs(2.5, 8_000, 4, 6);
    let mut ratio_sum = 0.0;
    for g in &graphs {
        let unoriented = trilist::core::baseline::unoriented_vertex_iterator(g, |_, _, _| {});
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let dg = DirectedGraph::orient(g, &OrderFamily::Uniform.relabeling(g, &mut rng));
        let oriented = Method::T1.run(&dg, |_, _, _| {}).lookups
            + Method::T2.run(&dg, |_, _, _| {}).lookups
            + Method::T3.run(&dg, |_, _, _| {}).lookups;
        // T1+T2+T3 together re-create all unoriented pairs; each individual
        // method costs about a third
        let t1_only = Method::T1.run(&dg, |_, _, _| {}).lookups;
        ratio_sum += unoriented.lookups as f64 / t1_only as f64;
        assert_eq!(oriented, unoriented.lookups);
    }
    let mean_ratio = ratio_sum / graphs.len() as f64;
    assert!((mean_ratio - 3.0).abs() < 0.4, "mean ratio {mean_ratio}");
}

#[test]
fn degenerate_close_to_descending_for_t1() {
    // Table 12: θ_degen edges out θ_D for T1 by a small margin (10% there);
    // on our synthetic graphs they should at least be within ~25% of each
    // other and both far below ascending.
    let graphs = power_law_graphs(1.7, 6_000, 3, 8);
    let desc = avg_ops(&graphs, Method::T1, OrderFamily::Descending, 11);
    let degen = avg_ops(&graphs, Method::T1, OrderFamily::Degenerate, 11);
    let asc = avg_ops(&graphs, Method::T1, OrderFamily::Ascending, 11);
    assert!(
        (degen - desc).abs() / desc < 0.25,
        "degen {degen} desc {desc}"
    );
    // ascending is far worse than descending for T1 (the margin grows with
    // n and with tail heaviness; at this scale expect at least ~2.5x)
    assert!(desc * 2.5 < asc, "desc {desc} asc {asc}");
}
