//! Observability differential suite: attaching a recorder must never
//! change what the runtime computes. Across every fundamental method,
//! both kernel policies, and 1/2/4 worker threads, a run with an
//! [`InMemoryRecorder`] attached is compared byte-for-byte (triangles and
//! merged `CostReport`) against the same run with no recorder. On top of
//! the equality, the recorded spans themselves are checked for structural
//! invariants: ok-spans partition the visited range exactly once, retry
//! attempts stay under `max_attempts`, and span-derived telemetry agrees
//! with the scheduler's own [`ThreadStats`].

use std::sync::Arc;
use std::time::Duration;
use trilist::core::{
    list_resilient, silence_injected_panics, ChunkSpan, Counter, FaultPlan, InMemoryRecorder,
    KernelPolicy, Method, ResilientOpts, RunOutcome,
};
use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated};
use trilist::graph::gen::{GraphGenerator, ResidualSampler};
use trilist::order::{DirectedGraph, OrderFamily};

use rand::SeedableRng;

/// A Pareto-ish test graph oriented descending (hubs first: many chunks).
fn fixture(n: usize, seed: u64) -> DirectedGraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dist = Truncated::new(
        DiscretePareto {
            alpha: 1.6,
            beta: 5.0,
        },
        40,
    );
    let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
    let g = ResidualSampler.generate(&seq, &mut rng).graph;
    let relabeling = OrderFamily::Descending.relabeling(&g, &mut rng);
    DirectedGraph::orient(&g, &relabeling)
}

fn opts(threads: usize, policy: KernelPolicy) -> ResilientOpts {
    let mut o = ResilientOpts::with_threads(threads);
    o.parallel.target_chunk_ops = 256; // plenty of chunks to record
    o.parallel.policy = policy;
    o
}

/// Asserts the ok chunk-spans partition `0..n`: sorted by chunk index,
/// their ranges are contiguous, non-overlapping, and cover everything.
fn assert_spans_partition(spans: &[ChunkSpan], n: u32, ctx: &str) {
    let mut ok: Vec<&ChunkSpan> = spans.iter().filter(|s| !s.is_setup() && s.ok).collect();
    ok.sort_by_key(|s| s.chunk);
    let mut cursor = 0u32;
    for (i, s) in ok.iter().enumerate() {
        assert_eq!(s.chunk as usize, i, "{ctx}: chunk indices not dense");
        assert_eq!(
            s.range.start, cursor,
            "{ctx}: chunk {} starts at {} not {cursor}",
            s.chunk, s.range.start
        );
        cursor = s.range.end;
    }
    assert_eq!(
        cursor, n,
        "{ctx}: spans cover 0..{cursor}, graph has 0..{n}"
    );
}

#[test]
fn recorder_never_changes_results() {
    let dg = fixture(3_000, 41);
    let n = dg.n() as u32;
    for method in Method::FUNDAMENTAL {
        for (pname, policy) in [
            ("paper", KernelPolicy::PaperFaithful),
            ("adaptive", KernelPolicy::adaptive()),
        ] {
            for threads in [1usize, 2, 4] {
                let ctx = format!("{}/{pname}/{threads}t", method.name());
                let bare = match list_resilient(&dg, method, &opts(threads, policy)).unwrap() {
                    RunOutcome::Complete(run) => run,
                    RunOutcome::Partial(_) => panic!("{ctx}: unbudgeted run must complete"),
                };
                let rec = Arc::new(InMemoryRecorder::new());
                let mut o = opts(threads, policy);
                o.recorder = Some(rec.clone());
                let observed = match list_resilient(&dg, method, &o).unwrap() {
                    RunOutcome::Complete(run) => run,
                    RunOutcome::Partial(_) => panic!("{ctx}: unbudgeted run must complete"),
                };

                // the accounting contract: recording is invisible to results
                assert_eq!(observed.triangles, bare.triangles, "{ctx}: triangles");
                assert_eq!(observed.cost, bare.cost, "{ctx}: cost report");
                assert_eq!(observed.chunks, bare.chunks, "{ctx}: chunk count");

                let spans = rec.spans();
                assert_spans_partition(&spans, n, &ctx);
                // no faults injected: every chunk ran exactly once
                let chunk_spans = spans.iter().filter(|s| !s.is_setup()).count();
                assert_eq!(chunk_spans, bare.chunks, "{ctx}: one span per chunk");
                assert!(
                    spans.iter().all(|s| s.attempt == 0),
                    "{ctx}: no retries expected"
                );
                // Σ span ops == the merged cost's operations
                let span_ops: u64 = spans.iter().map(|s| s.ops).sum();
                assert_eq!(span_ops, observed.cost.operations(), "{ctx}: span ops");

                // span-derived telemetry agrees with the scheduler's own
                let span_busy: u64 = spans
                    .iter()
                    .filter(|s| !s.is_setup())
                    .map(|s| s.dur_ns)
                    .sum();
                let stats_busy: u64 = observed
                    .threads
                    .iter()
                    .map(|t| t.busy.as_nanos() as u64)
                    .sum();
                assert_eq!(span_busy, stats_busy, "{ctx}: busy time");
                let eff_spans = rec.load_balance_efficiency(threads);
                let eff_stats = observed.load_balance_efficiency();
                assert!(
                    (eff_spans - eff_stats).abs() < 1e-4,
                    "{ctx}: efficiency {eff_spans} vs {eff_stats}"
                );
                let stats_steals: u64 = observed.threads.iter().map(|t| t.steals).sum();
                assert_eq!(rec.counter(Counter::Steals), stats_steals, "{ctx}: steals");
                // T-methods audit the hash oracle: hits are triangles
                if matches!(method, Method::T1 | Method::T2) {
                    assert_eq!(
                        rec.counter(Counter::OracleHits),
                        observed.cost.triangles,
                        "{ctx}: oracle hits"
                    );
                    assert_eq!(
                        rec.counter(Counter::OracleHits) + rec.counter(Counter::OracleMisses),
                        observed.cost.lookups,
                        "{ctx}: oracle hit+miss = lookups"
                    );
                }
            }
        }
    }
}

#[test]
fn recorder_is_invisible_under_fault_injection() {
    silence_injected_panics();
    let dg = fixture(2_000, 77);
    let n = dg.n() as u32;
    for method in Method::FUNDAMENTAL {
        let ctx = format!("{}/faults", method.name());
        let mut bare_opts = opts(2, KernelPolicy::PaperFaithful);
        bare_opts.fault_plan = Some(FaultPlan::panic_at(9, 300, 2));
        bare_opts.max_attempts = 4;
        let bare = match list_resilient(&dg, method, &bare_opts).unwrap() {
            RunOutcome::Complete(run) => run,
            RunOutcome::Partial(_) => panic!("{ctx}: recoverable faults must complete"),
        };
        let rec = Arc::new(InMemoryRecorder::new());
        let mut o = bare_opts.clone();
        o.recorder = Some(rec.clone());
        let observed = match list_resilient(&dg, method, &o).unwrap() {
            RunOutcome::Complete(run) => run,
            RunOutcome::Partial(_) => panic!("{ctx}: recoverable faults must complete"),
        };
        assert_eq!(observed.triangles, bare.triangles, "{ctx}: triangles");
        assert_eq!(observed.cost, bare.cost, "{ctx}: cost report");

        let spans = rec.spans();
        assert_spans_partition(&spans, n, &ctx);
        // the fault plan is deterministic per (chunk, attempt): both runs
        // saw the same faults, and every faulted attempt left a span
        assert_eq!(
            spans.iter().filter(|s| !s.ok).count(),
            observed.faults.len(),
            "{ctx}: one failed span per quarantined fault"
        );
        assert!(
            spans.iter().all(|s| s.attempt < o.max_attempts),
            "{ctx}: attempts bounded by max_attempts"
        );
        assert_eq!(
            rec.counter(Counter::ChunkRetries),
            spans.iter().filter(|s| s.attempt > 0).count() as u64,
            "{ctx}: retry counter matches retry spans"
        );
        // failed attempts contribute no ops
        assert!(
            spans.iter().filter(|s| !s.ok).all(|s| s.ops == 0),
            "{ctx}: faulted spans carry no ops"
        );
        let span_ops: u64 = spans.iter().map(|s| s.ops).sum();
        assert_eq!(span_ops, observed.cost.operations(), "{ctx}: span ops");
    }
}

#[test]
fn degraded_final_attempts_report_paper_policy() {
    silence_injected_panics();
    let dg = fixture(1_500, 5);
    // faulted chunks panic on attempts 0 and 1, so they only succeed on
    // the degraded final attempt (max_attempts = 3)
    let rec = Arc::new(InMemoryRecorder::new());
    let mut o = opts(2, KernelPolicy::adaptive());
    o.fault_plan = Some(FaultPlan::panic_at(3, 400, 2));
    o.max_attempts = 3;
    o.recorder = Some(rec.clone());
    let run = match list_resilient(&dg, Method::E1, &o).unwrap() {
        RunOutcome::Complete(run) => run,
        RunOutcome::Partial(_) => panic!("degraded final attempts must complete the run"),
    };
    assert!(!run.faults.is_empty(), "the plan must actually fault");
    let spans = rec.spans();
    let degraded: Vec<&ChunkSpan> = spans
        .iter()
        .filter(|s| !s.is_setup() && s.attempt + 1 == o.max_attempts)
        .collect();
    assert!(
        !degraded.is_empty(),
        "some chunk must reach the last attempt"
    );
    assert!(
        degraded.iter().all(|s| s.policy == "paper"),
        "degraded attempts run (and report) the paper kernel"
    );
    assert_eq!(
        rec.counter(Counter::Degradations),
        degraded.len() as u64,
        "degradation counter matches degraded spans"
    );
    // non-degraded successful attempts report the configured policy
    assert!(
        spans
            .iter()
            .filter(|s| !s.is_setup() && s.attempt + 1 < o.max_attempts)
            .all(|s| s.policy == "adaptive"),
        "regular attempts report the configured policy"
    );
}

#[test]
fn budget_interruption_spans_stay_within_completed_chunks() {
    let dg = fixture(4_000, 23);
    let rec = Arc::new(InMemoryRecorder::new());
    let mut o = opts(2, KernelPolicy::PaperFaithful);
    o.budget = trilist::core::RunBudget::unlimited().with_deadline(Duration::from_micros(300));
    o.recorder = Some(rec.clone());
    match list_resilient(&dg, Method::E4, &o).unwrap() {
        RunOutcome::Complete(_) => {} // machine outran the deadline: nothing to check
        RunOutcome::Partial(p) => {
            let spans = rec.spans();
            let ok_spans: Vec<&ChunkSpan> =
                spans.iter().filter(|s| !s.is_setup() && s.ok).collect();
            // every ok span corresponds to a completed piece, exactly once
            assert_eq!(
                ok_spans.len(),
                p.completed.len(),
                "span per completed chunk"
            );
            for s in &ok_spans {
                assert!(
                    p.completed
                        .iter()
                        .any(|c| c.chunk == s.chunk && c.range == s.range),
                    "span chunk {} not among completed pieces",
                    s.chunk
                );
            }
            assert!(rec.counter(Counter::BudgetChecks) > 0, "budget was checked");
        }
    }
}
