//! Wire-level suite for the dynamic-graph frames: `AddEdges` /
//! `RemoveEdges` receipts must track the store's epoch ledger exactly,
//! `ListNewTriangles` must return precisely the scratch set difference
//! `T(b) \ T(a)` in original node IDs, and a resume chain must survive a
//! compaction swapping the serving segment mid-chain — byte-identical to
//! an uninterrupted run of the same window.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};
use trilist::core::{
    list_new_triangles_src, list_triangles, DeltaOpts, GraphSource, MemoryGauge, Method,
};
use trilist::graph::Graph;
use trilist::order::OrderFamily;
use trilist::serve::{
    Client, ClientError, DeltaParams, ErrorCode, GraphStore, ServeConfig, Server, StoreConfig,
};

/// A reproducible G(n, p) edge list.
fn gnp_edges(n: u32, p: f64, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    edges
}

/// The triangle set of an edge set, via a scratch in-process run (the
/// listed set is method- and ordering-independent).
fn scratch_triangles(n: u32, edges: &BTreeSet<(u32, u32)>) -> BTreeSet<(u32, u32, u32)> {
    let g = Graph::from_edges(n as usize, &edges.iter().copied().collect::<Vec<_>>()).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5C4A);
    list_triangles(&g, Method::E1, OrderFamily::Descending, &mut rng)
        .triangles
        .into_iter()
        .collect()
}

fn stat(fields: &[(String, u64)], name: &str) -> u64 {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .unwrap_or_else(|| panic!("missing stats field {name}"))
        .1
}

#[test]
fn edit_receipts_track_the_epoch_ledger_and_reject_invalid_batches() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let edges = gnp_edges(30, 0.2, 0xED17);
    let m0 = edges.len() as u64;
    client.register_graph("g", 30, &edges).unwrap();

    let absent: Vec<(u32, u32)> = {
        let present: BTreeSet<(u32, u32)> = edges.iter().copied().collect();
        (0..30u32)
            .flat_map(|u| ((u + 1)..30).map(move |v| (u, v)))
            .filter(|e| !present.contains(e))
            .take(4)
            .collect()
    };
    let info = client.add_edges("g", &absent[..3]).unwrap();
    assert_eq!(info.epoch, 1);
    assert_eq!(info.applied, 3);
    assert_eq!(info.m, m0 + 3);
    assert_eq!(info.delta_edges, 3);
    assert!(info.delta_ratio > 0.0);

    let info = client.remove_edges("g", &absent[..1]).unwrap();
    assert_eq!(info.epoch, 2);
    assert_eq!(info.applied, 1);
    assert_eq!(info.m, m0 + 2);

    // Whole-batch rejection: an already-present edge poisons the batch,
    // no epoch is created, and the error names the edge.
    let err = client.add_edges("g", &[absent[1], absent[2]]).unwrap_err();
    let ClientError::Server(frame) = err else {
        panic!("expected a typed server error");
    };
    assert_eq!(frame.code, ErrorCode::BadRequest);
    assert!(
        frame.message.contains("already present"),
        "{}",
        frame.message
    );
    assert_eq!(client.add_edges("g", &absent[..1]).unwrap().epoch, 3);

    // Removing a never-present edge and editing an unknown graph are
    // typed errors too.
    let err = client.remove_edges("g", &[absent[3]]).unwrap_err();
    let ClientError::Server(frame) = err else {
        panic!("expected a typed server error");
    };
    assert_eq!(frame.code, ErrorCode::BadRequest);
    let err = client.add_edges("nope", &absent[..1]).unwrap_err();
    let ClientError::Server(frame) = err else {
        panic!("expected a typed server error");
    };
    assert_eq!(frame.code, ErrorCode::UnknownGraph);

    let fields = client.stats().unwrap();
    assert_eq!(stat(&fields, "requests_add_edges"), 4);
    assert_eq!(stat(&fields, "requests_remove_edges"), 2);
    assert_eq!(stat(&fields, "delta_runs"), 3);

    client.shutdown().unwrap();
    server.join();
}

#[test]
fn list_new_triangles_over_the_wire_is_exactly_the_scratch_set_difference() {
    let n = 60u32;
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let base = gnp_edges(n, 0.12, 0xD1F2);
    client.register_graph("g", n, &base).unwrap();

    let mut mirror: BTreeSet<(u32, u32)> = base.iter().copied().collect();
    let before = mirror.clone();

    // Insert a dozen absent edges, remove a few originals, then reinsert
    // one removed edge — so the window holds net-new, net-removed, and
    // folded-away toggles at once.
    let adds: Vec<(u32, u32)> = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .filter(|e| !mirror.contains(e))
        .take(12)
        .collect();
    client.add_edges("g", &adds).unwrap();
    mirror.extend(adds.iter().copied());
    let victims: Vec<(u32, u32)> = base[..4].to_vec();
    client.remove_edges("g", &victims).unwrap();
    for e in &victims {
        mirror.remove(e);
    }
    client.add_edges("g", &victims[..1]).unwrap();
    mirror.insert(victims[0]);

    let res = client
        .list_new(DeltaParams::new("g", 0, DeltaParams::LATEST))
        .unwrap();
    assert_eq!(res.from_epoch, 0);
    assert_eq!(res.to_epoch, 3, "LATEST resolves, never echoes");
    assert!(res.result.complete);
    // Net window bookkeeping: 12 new edges, 3 removed (one victim was
    // reinserted, folding away).
    assert_eq!(res.new_edges, 12);
    assert_eq!(res.removed_edges, 3);

    let t_before = scratch_triangles(n, &before);
    let t_after = scratch_triangles(n, &mirror);
    let expected: BTreeSet<(u32, u32, u32)> = t_after.difference(&t_before).copied().collect();
    assert!(!expected.is_empty(), "fixture must create triangles");
    let got: BTreeSet<(u32, u32, u32)> = res.result.triangles.iter().copied().collect();
    assert_eq!(got.len(), res.result.triangles.len(), "no duplicates");
    assert_eq!(got, expected, "new triangles must be exactly T(b) \\ T(a)");
    assert_eq!(res.result.cost.triangles, expected.len() as u64);

    // An inner window starting past the edits is empty but well-formed.
    let res = client.list_new(DeltaParams::new("g", 3, 3)).unwrap();
    assert!(res.result.complete && res.result.triangles.is_empty());
    assert_eq!((res.new_edges, res.removed_edges), (0, 0));

    // A reversed window is a typed error, not a panic.
    let err = client.list_new(DeltaParams::new("g", 3, 1)).unwrap_err();
    let ClientError::Server(frame) = err else {
        panic!("expected a typed server error");
    };
    assert_eq!(frame.code, ErrorCode::BadRequest);

    client.shutdown().unwrap();
    server.join();
}

#[test]
fn resume_chain_across_a_forced_compaction_is_byte_identical() {
    // A vanishing compaction threshold: every edit batch nudges the
    // store's off-lane compactor, so the chain below is guaranteed to
    // have its serving segment swapped underneath it.
    let cfg = ServeConfig {
        store: StoreConfig {
            compact_ratio: 0.0001,
            ..StoreConfig::default()
        },
        ..ServeConfig::default()
    };
    let n = 70u32;
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let base = gnp_edges(n, 0.12, 0xC0DE);
    client.register_graph("g", n, &base).unwrap();

    let present: BTreeSet<(u32, u32)> = base.iter().copied().collect();
    let adds: Vec<(u32, u32)> = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .filter(|e| !present.contains(e))
        .take(16)
        .collect();
    client.add_edges("g", &adds[..14]).unwrap();
    client.remove_edges("g", &base[..3]).unwrap();
    let window_end = 2u64;

    // Reference: the whole window in one unbudgeted request.
    let reference = client
        .list_new(DeltaParams::new("g", 0, window_end))
        .unwrap();
    assert!(reference.result.complete);
    assert!(!reference.result.triangles.is_empty());

    // Interrupt: a 1-byte memory ceiling trips before the first chunk,
    // yielding a deterministic zero-progress partial whose resume token
    // still covers the entire window.
    let interrupted = client
        .list_new(DeltaParams {
            memory_bytes: 1,
            ..DeltaParams::new("g", 0, window_end)
        })
        .unwrap();
    assert!(!interrupted.result.complete);
    assert_eq!(interrupted.result.stop_reason, "memory budget exhausted");
    assert!(interrupted.result.chunks.is_empty());
    assert!(!interrupted.result.resume.is_empty());

    // Mid-chain mutation: an edit past the window end crosses the
    // vanishing ratio and nudges the compactor. Wait until a compaction
    // actually lands, so the continuation below provably reads from a
    // post-compaction segment.
    let compactions_before = stat(&client.stats().unwrap(), "compactions");
    let receipt = client.add_edges("g", &adds[14..]).unwrap();
    assert_eq!(receipt.epoch, 3);
    assert!(
        receipt.compacting,
        "the edit must nudge the compaction lane"
    );
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if stat(&client.stats().unwrap(), "compactions") > compactions_before {
            break;
        }
        assert!(Instant::now() < deadline, "compaction never landed");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Continue the chain against the *explicit* window end. Epochs never
    // renumber and the relabel seed is epoch-mixed, so the continuation
    // must complete the window byte-identically — cost and triangles —
    // even though the segment serving epoch 2 changed underneath it.
    let resumed = client
        .list_new(DeltaParams {
            resume: interrupted.result.resume.clone(),
            ..DeltaParams::new("g", 0, window_end)
        })
        .unwrap();
    assert!(resumed.result.complete);
    assert_eq!(resumed.result.cost, reference.result.cost);
    assert_eq!(resumed.result.triangles, reference.result.triangles);
    assert_eq!(resumed.result.chunks, reference.result.chunks);
    assert_eq!(resumed.to_epoch, window_end);

    // And the edits after the window end stay invisible to it: the
    // window bookkeeping is unchanged.
    assert_eq!(resumed.new_edges, reference.new_edges);
    assert_eq!(resumed.removed_edges, reference.removed_edges);

    client.shutdown().unwrap();
    server.join();
}

/// The EXPERIMENTS.md "delta ratio vs compaction cost" table: run with
///
/// ```text
/// cargo test --release --test serve_dynamic delta_ratio_vs -- --ignored --nocapture
/// ```
///
/// Operation counts are deterministic; only the compaction wall-clock
/// column is machine-dependent.
#[test]
#[ignore = "table generator for EXPERIMENTS.md, not a correctness gate"]
fn delta_ratio_vs_compaction_cost_table() {
    let n = 2000u32;
    let base = gnp_edges(n, 0.008, 0x7AB1E);
    let m0 = base.len();
    println!("| delta ratio | edits | net-new edges | delta ops | full-recompute ops | ops saved | compact wall (µs) |");
    println!("|---|---|---|---|---|---|---|");
    for ratio in [0.01f64, 0.05, 0.10, 0.25, 0.50] {
        // Autotune mode, so the compaction column includes the plan
        // re-derivation a production store pays.
        let cfg = StoreConfig {
            plan: trilist::serve::PlanMode::Autotune { rounds: 0 },
            ..StoreConfig::default()
        };
        let store = GraphStore::new(cfg, MemoryGauge::new());
        store.register("g", n, &base).unwrap();
        let mut present: BTreeSet<(u32, u32)> = base.iter().copied().collect();
        let edits = ((m0 as f64) * ratio).ceil() as usize;

        // Half inserts (uniform random absent pairs, the same degree
        // profile as the base), half removes, applied as two batches —
        // the shape an editing client produces.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xED17 ^ (ratio * 100.0) as u64);
        let adds: Vec<(u32, u32)> = {
            let mut picked = BTreeSet::new();
            while picked.len() < edits / 2 + 1 {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v && !present.contains(&(u.min(v), u.max(v))) {
                    picked.insert((u.min(v), u.max(v)));
                }
            }
            picked.into_iter().collect()
        };
        store.add_edges("g", &adds).unwrap();
        present.extend(adds.iter().copied());
        let removes: Vec<(u32, u32)> = base.iter().copied().take(edits / 2).collect();
        if !removes.is_empty() {
            store.remove_edges("g", &removes).unwrap();
            for e in &removes {
                present.remove(e);
            }
        }
        let to = store.latest_epoch("g").unwrap();

        let (net_new, _) = store.delta_edges("g", 0, to).unwrap();
        let (prepared, _, _) = store
            .prepare_at("g", OrderFamily::Descending, Some(to))
            .unwrap();
        let mut forward = vec![0u32; prepared.inverse.len()];
        for (label, &orig) in prepared.inverse.iter().enumerate() {
            forward[orig as usize] = label as u32;
        }
        let mut label_edges: Vec<(u32, u32)> = net_new
            .iter()
            .map(|&(u, v)| {
                let (a, b) = (forward[u as usize], forward[v as usize]);
                (a.min(b), a.max(b))
            })
            .collect();
        label_edges.sort_unstable();
        let outcome = list_new_triangles_src(
            GraphSource::Plain(&prepared.dg),
            &prepared.kernels,
            &label_edges,
            &DeltaOpts::default(),
        );
        let delta_ops = outcome.cost().operations();

        let after =
            Graph::from_edges(n as usize, &present.iter().copied().collect::<Vec<_>>()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x7AB1E);
        let full_ops = list_triangles(&after, Method::E1, OrderFamily::Descending, &mut rng)
            .cost
            .operations();

        let t0 = Instant::now();
        let report = store.compact_now("g").unwrap();
        let compact_us = t0.elapsed().as_micros();
        assert!(report.compacted);

        println!(
            "| {ratio:.2} | {} | {} | {delta_ops} | {full_ops} | {:.1}× | {compact_us} |",
            adds.len() + removes.len(),
            label_edges.len(),
            full_ops as f64 / delta_ops.max(1) as f64,
        );
    }
}

#[test]
fn latest_window_chain_stays_pinned_while_edits_land() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let n = 60u32;
    let base = gnp_edges(n, 0.12, 0xBEEF);
    client.register_graph("g", n, &base).unwrap();

    let present: BTreeSet<(u32, u32)> = base.iter().copied().collect();
    let adds: Vec<(u32, u32)> = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .filter(|e| !present.contains(e))
        .take(12)
        .collect();
    client.add_edges("g", &adds[..10]).unwrap();

    // Reference for the (0, 1) window.
    let reference = client.list_new(DeltaParams::new("g", 0, 1)).unwrap();
    assert!(reference.result.complete);

    // The chain driver resolves LATEST on the first response and pins it;
    // an edit landing mid-chain must not widen the window.
    let first = client
        .list_new(DeltaParams {
            memory_bytes: 1,
            ..DeltaParams::new("g", 0, DeltaParams::LATEST)
        })
        .unwrap();
    assert!(!first.result.complete);
    assert_eq!(first.to_epoch, 1, "LATEST resolved at first response");
    client.add_edges("g", &adds[10..]).unwrap();

    let resumed = client
        .list_new(DeltaParams {
            resume: first.result.resume.clone(),
            ..DeltaParams::new("g", 0, first.to_epoch)
        })
        .unwrap();
    assert!(resumed.result.complete);
    assert_eq!(resumed.result.cost, reference.result.cost);
    assert_eq!(resumed.result.triangles, reference.result.triangles);

    client.shutdown().unwrap();
    server.join();
}
