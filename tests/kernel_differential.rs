//! Differential suite for the kernel-selection layer: under every
//! `KernelPolicy`, every one of the 18 methods, under every orientation
//! family, must emit the identical triangle multiset and identical
//! paper-cost `CostReport` fields (`triangles`, `lookups`, `local`,
//! `remote`, `hash_inserts`) as the paper-faithful run. Only
//! `pointer_advances` — an implementation-level metric — and wall-clock
//! may differ. The adaptive configs swept here force every dispatch path:
//! bitmap-everything, gallop-everything, branchless-merge-everything, and
//! the shipped defaults; the bitset configs likewise force all-blocks,
//! stamp-routing, and gates-closed fallback dispatch.

use rand::{Rng, SeedableRng};
use trilist::core::{
    count_triangles_with, list_triangles_with, AdaptiveConfig, BitsetConfig, CostReport,
    KernelPolicy, Method,
};
use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated};
use trilist::graph::gen::{GraphGenerator, ResidualSampler};
use trilist::graph::Graph;
use trilist::order::OrderFamily;

/// Adaptive configurations that force each kernel-dispatch path.
fn adaptive_configs() -> [AdaptiveConfig; 4] {
    [
        // every node a hub: every intersection and oracle probe hits bitmaps
        AdaptiveConfig {
            gallop_crossover: 1,
            hub_degree_threshold: 0,
            max_hubs: usize::MAX,
        },
        // no hubs, crossover 1: everything gallops
        AdaptiveConfig {
            gallop_crossover: 1,
            hub_degree_threshold: u32::MAX,
            max_hubs: 0,
        },
        // no hubs, unreachable crossover: everything branchless-merges
        AdaptiveConfig {
            gallop_crossover: u32::MAX,
            hub_degree_threshold: u32::MAX,
            max_hubs: 0,
        },
        AdaptiveConfig::default(),
    ]
}

/// Bitset configurations that force each of that policy's dispatch paths:
/// all-blocks, stamp-plus-blocks, and gates-closed (pure fallback), plus
/// the shipped defaults.
fn bitset_configs() -> [BitsetConfig; 4] {
    [
        BitsetConfig {
            min_short: 1,
            min_density: 0,
            stamp_crossover: u32::MAX,
            fallback: AdaptiveConfig::default(),
        },
        BitsetConfig {
            min_short: 1,
            min_density: 0,
            stamp_crossover: 1,
            fallback: AdaptiveConfig::default(),
        },
        BitsetConfig {
            min_short: u32::MAX,
            min_density: u32::MAX,
            stamp_crossover: u32::MAX,
            fallback: AdaptiveConfig::default(),
        },
        BitsetConfig::default(),
    ]
}

/// Every non-paper policy the differential sweeps.
fn challenger_policies() -> Vec<KernelPolicy> {
    adaptive_configs()
        .into_iter()
        .map(KernelPolicy::Adaptive)
        .chain(bitset_configs().into_iter().map(KernelPolicy::Bitset))
        .collect()
}

fn paper_cost_fields(c: &CostReport) -> (u64, u64, u64, u64, u64) {
    (c.triangles, c.lookups, c.local, c.remote, c.hash_inserts)
}

fn assert_policies_agree(g: &Graph, seed: u64) {
    for family in OrderFamily::ALL {
        for method in Method::ALL {
            // same seed → same relabeling → byte-comparable reports
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut paper =
                list_triangles_with(g, method, family, KernelPolicy::PaperFaithful, &mut rng);
            paper.triangles.sort_unstable();
            for policy in challenger_policies() {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let mut challenger = list_triangles_with(g, method, family, policy, &mut rng);
                challenger.triangles.sort_unstable();
                assert_eq!(
                    challenger.triangles,
                    paper.triangles,
                    "{method} under {} with {policy:?}: triangle multiset diverged",
                    family.name()
                );
                assert_eq!(
                    paper_cost_fields(&challenger.cost),
                    paper_cost_fields(&paper.cost),
                    "{method} under {} with {policy:?}: paper-cost fields diverged",
                    family.name()
                );
            }
        }
    }
}

fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges).unwrap()
}

fn pareto(n: usize, alpha: f64, seed: u64) -> Graph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let t = (n as f64).sqrt() as u64;
    let dist = Truncated::new(DiscretePareto { alpha, beta: 3.0 }, t.max(2));
    let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
    ResidualSampler.generate(&seq, &mut rng).graph
}

#[test]
fn policies_agree_on_gnp_graphs() {
    for trial in 0..3u64 {
        let g = gnp(30, 0.2 + 0.1 * trial as f64, 40 + trial);
        assert_policies_agree(&g, 500 + trial);
    }
}

#[test]
fn policies_agree_on_pareto_tail() {
    // α = 1.5 is the paper's heavy-tail regime and the hub-bitmap sweet
    // spot: high-degree hubs exist at every size
    let g = pareto(150, 1.5, 9);
    assert_policies_agree(&g, 700);
}

#[test]
fn policies_agree_on_structured_graphs() {
    // complete graph: every intersection non-trivial
    let mut edges = Vec::new();
    for u in 0..8u32 {
        for v in (u + 1)..8 {
            edges.push((u, v));
        }
    }
    assert_policies_agree(&Graph::from_edges(8, &edges).unwrap(), 1);
    // triangle-free cycle and the empty graph: zero-match edge cases
    let c7: Vec<_> = (0..7u32).map(|i| (i, (i + 1) % 7)).collect();
    assert_policies_agree(&Graph::from_edges(7, &c7).unwrap(), 2);
    assert_policies_agree(&Graph::from_edges(5, &[]).unwrap(), 3);
}

#[test]
fn counting_fast_path_reports_identical_cost_to_listing() {
    // the no-materialization SEI path must produce a field-for-field
    // identical CostReport (pointer_advances included — same kernel, same
    // policy, just no sink dispatch)
    let g = pareto(120, 1.5, 11);
    for family in [OrderFamily::Descending, OrderFamily::Uniform] {
        for method in Method::ALL {
            for policy in [
                KernelPolicy::PaperFaithful,
                KernelPolicy::adaptive(),
                KernelPolicy::bitset(),
            ] {
                let mut rng = rand::rngs::StdRng::seed_from_u64(31);
                let listed = list_triangles_with(&g, method, family, policy, &mut rng);
                let mut rng = rand::rngs::StdRng::seed_from_u64(31);
                let (count, cost) = count_triangles_with(&g, method, family, policy, &mut rng);
                assert_eq!(count, listed.triangles.len() as u64, "{method}");
                assert_eq!(
                    cost,
                    listed.cost,
                    "{method} under {} {}: counting path cost diverged",
                    family.name(),
                    policy.name()
                );
            }
        }
    }
}
