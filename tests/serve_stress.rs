//! Concurrency stress for `trilist-serve`: eight client threads hammer a
//! two-worker server configured with a tight admission queue and a
//! two-entry prepared-graph cache while the request mix cycles three
//! permutation families (so the LRU must evict) and sprinkles in
//! 1-byte memory ceilings (so partial responses and resume tokens flow
//! under contention).
//!
//! The test then reconciles *every* server counter against client-side
//! tallies: the run finishing at all proves no deadlock; the counters
//! matching proves no request was dropped, double-counted, or answered
//! with an untyped error; the resting gauge matching the cache bytes
//! proves every in-flight budget settled.

use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated, Truncation};
use trilist::graph::gen::{GraphGenerator, ResidualSampler};
use trilist::graph::Graph;
use trilist::serve::{
    AdmissionConfig, Client, ClientError, ErrorCode, ListParams, ServeConfig, Server, StoreConfig,
};

const THREADS: usize = 8;
const ITERS: u64 = 12;

fn pareto_graph(n: usize, seed: u64) -> Graph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dist = Truncated::new(DiscretePareto::paper_beta(1.5), Truncation::Root.t_n(n));
    let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
    ResidualSampler.generate(&seq, &mut rng).graph
}

/// `(kind, method, family, policy, 1-byte ceiling)` cycled by iteration.
/// Three distinct families against a 2-entry cache force LRU evictions.
const MIX: [(&str, &str, &str, &str, bool); 6] = [
    ("list", "T1", "desc", "paper", false),
    ("count", "T2", "rr", "paper", false),
    ("list", "E4", "crr", "adaptive", false),
    ("count", "T1", "desc", "adaptive", false),
    ("list", "T2", "rr", "paper", true),
    ("stats", "", "", "", false),
];

#[derive(Default)]
struct Tally {
    sent_list: AtomicU64,
    sent_count: AtomicU64,
    sent_stats: AtomicU64,
    ok_runs: AtomicU64,
    partials: AtomicU64,
    busy: AtomicU64,
    other_errors: AtomicU64,
}

#[test]
fn stress_counters_reconcile_under_contention() {
    let g = pareto_graph(400, 0x57E5);
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let cfg = ServeConfig {
        workers: 2,
        admission: AdmissionConfig {
            max_inflight: 2,
            max_queue: 2,
            max_predicted_ops: None,
        },
        store: StoreConfig {
            max_entries: 2,
            ..StoreConfig::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let mut setup = Client::connect(server.addr()).unwrap();
    setup
        .register_graph("stress", g.n() as u32, &edges)
        .unwrap();

    let tally = Tally::default();
    // completed runs of the same (method, policy) must agree on the count
    let agreement: Mutex<HashMap<(String, String), u64>> = Mutex::new(HashMap::new());

    // Warmup without contention: every family prepared once, so the
    // 2-entry cache is guaranteed to evict regardless of what the
    // contended phase manages to get admitted.
    for (method, family) in [("T1", "desc"), ("T2", "rr"), ("E4", "crr")] {
        let run = setup
            .count(ListParams::new("stress", method, family, "paper"))
            .unwrap();
        assert!(run.complete);
        tally.sent_count.fetch_add(1, Ordering::Relaxed);
        tally.ok_runs.fetch_add(1, Ordering::Relaxed);
        agreement.lock().unwrap().insert(
            (method.to_string(), "paper".to_string()),
            run.cost.triangles,
        );
    }

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (tally, agreement, addr) = (&tally, &agreement, server.addr());
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..ITERS {
                    let (kind, method, family, policy, tiny) =
                        MIX[((t as u64 + i) % MIX.len() as u64) as usize];
                    if kind == "stats" {
                        tally.sent_stats.fetch_add(1, Ordering::Relaxed);
                        client.stats().unwrap();
                        continue;
                    }
                    let params = ListParams {
                        memory_bytes: if tiny { 1 } else { 0 },
                        ..ListParams::new("stress", method, family, policy)
                    };
                    let result = if kind == "list" {
                        tally.sent_list.fetch_add(1, Ordering::Relaxed);
                        client.list(params)
                    } else {
                        tally.sent_count.fetch_add(1, Ordering::Relaxed);
                        client.count(params)
                    };
                    match result {
                        Ok(run) => {
                            tally.ok_runs.fetch_add(1, Ordering::Relaxed);
                            if run.complete {
                                let mut seen = agreement.lock().unwrap();
                                let key = (method.to_string(), policy.to_string());
                                let prior = *seen.entry(key.clone()).or_insert(run.cost.triangles);
                                assert_eq!(
                                    prior, run.cost.triangles,
                                    "{key:?}: completed runs disagree on triangle count"
                                );
                            } else {
                                tally.partials.fetch_add(1, Ordering::Relaxed);
                                assert_eq!(run.stop_reason, "memory budget exhausted");
                                assert!(!run.resume.is_empty());
                            }
                        }
                        Err(ClientError::Server(frame)) => {
                            assert_eq!(
                                frame.code,
                                ErrorCode::RejectedBusy,
                                "only admission shedding may fail a well-formed request: {frame:?}"
                            );
                            tally.busy.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("thread {t} iter {i}: {e}");
                            tally.other_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    // One uncontended 1-byte-ceiling request so at least one partial is
    // guaranteed even if every contended one was shed by admission.
    let partial = setup
        .list(ListParams {
            memory_bytes: 1,
            ..ListParams::new("stress", "T1", "desc", "paper")
        })
        .unwrap();
    assert!(!partial.complete);
    tally.sent_list.fetch_add(1, Ordering::Relaxed);
    tally.ok_runs.fetch_add(1, Ordering::Relaxed);
    tally.partials.fetch_add(1, Ordering::Relaxed);

    let stats: HashMap<String, u64> = setup.stats().unwrap().into_iter().collect();
    let field = |name: &str| -> u64 {
        *stats
            .get(name)
            .unwrap_or_else(|| panic!("stats field {name} missing"))
    };

    assert_eq!(tally.other_errors.load(Ordering::Relaxed), 0);
    assert!(tally.partials.load(Ordering::Relaxed) >= 1);

    let sent_list = tally.sent_list.load(Ordering::Relaxed);
    let sent_count = tally.sent_count.load(Ordering::Relaxed);
    let sent_stats = tally.sent_stats.load(Ordering::Relaxed) + 1; // + this one
    let busy = tally.busy.load(Ordering::Relaxed);
    let ok_runs = tally.ok_runs.load(Ordering::Relaxed);

    // request accounting: nothing dropped, nothing double-counted
    assert_eq!(field("requests_register"), 1);
    assert_eq!(field("requests_list"), sent_list);
    assert_eq!(field("requests_count"), sent_count);
    assert_eq!(field("requests_stats"), sent_stats);
    assert_eq!(field("requests_shutdown"), 0);
    assert_eq!(
        field("requests_total"),
        1 + sent_list + sent_count + sent_stats
    );

    // every error frame the server counted is one the clients saw (and
    // every one of those was a typed busy rejection)
    assert_eq!(field("responses_error"), busy);
    assert_eq!(field("admission_rejected_busy"), busy);
    assert_eq!(field("admission_rejected_cost"), 0);

    // every admitted permit produced exactly one ok run, and all settled
    assert_eq!(field("admission_admitted"), ok_runs);
    assert_eq!(field("admission_inflight"), 0);

    // the 2-entry LRU cycled three families: it must have evicted
    assert!(field("cache_evictions") >= 1, "LRU never evicted");
    assert!(field("cache_entries") <= 2);
    assert_eq!(field("graphs_registered"), 1);

    // gauge conservation: with nothing in flight, the only memory still
    // charged against the global ceiling is the cache residency
    assert_eq!(field("gauge_bytes"), field("cache_bytes"));

    setup.shutdown().unwrap();
    server.join();
}
