//! Property-based invariants for the tailored-ordering layer (proptest):
//! every `OrderingKind` relabels bijectively, the degeneracy peel respects
//! core numbers, and relabel → list → unrelabel is the identity on the
//! triangle set for every fundamental method.

use proptest::prelude::*;
use rand::SeedableRng;
use trilist::core::{baseline, Method};
use trilist::graph::Graph;
use trilist::order::{core_numbers, DirectedGraph, OrderingKind};

/// Strategy: a random simple graph as an edge mask over `n ≤ 16` nodes.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..16).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), max_edges).prop_map(move |mask| {
            let mut edges = Vec::new();
            let mut k = 0;
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if mask[k] {
                        edges.push((u, v));
                    }
                    k += 1;
                }
            }
            Graph::from_edges(n, &edges).expect("mask yields a simple graph")
        })
    })
}

fn ground_truth(g: &Graph) -> Vec<(u32, u32, u32)> {
    let mut tris = Vec::new();
    baseline::brute_force(g, |x, y, z| tris.push((x, y, z)));
    tris.sort_unstable();
    tris
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_ordering_kind_is_a_bijection(g in arb_graph(), seed in 0u64..1000) {
        for kind in OrderingKind::ALL {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let labels = kind.relabeling(&g, &mut rng);
            let mut seen = vec![false; g.n()];
            for node in 0..g.n() as u32 {
                let l = labels.label(node) as usize;
                prop_assert!(l < g.n(), "{}: label out of range", kind.name());
                prop_assert!(!seen[l], "{}: label {l} assigned twice", kind.name());
                seen[l] = true;
            }
            // determinism: the same seed reproduces the same labels
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let again = kind.relabeling(&g, &mut rng);
            prop_assert_eq!(labels.as_slice(), again.as_slice(), "{}", kind.name());
        }
    }

    #[test]
    fn degeneracy_peel_out_degrees_bounded_by_core_numbers(g in arb_graph()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let labels = OrderingKind::from_name("degen")
            .expect("degen is registered")
            .relabeling(&g, &mut rng);
        let core = core_numbers(&g);
        for v in 0..g.n() as u32 {
            let lv = labels.label(v);
            let out = g
                .neighbors(v)
                .iter()
                .filter(|&&w| labels.label(w) < lv)
                .count();
            prop_assert!(
                out <= core[v as usize] as usize,
                "node {v}: out-degree {out} exceeds core number {}",
                core[v as usize]
            );
        }
    }

    #[test]
    fn relabel_list_unrelabel_is_identity(g in arb_graph(), seed in 0u64..1000) {
        let want = ground_truth(&g);
        for kind in OrderingKind::ALL {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let relabeling = kind.relabeling(&g, &mut rng);
            let dg = DirectedGraph::orient(&g, &relabeling);
            prop_assert!(dg.validate(), "{}: invalid orientation", kind.name());
            let inverse = relabeling.inverse();
            for method in Method::FUNDAMENTAL {
                let mut got = Vec::new();
                let cost = method.run(&dg, |x, y, z| {
                    let mut t = [
                        inverse[x as usize],
                        inverse[y as usize],
                        inverse[z as usize],
                    ];
                    t.sort_unstable();
                    got.push((t[0], t[1], t[2]));
                });
                got.sort_unstable();
                prop_assert_eq!(
                    &got, &want,
                    "{} under {} disagrees with brute force", method, kind.name()
                );
                prop_assert_eq!(cost.triangles as usize, want.len());
            }
        }
    }
}
