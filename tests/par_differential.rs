//! Property-based differential suite for the work-stealing runtime: for
//! every fundamental method, any thread count in `1..=8`, and random
//! graphs under random orientations, the parallel runtime's merged
//! `CostReport` must equal the sequential one *exactly* (field for field)
//! and the triangle sets must be identical. The runtime additionally
//! guarantees sequential emission order, which is asserted on top of the
//! set equality the contract requires.

use proptest::prelude::*;
use rand::SeedableRng;
use trilist::core::{par_list, par_list_with, KernelPolicy, Method, ParallelOpts};
use trilist::graph::Graph;
use trilist::order::{DirectedGraph, OrderFamily};

/// A random simple graph as an edge mask over `n ≤ 24` nodes.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..24).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), max_edges).prop_map(move |mask| {
            let mut edges = Vec::new();
            let mut k = 0;
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if mask[k] {
                        edges.push((u, v));
                    }
                    k += 1;
                }
            }
            Graph::from_edges(n, &edges).expect("mask yields a simple graph")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_matches_sequential_exactly(
        g in arb_graph(),
        seed in 0u64..1_000,
        threads in 1usize..=8,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let family = OrderFamily::ALL[(seed % OrderFamily::ALL.len() as u64) as usize];
        let dg = DirectedGraph::orient(&g, &family.relabeling(&g, &mut rng));
        for method in Method::FUNDAMENTAL {
            let mut seq_tris = Vec::new();
            let seq_cost = method.run(&dg, |x, y, z| seq_tris.push((x, y, z)));
            let run = par_list(&dg, method, threads).unwrap();
            // cost merges exactly: every field, not just the headline count
            prop_assert_eq!(
                run.cost, seq_cost,
                "{} under {} at {} threads", method, family.name(), threads
            );
            // triangle sets identical (the runtime is order-preserving, so
            // compare both as emitted and as sorted sets)
            prop_assert_eq!(
                &run.triangles, &seq_tris,
                "emission order diverged: {} under {} at {} threads",
                method, family.name(), threads
            );
            let mut par_sorted = run.triangles.clone();
            par_sorted.sort_unstable();
            let mut seq_sorted = seq_tris.clone();
            seq_sorted.sort_unstable();
            prop_assert_eq!(par_sorted, seq_sorted);
        }
    }

    #[test]
    fn fine_chunks_preserve_results(
        g in arb_graph(),
        seed in 0u64..1_000,
        target_ops in 1u64..64,
    ) {
        // degenerate chunk sizes (down to one predicted operation) stress
        // the scheduler's merge path: results must not depend on chunking
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dg = DirectedGraph::orient(&g, &OrderFamily::Uniform.relabeling(&g, &mut rng));
        for method in Method::FUNDAMENTAL {
            let mut seq_tris = Vec::new();
            let seq_cost = method.run(&dg, |x, y, z| seq_tris.push((x, y, z)));
            let opts = ParallelOpts {
                threads: 4,
                target_chunk_ops: target_ops,
                policy: KernelPolicy::PaperFaithful,
            };
            let run = par_list_with(&dg, method, &opts).unwrap();
            prop_assert_eq!(run.cost, seq_cost, "{} target_ops={}", method, target_ops);
            prop_assert_eq!(run.triangles, seq_tris, "{} target_ops={}", method, target_ops);
            let processed: u64 = run.threads.iter().map(|t| t.chunks).sum();
            prop_assert_eq!(processed as usize, run.chunks);
        }
    }

    #[test]
    fn adaptive_policy_matches_sequential_paper_run(
        g in arb_graph(),
        seed in 0u64..1_000,
        threads in 1usize..=8,
    ) {
        // per-worker adaptive kernel state must change neither the triangle
        // emission order nor any paper-cost field vs the sequential
        // paper-faithful run; only pointer_advances may move
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let family = OrderFamily::ALL[(seed % OrderFamily::ALL.len() as u64) as usize];
        let dg = DirectedGraph::orient(&g, &family.relabeling(&g, &mut rng));
        for method in Method::FUNDAMENTAL {
            let mut seq_tris = Vec::new();
            let seq_cost = method.run(&dg, |x, y, z| seq_tris.push((x, y, z)));
            let opts = ParallelOpts {
                threads,
                target_chunk_ops: 64,
                policy: KernelPolicy::adaptive(),
            };
            let run = par_list_with(&dg, method, &opts).unwrap();
            prop_assert_eq!(
                &run.triangles, &seq_tris,
                "{} under {} at {} threads", method, family.name(), threads
            );
            prop_assert_eq!(run.cost.triangles, seq_cost.triangles, "{}", method);
            prop_assert_eq!(run.cost.local, seq_cost.local, "{}", method);
            prop_assert_eq!(run.cost.remote, seq_cost.remote, "{}", method);
            prop_assert_eq!(run.cost.lookups, seq_cost.lookups, "{}", method);
            prop_assert_eq!(run.cost.hash_inserts, seq_cost.hash_inserts, "{}", method);
        }
    }

    #[test]
    fn telemetry_operations_sum_to_sequential(
        g in arb_graph(),
        threads in 1usize..=8,
    ) {
        let dg = DirectedGraph::orient(&g, &OrderFamily::Descending.relabeling(&g, &mut rand::rngs::StdRng::seed_from_u64(7)));
        for method in Method::FUNDAMENTAL {
            let seq_cost = method.run(&dg, |_, _, _| {});
            let run = par_list(&dg, method, threads).unwrap();
            let thread_ops: u64 = run.threads.iter().map(|t| t.operations).sum();
            prop_assert_eq!(thread_ops, seq_cost.operations(), "{}", method);
            let eff = run.load_balance_efficiency();
            prop_assert!((0.0..=1.0).contains(&eff), "{}: efficiency {}", method, eff);
        }
    }
}
