//! Property/fuzz suite for the `trilist-serve` wire protocol.
//!
//! Two contracts, each driven by 256 generated cases per property (the
//! weekly extended run raises `PROPTEST_CASES`):
//!
//! 1. **Round-trip**: every frame type — awkward strings, zero-length
//!    bodies, arbitrary numeric fields including NaN float bits —
//!    re-encodes byte-identically after a decode.
//! 2. **Fuzz**: arbitrary bytes, truncated frames, bad versions,
//!    oversized length prefixes, and single-byte mutations of valid
//!    frames produce *typed* errors — the decoder never panics and never
//!    allocates beyond the bytes actually present.

use proptest::prelude::*;
use trilist::core::CostReport;
use trilist::serve::{
    decode_frame, encode_frame, DeltaParams, DeltaRunResult, EditInfo, ErrorCode, ErrorFrame,
    ListParams, Request, Response, RunResult, MAX_FRAME_BYTES,
};

/// Characters the wire codec must survive: separators, quotes, control
/// characters, non-ASCII scalars, and the resume-token alphabet.
const AWKWARD: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '/', ':', '-', '=', '.', ',', '\n', '\t', '\u{1}', 'é', '🜁',
];

fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..AWKWARD.len(), 0..24)
        .prop_map(|ix| ix.into_iter().map(|i| AWKWARD[i]).collect())
}

fn arb_cost() -> impl Strategy<Value = CostReport> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        any::<bool>(),
    )
        .prop_map(
            |(
                (triangles, lookups, local),
                (remote, hash_inserts, pointer_advances),
                overflowed,
            )| {
                CostReport {
                    triangles,
                    lookups,
                    local,
                    remote,
                    hash_inserts,
                    pointer_advances,
                    overflowed,
                }
            },
        )
}

fn arb_params() -> impl Strategy<Value = ListParams> {
    (
        (arb_string(), arb_string(), arb_string(), arb_string()),
        (any::<u16>(), any::<u64>(), any::<u64>(), arb_string()),
    )
        .prop_map(
            |((graph, method, family, policy), (threads, deadline_ms, memory_bytes, resume))| {
                ListParams {
                    graph,
                    method,
                    family,
                    policy,
                    threads,
                    deadline_ms,
                    memory_bytes,
                    resume,
                }
            },
        )
}

fn arb_delta_params() -> impl Strategy<Value = DeltaParams> {
    (
        (arb_string(), any::<u64>(), any::<u64>()),
        (arb_string(), arb_string()),
        (any::<u16>(), any::<u64>(), any::<u64>(), arb_string()),
    )
        .prop_map(
            |(
                (graph, from_epoch, to_epoch),
                (family, policy),
                (threads, deadline_ms, memory_bytes, resume),
            )| DeltaParams {
                graph,
                from_epoch,
                to_epoch,
                family,
                policy,
                threads,
                deadline_ms,
                memory_bytes,
                resume,
            },
        )
}

fn arb_run_result() -> impl Strategy<Value = RunResult> {
    (
        (any::<bool>(), arb_string(), any::<bool>(), arb_string()),
        arb_cost(),
        proptest::collection::vec((any::<u32>(), any::<u32>()), 0..6),
        proptest::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 0..6),
    )
        .prop_map(
            |((complete, stop_reason, cache_hit, resume), cost, chunks, triangles)| RunResult {
                complete,
                stop_reason,
                cache_hit,
                cost,
                resume,
                chunks,
                triangles,
            },
        )
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0u8..9,
        (arb_string(), any::<u32>()),
        proptest::collection::vec((any::<u32>(), any::<u32>()), 0..8),
        arb_params(),
        ((arb_string(), arb_string()), arb_delta_params()),
    )
        .prop_map(
            |(which, (name, n), edges, params, ((method, family), delta))| match which {
                0 => Request::RegisterGraph { name, n, edges },
                1 => Request::List(params),
                2 => Request::Count(params),
                3 => Request::ModelPredict {
                    graph: name,
                    method,
                    family,
                },
                4 => Request::Stats,
                5 => Request::AddEdges { graph: name, edges },
                6 => Request::RemoveEdges { graph: name, edges },
                7 => Request::ListNewTriangles(delta),
                _ => Request::Shutdown,
            },
        )
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        0u8..9,
        ((any::<u32>(), any::<u64>()), arb_run_result()),
        // raw bits: NaN payloads and infinities included
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (
            proptest::collection::vec((arb_string(), any::<u64>()), 0..5),
            (1u8..=7u8, arb_string()),
        ),
        (
            ((any::<u64>(), any::<u64>()), (any::<u64>(), any::<u64>())),
            any::<bool>(),
        ),
    )
        .prop_map(
            |(
                which,
                ((n, m), run),
                (pn_bits, ops_bits, pn_n),
                (stats, (code, message)),
                (((epoch, applied), (from_epoch, to_epoch)), compacting),
            )| match which {
                0 => Response::Registered { n, m },
                1 => Response::ListResult(run),
                2 => Response::CountResult(run),
                3 => Response::Predicted {
                    per_node: f64::from_bits(pn_bits),
                    total_ops: f64::from_bits(ops_bits),
                    n: pn_n,
                },
                4 => Response::StatsResult(stats),
                5 => Response::ShutdownAck,
                // delta_ratio from raw bits: NaN and infinities must
                // round-trip byte-identically like Predicted's floats
                6 => Response::EditResult(EditInfo {
                    epoch,
                    applied,
                    m,
                    delta_edges: pn_n,
                    delta_ratio: f64::from_bits(pn_bits),
                    compacting,
                }),
                7 => Response::NewTrianglesResult(DeltaRunResult {
                    from_epoch,
                    to_epoch,
                    new_edges: applied,
                    removed_edges: epoch,
                    result: run,
                }),
                _ => {
                    let code = match code {
                        1 => ErrorCode::Protocol,
                        2 => ErrorCode::UnknownGraph,
                        3 => ErrorCode::BadRequest,
                        4 => ErrorCode::RejectedBusy,
                        5 => ErrorCode::RejectedCost,
                        6 => ErrorCode::ShuttingDown,
                        _ => ErrorCode::Internal,
                    };
                    Response::Error(ErrorFrame { code, message })
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Every request frame round-trips exactly.
    #[test]
    fn request_frames_round_trip(req in arb_request()) {
        let frame = encode_frame(req.kind(), &req.payload());
        let (kind, body) = decode_frame(&frame).expect("valid frame");
        let decoded = Request::decode(kind, body).expect("valid payload");
        prop_assert_eq!(&decoded, &req);
        // re-encoding is byte-identical (canonical encoding)
        prop_assert_eq!(encode_frame(decoded.kind(), &decoded.payload()), frame);
    }

    // Every response frame round-trips byte-identically — compared at
    // the byte level so NaN float payloads are covered too.
    #[test]
    fn response_frames_round_trip(resp in arb_response()) {
        let frame = encode_frame(resp.kind(), &resp.payload());
        let (kind, body) = decode_frame(&frame).expect("valid frame");
        let decoded = Response::decode(kind, body).expect("valid payload");
        prop_assert_eq!(decoded.kind(), resp.kind());
        prop_assert_eq!(encode_frame(decoded.kind(), &decoded.payload()), frame);
    }

    // Arbitrary garbage never panics any decoder entry point; it yields
    // `Ok` or a typed `WireError` — nothing else.
    #[test]
    fn garbage_bytes_yield_typed_errors(bytes in proptest::collection::vec(any::<u8>(), 0..200), kind in any::<u8>()) {
        let _ = decode_frame(&bytes);
        let _ = Request::decode(kind, &bytes);
        let _ = Response::decode(kind, &bytes);
    }

    // Every strict prefix of a valid frame fails to decode (truncation
    // is always detected, never mis-parsed or panicking).
    #[test]
    fn truncated_frames_are_rejected(req in arb_request()) {
        let frame = encode_frame(req.kind(), &req.payload());
        for cut in 0..frame.len() {
            prop_assert!(decode_frame(&frame[..cut]).is_err(), "prefix of {cut} bytes must fail");
        }
    }

    // Single-byte mutations never panic; mutating the version byte in
    // particular is always caught as `BadVersion`.
    #[test]
    fn mutated_frames_never_panic(req in arb_request(), at in any::<usize>(), xor in 1u8..=255u8) {
        let mut frame = encode_frame(req.kind(), &req.payload());
        let at = at % frame.len();
        frame[at] ^= xor;
        match decode_frame(&frame) {
            Ok((kind, body)) => { let _ = Request::decode(kind, body); }
            Err(e) => {
                if at == 4 {
                    prop_assert_eq!(e, trilist::serve::WireError::BadVersion(1 ^ xor));
                }
            }
        }
    }

    // Hostile length prefixes — a 4 GiB string or array declared inside
    // a tiny frame — are rejected before any allocation happens. The
    // test completing at all (no OOM) is part of the property.
    #[test]
    fn oversized_declared_lengths_rejected(declared in any::<u32>(), kind in 1u8..=10) {
        let mut payload = declared.to_le_bytes().to_vec();
        payload.extend_from_slice(&[0xAB; 8]);
        let result = Request::decode(kind, &payload);
        if declared as usize > payload.len() {
            prop_assert!(result.is_err());
        }
    }

    // The frame-length cap is enforced before the body would be read.
    #[test]
    fn frame_length_cap_enforced(extra in 1u32..1000) {
        let len = MAX_FRAME_BYTES.saturating_add(extra);
        let mut frame = len.to_le_bytes().to_vec();
        frame.extend_from_slice(&[1, 5, 0, 0]);
        prop_assert!(matches!(
            decode_frame(&frame),
            Err(trilist::serve::WireError::Oversized { .. })
        ));
    }
}

/// A deterministic malformed-bytes corpus on top of the generated cases:
/// classic framing attacks, each answered with a typed error.
#[test]
fn deterministic_malformed_corpus() {
    let valid = encode_frame(Request::Stats.kind(), &Request::Stats.payload());
    let mut corpus: Vec<Vec<u8>> = vec![
        vec![],
        vec![0],
        vec![0; 4],                            // len = 0 < header
        vec![1, 0, 0, 0],                      // len = 1 < header
        vec![2, 0, 0, 0, 9],                   // truncated after version
        vec![2, 0, 0, 0, 9, 5],                // bad version
        vec![2, 0, 0, 0, 1, 0x42],             // unknown kind
        0xFFFF_FFFFu32.to_le_bytes().to_vec(), // oversized len, no body
    ];
    for cut in 0..valid.len() {
        corpus.push(valid[..cut].to_vec());
    }
    // every strict prefix of the dynamic-graph frames is rejected too
    let add = Request::AddEdges {
        graph: "g".into(),
        edges: vec![(0, 1), (2, 3)],
    };
    let list_new = Request::ListNewTriangles(DeltaParams {
        resume: "trilist-delta-resume v1 n=4 edges=2 0:0-2".into(),
        ..DeltaParams::new("g", 0, DeltaParams::LATEST)
    });
    for req in [&add, &list_new] {
        let frame = encode_frame(req.kind(), &req.payload());
        for cut in 0..frame.len() {
            corpus.push(frame[..cut].to_vec());
        }
    }
    // length prefix claims more than the cap
    let mut huge = (MAX_FRAME_BYTES + 1).to_le_bytes().to_vec();
    huge.extend_from_slice(&[1, 5]);
    corpus.push(huge);
    let mut rejected = 0;
    for bytes in &corpus {
        match decode_frame(bytes) {
            Ok((kind, body)) => {
                // structurally complete header; the payload decoders must
                // still never panic
                let _ = Request::decode(kind, body);
                let _ = Response::decode(kind, body);
            }
            Err(_) => rejected += 1,
        }
    }
    assert!(rejected >= corpus.len() - 1, "corpus is mostly malformed");

    // Payload-level attacks on the new frames, fed straight to the typed
    // decoders under their real kind bytes: truncation anywhere inside
    // the payload and a hostile edge-array length must both come back as
    // typed errors, never a panic or a giant allocation.
    let edit = Response::EditResult(EditInfo {
        epoch: 7,
        applied: 2,
        m: 40,
        delta_edges: 5,
        delta_ratio: 0.125,
        compacting: true,
    });
    let delta_run = Response::NewTrianglesResult(DeltaRunResult {
        from_epoch: 1,
        to_epoch: 3,
        new_edges: 2,
        removed_edges: 1,
        result: RunResult {
            complete: false,
            stop_reason: "memory budget exhausted".into(),
            cache_hit: true,
            cost: CostReport::default(),
            resume: "trilist-delta-resume v1 n=4 edges=2 1:1-2".into(),
            chunks: vec![(0, 1)],
            triangles: vec![(0, 1, 2)],
        },
    });
    for req in [&add, &list_new] {
        let payload = req.payload();
        for cut in 0..payload.len() {
            assert!(
                Request::decode(req.kind(), &payload[..cut]).is_err(),
                "kind {:#x}: truncated payload ({cut} bytes) must be rejected",
                req.kind()
            );
        }
    }
    for resp in [&edit, &delta_run] {
        let payload = resp.payload();
        for cut in 0..payload.len() {
            assert!(
                Response::decode(resp.kind(), &payload[..cut]).is_err(),
                "kind {:#x}: truncated payload ({cut} bytes) must be rejected",
                resp.kind()
            );
        }
    }
    // hostile declared edge-array length inside an AddEdges payload
    let mut payload = add.payload();
    let graph_field = 4 + 1; // u32 string length + "g"
    payload[graph_field..graph_field + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(Request::decode(add.kind(), &payload).is_err());
}
