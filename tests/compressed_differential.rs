//! Differential suite for the delta/varint-compressed CSR layout.
//!
//! Two contracts, both stronger than "same triangles":
//!
//! 1. **Round-trip** (proptest): `CompressedCsr::compress` followed by
//!    any decode surface — `decode_out_into` / `decode_in_into`, the
//!    streaming iterators, the O(1) stored degrees — reproduces the
//!    plain `DirectedGraph` exactly.
//! 2. **Layout differential**: for every fundamental method (T1, T2,
//!    E1, E4), every kernel policy (paper-faithful, adaptive, bitset —
//!    including configs that force each bitset dispatch path), and
//!    1–4 worker threads, running the resilient runtime over the
//!    compressed source yields the *byte-identical* `CostReport`
//!    (every field, `pointer_advances` included) and the identical
//!    triangle sequence as the plain layout. This pins the label-free
//!    routing contract: `Kernels::intersect_remote` must mirror the
//!    labeled dispatch decision-for-decision, or advances diverge.
//!
//! Both contracts are additionally checked on the portable (no-SIMD)
//! word kernel, so a CI box with AVX2 still proves the fallback.

use proptest::prelude::*;
use rand::SeedableRng;
use trilist::core::{
    list_resilient_src, set_simd_level, AdaptiveConfig, BitsetConfig, CompressedCsr, GraphSource,
    HashOracle, KernelPolicy, Kernels, Method, ParallelOpts, ParallelRun, ResilientOpts, SimdLevel,
};
use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated};
use trilist::graph::gen::{GraphGenerator, ResidualSampler};
use trilist::graph::Graph;
use trilist::order::{DirectedGraph, OrderFamily};

/// A random simple graph as an edge mask over `n ≤ 28` nodes.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..28).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), max_edges).prop_map(move |mask| {
            let mut edges = Vec::new();
            let mut k = 0;
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if mask[k] {
                        edges.push((u, v));
                    }
                    k += 1;
                }
            }
            Graph::from_edges(n, &edges).expect("mask yields a simple graph")
        })
    })
}

fn assert_round_trip(dg: &DirectedGraph) {
    let c = CompressedCsr::compress(dg);
    assert_eq!(c.n(), dg.n());
    assert_eq!(c.m(), dg.m());
    let mut buf = Vec::new();
    for v in 0..dg.n() as u32 {
        assert_eq!(c.x(v), dg.out(v).len(), "x({v})");
        assert_eq!(c.y(v), dg.in_(v).len(), "y({v})");
        c.decode_out_into(v, &mut buf);
        assert_eq!(buf, dg.out(v), "out({v}) decode");
        let streamed: Vec<u32> = c.out_iter(v).collect();
        assert_eq!(streamed, dg.out(v), "out({v}) iter");
        c.decode_in_into(v, &mut buf);
        assert_eq!(buf, dg.in_(v), "in({v}) decode");
        let streamed: Vec<u32> = c.in_iter(v).collect();
        assert_eq!(streamed, dg.in_(v), "in({v}) iter");
    }
}

/// Kernel policies swept by the layout differential: the three shipped
/// policies plus bitset configs that force each dispatch path (all
/// blocks, all stamps, all fallback).
fn policies() -> Vec<KernelPolicy> {
    vec![
        KernelPolicy::PaperFaithful,
        KernelPolicy::adaptive(),
        KernelPolicy::bitset(),
        // every eligible pair takes the block path
        KernelPolicy::Bitset(BitsetConfig {
            min_short: 1,
            min_density: 0,
            stamp_crossover: u32::MAX,
            fallback: AdaptiveConfig::default(),
        }),
        // skew pairs take the stamp path, everything else blocks
        KernelPolicy::Bitset(BitsetConfig {
            min_short: 1,
            min_density: 0,
            stamp_crossover: 1,
            fallback: AdaptiveConfig::default(),
        }),
        // gates unreachable: bitset policy running purely on its fallback
        KernelPolicy::Bitset(BitsetConfig {
            min_short: u32::MAX,
            min_density: u32::MAX,
            stamp_crossover: u32::MAX,
            fallback: AdaptiveConfig::default(),
        }),
    ]
}

fn run(
    src: GraphSource<'_>,
    dg: &DirectedGraph,
    method: Method,
    policy: KernelPolicy,
    threads: usize,
) -> ParallelRun {
    let opts = ResilientOpts {
        parallel: ParallelOpts {
            threads,
            policy,
            ..ParallelOpts::default()
        },
        kernels: Some(std::sync::Arc::new(Kernels::build_src(policy, src))),
        oracle: matches!(method, Method::T1 | Method::T2)
            .then(|| std::sync::Arc::new(HashOracle::build(dg))),
        ..ResilientOpts::default()
    };
    list_resilient_src(src, method, &opts)
        .expect("fundamental method")
        .complete()
        .expect("unlimited budget")
}

/// The full layout differential on one oriented graph: every fundamental
/// method × kernel policy × thread count, compressed vs plain.
fn assert_layouts_agree(dg: &DirectedGraph) {
    let csr = CompressedCsr::compress(dg);
    for method in Method::FUNDAMENTAL {
        for policy in policies() {
            let plain = run(GraphSource::Plain(dg), dg, method, policy, 1);
            for threads in 1..=4 {
                let compressed = run(GraphSource::Compressed(&csr), dg, method, policy, threads);
                assert_eq!(
                    compressed.cost,
                    plain.cost,
                    "{method} {} t={threads}: compressed CostReport diverged \
                     (pointer_advances differing means the label-free remote \
                     routing stopped mirroring the labeled dispatch)",
                    policy.name()
                );
                assert_eq!(
                    compressed.triangles,
                    plain.triangles,
                    "{method} {} t={threads}: triangle stream diverged",
                    policy.name()
                );
            }
        }
    }
}

fn pareto_oriented(n: usize, alpha: f64, seed: u64, method: Method) -> DirectedGraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let t = (n as f64).sqrt() as u64;
    let dist = Truncated::new(DiscretePareto { alpha, beta: 3.0 }, t.max(2));
    let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
    let g = ResidualSampler.generate(&seq, &mut rng).graph;
    let relabeling = method.optimal_family().relabeling(&g, &mut rng);
    DirectedGraph::orient(&g, &relabeling)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compress_round_trips_random_graphs(g in arb_graph(), seed in 0u64..1_000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let family = OrderFamily::ALL[(seed % OrderFamily::ALL.len() as u64) as usize];
        let dg = DirectedGraph::orient(&g, &family.relabeling(&g, &mut rng));
        assert_round_trip(&dg);
    }

    #[test]
    fn layouts_agree_on_random_graphs(g in arb_graph(), seed in 0u64..1_000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let family = OrderFamily::ALL[(seed % OrderFamily::ALL.len() as u64) as usize];
        let dg = DirectedGraph::orient(&g, &family.relabeling(&g, &mut rng));
        assert_layouts_agree(&dg);
    }
}

#[test]
fn layouts_agree_on_pareto_tails() {
    // heavy tails are where the bitset gates actually open (hubs, long
    // lists, dense blocks) — random 28-node masks rarely reach them
    for (n, alpha, seed) in [(300, 1.2, 5u64), (200, 1.5, 6)] {
        for method in Method::FUNDAMENTAL {
            let dg = pareto_oriented(n, alpha, seed, method);
            assert_layouts_agree(&dg);
        }
    }
}

#[test]
fn layouts_agree_on_the_portable_word_kernel() {
    // force the no-SIMD popcount path, prove the same contracts, restore.
    // SimdLevel only changes how block words are counted, never which
    // pairs route to blocks, so the full CostReport must be unchanged too.
    let prior = set_simd_level(SimdLevel::Portable);
    let result = std::panic::catch_unwind(|| {
        let dg = pareto_oriented(250, 1.2, 7, Method::E1);
        assert_round_trip(&dg);
        assert_layouts_agree(&dg);
    });
    set_simd_level(prior);
    if let Err(e) = result {
        std::panic::resume_unwind(e);
    }
}

#[test]
fn degenerate_graphs_round_trip_and_agree() {
    // empty graph, singleton, star (max skew), path (no triangles)
    let star: Vec<(u32, u32)> = (1..40u32).map(|v| (0, v)).collect();
    let path: Vec<(u32, u32)> = (0..30u32).map(|v| (v, v + 1)).collect();
    let cases = [
        Graph::from_edges(1, &[]).unwrap(),
        Graph::from_edges(6, &[]).unwrap(),
        Graph::from_edges(40, &star).unwrap(),
        Graph::from_edges(31, &path).unwrap(),
    ];
    for (i, g) in cases.iter().enumerate() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(90 + i as u64);
        let dg = DirectedGraph::orient(g, &OrderFamily::Descending.relabeling(g, &mut rng));
        assert_round_trip(&dg);
        assert_layouts_agree(&dg);
    }
}
