//! Model-vs-simulation accuracy: eq. (11)'s expected out-degrees, the
//! per-sequence model of eq. (14), and the distributional model of eq. (50)
//! all match Monte-Carlo measurements on AMRC graphs.

use rand::SeedableRng;
use trilist::core::Method;
use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated, Truncation};
use trilist::graph::gen::{GraphGenerator, ResidualSampler};
use trilist::model::{predicted_cost_per_node, q_fractions, CostClass, WeightFn};
use trilist::order::{DirectedGraph, LimitMap, OrderFamily};
use trilist_experiments::{model_cell, simulate, SimConfig};

#[test]
fn eq11_expected_out_degree_matches_monte_carlo() {
    // Fix one degree sequence; generate many graphs; compare mean X_i to
    // eq. (12) at a few labels.
    let n = 1_500;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let dist = Truncated::new(DiscretePareto::paper_beta(1.7), Truncation::Root.t_n(n));
    let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
    let relabeling = {
        let perm = trilist::order::descending(n);
        trilist::order::Relabeling::from_positions(seq.as_slice(), &perm)
    };
    // degrees indexed by label
    let inv = relabeling.inverse();
    let degrees_by_label: Vec<u32> = inv
        .iter()
        .map(|&node| seq.as_slice()[node as usize])
        .collect();
    let expected = trilist::model::expected_out_degrees(&degrees_by_label, WeightFn::Identity);

    let reps = 60;
    let mut sums = vec![0.0f64; n];
    for _ in 0..reps {
        let g = ResidualSampler.generate(&seq, &mut rng).graph;
        let dg = DirectedGraph::orient(&g, &relabeling);
        for v in 0..n as u32 {
            sums[v as usize] += dg.x(v) as f64;
        }
    }
    // aggregate over label blocks to suppress Monte-Carlo noise
    for block in [
        (0, n / 4),
        (n / 4, n / 2),
        (n / 2, 3 * n / 4),
        (3 * n / 4, n),
    ] {
        let mc: f64 = sums[block.0..block.1].iter().sum::<f64>() / reps as f64;
        let model: f64 = expected[block.0..block.1].iter().sum();
        let err = (mc - model).abs() / model.max(1.0);
        assert!(err < 0.06, "block {block:?}: mc {mc} model {model}");
    }
}

#[test]
fn eq14_per_sequence_model_matches_measured_cost() {
    // Proposition 4 on a concrete sequence: (1/n)Σ g(d_i)h(q_i) vs the
    // average measured cost over graphs realizing that sequence.
    let n = 2_000;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let dist = Truncated::new(DiscretePareto::paper_beta(1.5), Truncation::Root.t_n(n));
    let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
    for (family, class) in [
        (OrderFamily::Descending, CostClass::T1),
        (OrderFamily::Ascending, CostClass::T1),
        (OrderFamily::RoundRobin, CostClass::T2),
    ] {
        let relabeling = family.relabeling(
            &ResidualSampler.generate(&seq, &mut rng).graph, // degrees drive the relabeling
            &mut rng,
        );
        let inv = relabeling.inverse();
        let degrees_by_label: Vec<u32> = inv
            .iter()
            .map(|&node| seq.as_slice()[node as usize])
            .collect();
        let model = predicted_cost_per_node(&degrees_by_label, WeightFn::Identity, |x| class.h(x));
        let method = match class {
            CostClass::T1 => Method::T1,
            CostClass::T2 => Method::T2,
            _ => unreachable!(),
        };
        let reps = 20;
        let mut total = 0.0;
        for _ in 0..reps {
            let g = ResidualSampler.generate(&seq, &mut rng).graph;
            let dg = DirectedGraph::orient(&g, &relabeling);
            total += method.run(&dg, |_, _, _| {}).per_node(n);
        }
        let measured = total / reps as f64;
        let err = (measured - model).abs() / model;
        assert!(
            err < 0.1,
            "{:?}/{}: measured {measured} model {model}",
            class,
            family.name()
        );
    }
}

#[test]
fn eq50_distribution_model_matches_simulation_root_truncation() {
    // the Table 6/7 regime at laptop size: <10% at n = 4000
    for (alpha, method, family, class, map) in [
        (
            1.5,
            Method::T1,
            OrderFamily::Descending,
            CostClass::T1,
            LimitMap::Descending,
        ),
        (
            1.7,
            Method::T2,
            OrderFamily::RoundRobin,
            CostClass::T2,
            LimitMap::RoundRobin,
        ),
        (
            1.7,
            Method::E1,
            OrderFamily::Descending,
            CostClass::E1,
            LimitMap::Descending,
        ),
    ] {
        let cfg = SimConfig {
            sequences: 4,
            graphs_per_sequence: 4,
            base_seed: 11,
            ..SimConfig::quick(alpha, Truncation::Root)
        };
        let n = 4_000;
        let cells = simulate(&cfg, n, &[(method, family)]);
        let model = model_cell(&cfg, n, class, map, WeightFn::Identity);
        let err = (cells[0].mean - model).abs() / model;
        assert!(
            err < 0.1,
            "alpha={alpha} {method}+{}: sim {} model {model}",
            family.name(),
            cells[0].mean
        );
    }
}

#[test]
fn q_fractions_monotone_under_equal_weights() {
    // under any relabeling, prefix mass grows with the label
    let d: Vec<u32> = (0..500).map(|i| 1 + (i * 7) % 40).collect();
    let q = q_fractions(&d, WeightFn::Identity);
    // q is not necessarily monotone in general (denominator varies with
    // d_i), but with the capped weight at cap=1 all weights are equal and
    // q must be strictly increasing
    let q_flat = q_fractions(&d, WeightFn::Capped(1.0));
    for w in q_flat.windows(2) {
        assert!(w[0] < w[1] + 1e-12);
    }
    assert_eq!(q.len(), 500);
}

#[test]
fn w2_model_reduces_error_in_unconstrained_graphs() {
    // Table 11's headline: under α = 1.2 + linear truncation, w₂ = min(x, √m)
    // is far more accurate than w₁ = x for T2-type methods.
    let alpha = 1.2;
    let cfg = SimConfig {
        sequences: 3,
        graphs_per_sequence: 3,
        base_seed: 21,
        ..SimConfig::quick(alpha, Truncation::Linear)
    };
    let n = 8_000;
    let cells = simulate(&cfg, n, &[(Method::T2, OrderFamily::RoundRobin)]);
    let sim = cells[0].mean;
    let t_n = Truncation::Linear.t_n(n);
    use trilist::graph::dist::DegreeModel;
    let mean_dn = Truncated::new(cfg.pareto(), t_n).mean_exact();
    let w2 = WeightFn::w2(n, mean_dn);
    let m1 = model_cell(
        &cfg,
        n,
        CostClass::T2,
        LimitMap::RoundRobin,
        WeightFn::Identity,
    );
    let m2 = model_cell(&cfg, n, CostClass::T2, LimitMap::RoundRobin, w2);
    let err1 = (m1 - sim).abs() / sim;
    let err2 = (m2 - sim).abs() / sim;
    assert!(err2 < err1, "w1 err {err1} vs w2 err {err2}");
    assert!(err2 < 0.25, "w2 err {err2}");
}

#[test]
fn golden_model_predictions_are_pinned() {
    // Golden regression pins for eq. (50): three Pareto configurations
    // spanning the paper's α regimes (heavy 1.5, Table-6/7 1.7, light
    // 2.5), evaluated at fixed n with the identity weight. The model is
    // analytic, so any drift beyond float-accumulation noise (relative
    // 1e-9) means the cost model changed — bump these values only with a
    // derivation in hand, not to make the test pass.
    use trilist::graph::dist::Truncation;
    use trilist_experiments::limit_cell;

    struct Golden {
        alpha: f64,
        n: usize,
        class: CostClass,
        map: LimitMap,
        model: f64,
        limit: f64,
    }
    let pins = [
        Golden {
            alpha: 1.5,
            n: 10_000,
            class: CostClass::T1,
            map: LimitMap::Descending,
            model: 39.330826741147945,
            limit: 356.27594861060186,
        },
        Golden {
            alpha: 1.7,
            n: 100_000,
            class: CostClass::T2,
            map: LimitMap::RoundRobin,
            model: 181.46624831446564,
            limit: 770.4177864197397,
        },
        Golden {
            alpha: 2.5,
            n: 10_000,
            class: CostClass::E4,
            map: LimitMap::ComplementaryRoundRobin,
            model: 249.8201676408816,
            limit: 1432.9070067582604,
        },
    ];
    for g in &pins {
        let cfg = SimConfig::quick(g.alpha, Truncation::Root);
        let model = model_cell(&cfg, g.n, g.class, g.map, WeightFn::Identity);
        let rel = (model - g.model).abs() / g.model;
        assert!(
            rel < 1e-9,
            "alpha={} n={} {:?}/{:?}: model {model:?} drifted from pinned {:?} (rel {rel:e})",
            g.alpha,
            g.n,
            g.class,
            g.map,
            g.model
        );
        let limit = limit_cell(&cfg, g.class, g.map).expect("these configs have finite limits");
        let rel = (limit - g.limit).abs() / g.limit;
        assert!(
            rel < 1e-9,
            "alpha={} {:?}/{:?}: limit {limit:?} drifted from pinned {:?} (rel {rel:e})",
            g.alpha,
            g.class,
            g.map,
            g.limit
        );
    }
}
