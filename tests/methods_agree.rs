//! Cross-crate correctness: every one of the 18 listing algorithms, under
//! every orientation family, lists exactly the triangles of the underlying
//! undirected graph — on structured graphs, random Gnp graphs, and
//! realized power-law degree sequences.

use rand::{Rng, SeedableRng};
use trilist::core::{baseline, list_triangles, list_triangles_with, KernelPolicy, Method};
use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated, Truncation};
use trilist::graph::gen::{ConfigurationModel, GraphGenerator, ResidualSampler};
use trilist::graph::Graph;
use trilist::order::OrderFamily;

fn ground_truth(g: &Graph) -> Vec<(u32, u32, u32)> {
    let mut tris = Vec::new();
    baseline::brute_force(g, |x, y, z| tris.push((x, y, z)));
    tris.sort_unstable();
    tris
}

fn assert_all_methods_agree(g: &Graph, seed: u64) {
    let want = ground_truth(g);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for family in OrderFamily::ALL {
        for method in Method::ALL {
            let mut run = list_triangles(g, method, family, &mut rng);
            run.triangles.sort_unstable();
            assert_eq!(
                run.triangles,
                want,
                "{method} under {} disagrees with brute force",
                family.name()
            );
            assert_eq!(run.cost.triangles as usize, want.len());
        }
    }
}

#[test]
fn structured_graphs() {
    // complete graph K6
    let mut edges = Vec::new();
    for u in 0..6u32 {
        for v in (u + 1)..6 {
            edges.push((u, v));
        }
    }
    assert_all_methods_agree(&Graph::from_edges(6, &edges).unwrap(), 1);

    // triangle-free: C7
    let c7: Vec<_> = (0..7u32).map(|i| (i, (i + 1) % 7)).collect();
    assert_all_methods_agree(&Graph::from_edges(7, &c7).unwrap(), 2);

    // wheel W8: hub 0 connected to a C7 rim — every rim edge closes one
    let mut wheel: Vec<(u32, u32)> = (1..8u32).map(|i| (0, i)).collect();
    wheel.extend((1..8u32).map(|i| (i, if i == 7 { 1 } else { i + 1 })));
    assert_all_methods_agree(&Graph::from_edges(8, &wheel).unwrap(), 3);

    // two disjoint triangles
    assert_all_methods_agree(
        &Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap(),
        4,
    );

    // empty graph and singleton
    assert_all_methods_agree(&Graph::from_edges(5, &[]).unwrap(), 5);
    assert_all_methods_agree(&Graph::from_edges(1, &[]).unwrap(), 6);
}

#[test]
fn gnp_random_graphs() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    for trial in 0..8 {
        let n = rng.gen_range(10..40);
        let p = rng.gen_range(0.05..0.5);
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(p) {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(n, &edges).unwrap();
        assert_all_methods_agree(&g, 100 + trial);
    }
}

#[test]
fn power_law_realizations_from_both_generators() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let n = 120;
    let dist = Truncated::new(
        DiscretePareto {
            alpha: 1.6,
            beta: 3.0,
        },
        Truncation::Root.t_n(n),
    );
    for trial in 0..4 {
        let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
        let g1 = ResidualSampler.generate(&seq, &mut rng).graph;
        assert_all_methods_agree(&g1, 200 + trial);
        let g2 = ConfigurationModel.generate(&seq, &mut rng).graph;
        assert_all_methods_agree(&g2, 300 + trial);
    }
}

#[test]
fn adaptive_kernels_agree_with_brute_force() {
    // the adaptive kernel layer must be invisible to correctness: every
    // method, every family, default adaptive tuning, against ground truth
    let mut rng = rand::rngs::StdRng::seed_from_u64(41);
    let n = 35;
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(0.25) {
                edges.push((u, v));
            }
        }
    }
    let g = Graph::from_edges(n, &edges).unwrap();
    let want = ground_truth(&g);
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    for family in OrderFamily::ALL {
        for method in Method::ALL {
            let mut run =
                list_triangles_with(&g, method, family, KernelPolicy::adaptive(), &mut rng);
            run.triangles.sort_unstable();
            assert_eq!(
                run.triangles,
                want,
                "{method} under {} (adaptive) disagrees with brute force",
                family.name()
            );
        }
    }
}

#[test]
fn triangle_counts_invariant_across_random_orientations() {
    // the count must not depend on the uniform permutation's seed
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let n = 200;
    let dist = Truncated::new(
        DiscretePareto {
            alpha: 2.0,
            beta: 5.0,
        },
        40,
    );
    let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
    let g = ResidualSampler.generate(&seq, &mut rng).graph;
    let baseline_count = ground_truth(&g).len() as u64;
    for seed in 0..10u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let run = list_triangles(&g, Method::E1, OrderFamily::Uniform, &mut rng);
        assert_eq!(run.cost.triangles, baseline_count, "seed {seed}");
    }
}
