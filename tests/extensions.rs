//! Integration coverage for the library extensions: parallel listing,
//! compressed adjacency, clustering statistics, tail fitting, and the
//! unrelabeled variants — exercised together on shared realistic graphs.

use rand::SeedableRng;
use trilist::core::{
    clustering, compressed::CompressedOut, e1_compressed, par_list, Method, OrientedOnly,
};
use trilist::graph::components::summarize;
use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated, Truncation};
use trilist::graph::gen::{ChungLu, Gnp, GraphGenerator, ResidualSampler};
use trilist::graph::io::{read_edge_list, write_edge_list};
use trilist::graph::Graph;
use trilist::model::fit::{hill_estimator, recommend};
use trilist::order::{DirectedGraph, OrderFamily};

fn power_law_graph(n: usize, alpha: f64, seed: u64) -> Graph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dist = Truncated::new(DiscretePareto::paper_beta(alpha), Truncation::Root.t_n(n));
    let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
    ResidualSampler.generate(&seq, &mut rng).graph
}

#[test]
fn every_listing_path_counts_the_same_triangles() {
    // sequential, parallel, compressed, unrelabeled, and clustering all
    // agree on the triangle count of one graph
    let g = power_law_graph(3_000, 1.7, 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let relabeling = OrderFamily::Descending.relabeling(&g, &mut rng);
    let dg = DirectedGraph::orient(&g, &relabeling);

    let sequential = Method::E1.run(&dg, |_, _, _| {}).triangles;
    let parallel = par_list(&dg, Method::E1, 4).unwrap().cost.triangles;
    let packed = e1_compressed(&CompressedOut::compress(&dg), |_, _, _| {}).triangles;
    let partial = OrientedOnly::orient(&g, &relabeling)
        .t1(|_, _, _| {})
        .triangles;
    let stats = clustering::triangle_count(&g);

    assert_eq!(sequential, parallel);
    assert_eq!(sequential, packed);
    assert_eq!(sequential, partial);
    assert_eq!(sequential, stats);
}

#[test]
fn io_round_trip_preserves_listing_results() {
    let g = power_law_graph(1_000, 1.5, 3);
    let mut buf = Vec::new();
    write_edge_list(&g, &mut buf).unwrap();
    let loaded = read_edge_list(buf.as_slice()).unwrap().graph;
    assert_eq!(loaded.n(), g.n());
    assert_eq!(loaded.m(), g.m());
    assert_eq!(
        clustering::triangle_count(&loaded),
        clustering::triangle_count(&g)
    );
}

#[test]
fn generators_produce_workable_graphs() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    // Chung–Lu with moderate weights: realized mean degree tracks the
    // truncated distribution's mean (≈ 12.3 for α=2, β=30 cut at 40)
    let dist = Truncated::new(DiscretePareto::paper_beta(2.0), 40);
    use trilist::graph::dist::DegreeModel;
    let target_mean = dist.mean_exact();
    let (seq, _) = sample_degree_sequence(&dist, 2_000, &mut rng);
    let cl = ChungLu.generate(&seq, &mut rng).graph;
    let s = summarize(&cl);
    assert!(
        (s.mean_degree - target_mean).abs() / target_mean < 0.15,
        "mean degree {} vs target {target_mean}",
        s.mean_degree
    );
    // Gnp at the same density
    let p = s.mean_degree / (s.n as f64 - 1.0);
    let gnp = Gnp { p }.generate(2_000, &mut rng);
    // every method still agrees on both graphs
    for g in [&cl, &gnp] {
        let r = OrderFamily::Descending.relabeling(g, &mut rng);
        let dg = DirectedGraph::orient(g, &r);
        let t1 = Method::T1.run(&dg, |_, _, _| {}).triangles;
        let e4 = Method::E4.run(&dg, |_, _, _| {}).triangles;
        assert_eq!(t1, e4);
    }
}

#[test]
fn gnp_transitivity_concentrates_at_p() {
    // classical fact: in G(n, p) the probability that a wedge closes is p,
    // so transitivity → p; a sharp quantitative check of both the Gnp
    // generator and the clustering pipeline
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let p = 0.02;
    let mut ts = Vec::new();
    for _ in 0..5 {
        let g = Gnp { p }.generate(1_500, &mut rng);
        ts.push(clustering::transitivity(&g));
    }
    let mean = ts.iter().sum::<f64>() / ts.len() as f64;
    assert!(
        (mean - p).abs() / p < 0.1,
        "mean transitivity {mean} vs p {p}"
    );
}

#[test]
fn fit_and_recommend_work_on_heavy_tail() {
    // linear truncation leaves the tail intact, so Hill should land near
    // the true α
    let n = 30_000;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let dist = Truncated::new(DiscretePareto::paper_beta(1.5), (n - 1) as u64);
    let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
    let g = ResidualSampler.generate(&seq, &mut rng).graph;
    let alpha = hill_estimator(&g.degrees(), 0.02).expect("estimable");
    assert!((alpha - 1.5).abs() < 0.4, "hill {alpha}");
    let rec = recommend(&g, 95.0);
    // op ratio far below 95 → SEI recommended
    assert_eq!(rec.method, Method::E1);
    assert!(rec.wn > 1.0 && rec.wn < 10.0);
}

#[test]
fn compressed_form_is_smaller_and_complete() {
    let g = power_law_graph(5_000, 1.7, 8);
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    for family in [OrderFamily::Descending, OrderFamily::Uniform] {
        let dg = DirectedGraph::orient(&g, &family.relabeling(&g, &mut rng));
        let c = CompressedOut::compress(&dg);
        assert!(c.byte_len() < dg.m() * 4, "{}", family.name());
        let total_out: usize = (0..dg.n() as u32).map(|v| c.x(v)).sum();
        assert_eq!(total_out, dg.m());
    }
}
