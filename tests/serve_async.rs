//! Differential and pipelining suite for the event-loop connection
//! layer: the async server (the default) and the legacy blocking server
//! (`ServeConfig { blocking: true }`) must answer every deterministic
//! frame type byte-identically — success results, every error class,
//! framing violations, the shutdown gate, and budget-interrupted resume
//! chains — and a pipelined batch on one connection must answer in
//! order, byte-identical to issuing the same requests sequentially.

use rand::SeedableRng;
use std::io::Write;
use std::net::TcpStream;
use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated, Truncation};
use trilist::graph::gen::{GraphGenerator, ResidualSampler};
use trilist::graph::Graph;
use trilist::serve::{
    encode_frame, read_frame, Client, ErrorCode, ListParams, Request, Response, ServeConfig,
    Server, ServerHandle,
};

/// A reproducible Pareto α = 1.5 graph with plenty of triangles.
fn pareto_graph(n: usize, seed: u64) -> Graph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dist = Truncated::new(DiscretePareto::paper_beta(1.5), Truncation::Root.t_n(n));
    let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
    ResidualSampler.generate(&seq, &mut rng).graph
}

fn bind(blocking: bool) -> ServerHandle {
    Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            blocking,
            ..ServeConfig::default()
        },
    )
    .expect("bind")
}

/// A frame-level client: raw bytes out, raw frames back — so the tests
/// compare exactly what went over the wire.
struct RawClient {
    stream: TcpStream,
}

impl RawClient {
    fn connect(addr: std::net::SocketAddr) -> RawClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        RawClient { stream }
    }

    fn send_bytes(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("write");
        self.stream.flush().expect("flush");
    }

    fn send(&mut self, req: &Request) {
        self.send_bytes(&encode_frame(req.kind(), &req.payload()));
    }

    /// One whole response frame, as canonical bytes.
    fn recv_frame(&mut self) -> Vec<u8> {
        let (kind, body) = read_frame(&mut self.stream).expect("response frame");
        encode_frame(kind, &body)
    }

    fn recv(&mut self) -> Response {
        let (kind, body) = read_frame(&mut self.stream).expect("response frame");
        Response::decode(kind, &body).expect("well-formed response")
    }

    /// The stream must be at EOF (the server closed it).
    fn expect_eof(&mut self) {
        assert!(
            read_frame(&mut self.stream).is_err(),
            "expected the server to close the connection"
        );
    }
}

fn k4_edges() -> Vec<(u32, u32)> {
    vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
}

/// The deterministic request matrix: registration, every fundamental
/// method under both kernel policies (list + count), predictions, and
/// one of every error class the server can produce.
fn matrix_script(edges: &[(u32, u32)], n: u32) -> Vec<Request> {
    let mut script = vec![Request::RegisterGraph {
        name: "g".into(),
        n,
        edges: edges.to_vec(),
    }];
    for method in ["T1", "T2", "E1", "E4"] {
        let family = match method {
            "T1" | "T2" => "desc",
            "E1" => "asc",
            _ => "crr",
        };
        for policy in ["paper", "adaptive"] {
            let params = ListParams {
                threads: 2,
                ..ListParams::new("g", method, family, policy)
            };
            script.push(Request::List(params.clone()));
            script.push(Request::Count(params));
        }
        script.push(Request::ModelPredict {
            graph: "g".into(),
            method: method.into(),
            family: family.into(),
        });
    }
    // Every error class, deterministically:
    script.push(Request::List(ListParams::new("g", "T9", "desc", "paper")));
    script.push(Request::List(ListParams::new("g", "T1", "zig", "paper")));
    script.push(Request::List(ListParams::new("g", "T1", "desc", "magic")));
    script.push(Request::List(ListParams::new(
        "nope", "T1", "desc", "paper",
    )));
    script.push(Request::ModelPredict {
        graph: "nope".into(),
        method: "T1".into(),
        family: "desc".into(),
    });
    script.push(Request::RegisterGraph {
        name: "bad".into(),
        n: 2,
        edges: vec![(0, 7)], // endpoint out of range
    });
    script.push(Request::List(ListParams {
        resume: "not a resume token".into(),
        ..ListParams::new("g", "T1", "desc", "paper")
    }));
    script.push(Request::List(ListParams {
        resume: "trilist-resume v1 E4 n=10 0:0-10".into(),
        ..ListParams::new("g", "T1", "desc", "paper") // token names E4
    }));
    script
}

/// Runs `script` sequentially (one request, one response) against a
/// fresh server in the given mode and returns the raw response frames.
fn run_script(blocking: bool, script: &[Request]) -> Vec<Vec<u8>> {
    let server = bind(blocking);
    let mut c = RawClient::connect(server.addr());
    let frames = script
        .iter()
        .map(|req| {
            c.send(req);
            c.recv_frame()
        })
        .collect();
    drop(c);
    server.join();
    frames
}

#[test]
fn async_and_blocking_answer_the_matrix_byte_identically() {
    let g = pareto_graph(500, 0xA51C);
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let script = matrix_script(&edges, g.n() as u32);
    let async_frames = run_script(false, &script);
    let blocking_frames = run_script(true, &script);
    assert_eq!(async_frames.len(), blocking_frames.len());
    for (i, (a, b)) in async_frames.iter().zip(&blocking_frames).enumerate() {
        assert_eq!(a, b, "request #{i} ({:?}) answered differently", script[i]);
    }
    // And at least one of each class actually appeared.
    let errors = async_frames.iter().filter(|f| f[5] == 0xFF).count();
    assert_eq!(errors, 8, "the script ends with eight error responses");
}

/// Budget-interrupted resume chains: a 1-byte memory ceiling interrupts
/// deterministically (cache residency already exceeds it), and each
/// follow-up carries the previous token. Every frame of the chain —
/// partial results, tokens, piece tables — must match across layers.
fn run_chain(blocking: bool, method: &str, family: &str) -> Vec<Vec<u8>> {
    let g = pareto_graph(700, 0xC4A1);
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let server = bind(blocking);
    let mut c = RawClient::connect(server.addr());
    c.send(&Request::RegisterGraph {
        name: "g".into(),
        n: g.n() as u32,
        edges,
    });
    let mut frames = vec![c.recv_frame()];
    let mut params = ListParams {
        threads: 2,
        memory_bytes: 1, // always exhausted: deterministic interruption
        ..ListParams::new("g", method, family, "paper")
    };
    c.send(&Request::List(params.clone()));
    let mut frame = c.recv_frame();
    params.memory_bytes = 0; // let the rest of the chain run
    loop {
        let (kind, body) = trilist::serve::decode_frame(&frame).expect("frame");
        frames.push(frame.clone());
        let resp = Response::decode(kind, body).expect("response");
        let run = match resp {
            Response::ListResult(run) => run,
            other => panic!("wanted ListResult, got {other:?}"),
        };
        if run.complete {
            break;
        }
        assert_eq!(run.stop_reason, "memory budget exhausted");
        assert!(!run.resume.is_empty(), "partial result carries a token");
        params.resume = run.resume;
        c.send(&Request::List(params.clone()));
        frame = c.recv_frame();
    }
    drop(c);
    server.join();
    frames
}

#[test]
fn interrupted_resume_chains_are_byte_identical_across_layers() {
    for (method, family) in [("T1", "desc"), ("E4", "crr")] {
        let async_chain = run_chain(false, method, family);
        let blocking_chain = run_chain(true, method, family);
        assert!(
            async_chain.len() >= 3,
            "{method}: register + at least two chain responses"
        );
        assert_eq!(
            async_chain, blocking_chain,
            "{method}: resume chain diverged between layers"
        );
    }
}

#[test]
fn pipelined_batch_answers_in_order_and_matches_sequential_issue() {
    let g = pareto_graph(500, 0x9199);
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let n = g.n() as u32;

    // Warm every (graph, family) the batch touches so cache_hit flags
    // cannot depend on which concurrent request prepares first.
    let warm = |client: &mut Client| {
        client.register_graph("g", n, &edges).expect("register");
        for (m, f) in [("T1", "desc"), ("T2", "desc"), ("E1", "asc"), ("E4", "crr")] {
            client
                .count(ListParams::new("g", m, f, "paper"))
                .expect("warm");
        }
    };

    let batch: Vec<Request> = vec![
        Request::List(ListParams::new("g", "T1", "desc", "paper")),
        Request::Count(ListParams::new("g", "T2", "desc", "adaptive")),
        Request::ModelPredict {
            graph: "g".into(),
            method: "T1".into(),
            family: "desc".into(),
        },
        Request::Stats,
        Request::List(ListParams::new("g", "E1", "asc", "adaptive")),
        // A Register mid-pipeline is a barrier: the List behind it must
        // see the graph.
        Request::RegisterGraph {
            name: "h".into(),
            n: 4,
            edges: k4_edges(),
        },
        Request::List(ListParams::new("h", "T1", "desc", "paper")),
        Request::Count(ListParams::new("g", "E4", "crr", "paper")),
        Request::List(ListParams::new("g", "T1", "desc", "wat")), // error in place
        Request::Stats,
    ];

    // Pipelined: everything written before anything is read.
    let server = bind(false);
    let mut client = Client::connect(server.addr()).expect("connect");
    warm(&mut client);
    let pipelined = client.pipeline(&batch).expect("pipelined batch");
    client.shutdown().expect("shutdown");
    server.join();

    // Sequential: same requests, fresh identically-warmed server.
    let server = bind(false);
    let mut client = Client::connect(server.addr()).expect("connect");
    warm(&mut client);
    let sequential: Vec<Response> = batch
        .iter()
        .map(|req| client.call(req).expect("sequential call"))
        .collect();
    client.shutdown().expect("shutdown");
    server.join();

    assert_eq!(pipelined.len(), batch.len());
    for (i, (p, s)) in pipelined.iter().zip(&sequential).enumerate() {
        if matches!(batch[i], Request::Stats) {
            // Stats bodies carry timing counters; only the shape and
            // in-order position are deterministic.
            assert!(
                matches!(p, Response::StatsResult(_)) && matches!(s, Response::StatsResult(_)),
                "request #{i}: both issues answer Stats in position"
            );
        } else {
            assert_eq!(p, s, "request #{i} ({:?}) answered differently", batch[i]);
        }
    }
    match &pipelined[8] {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest),
        other => panic!("unknown policy must error in place, got {other:?}"),
    }
}

#[test]
fn pipelined_priced_requests_execute_concurrently_and_shed_busy() {
    // max_inflight=1, max_queue=0: the second of two pipelined Counts is
    // shed busy while the first still runs — structural proof that
    // execution is decoupled from the connection (the blocking layer
    // would serialize them and answer both).
    let g = pareto_graph(3000, 0xB059);
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let mut cfg = ServeConfig::default();
    cfg.admission.max_inflight = 1;
    cfg.admission.max_queue = 0;
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .register_graph("g", g.n() as u32, &edges)
        .expect("register");
    client
        .count(ListParams::new("g", "T2", "desc", "paper"))
        .expect("warm the prepared cache");
    let params = ListParams::new("g", "T2", "desc", "paper");
    let responses = client
        .pipeline(&[
            Request::Count(params.clone()),
            Request::Count(params.clone()),
        ])
        .expect("pipelined counts");
    assert!(
        matches!(responses[0], Response::CountResult(_)),
        "first count runs: got {:?}",
        responses[0]
    );
    match &responses[1] {
        Response::Error(e) => {
            assert_eq!(e.code, ErrorCode::RejectedBusy);
            assert_eq!(e.message, "busy: 1 in flight and 0 queued");
        }
        other => panic!("second count must be shed busy, got {other:?}"),
    }
    // The express lane is not behind the priced lane: a Predict pipelined
    // after a shed still answers (and a Stats answers inline).
    let more = client
        .pipeline(&[
            Request::ModelPredict {
                graph: "g".into(),
                method: "T2".into(),
                family: "desc".into(),
            },
            Request::Stats,
        ])
        .expect("express batch");
    assert!(matches!(more[0], Response::Predicted { .. }));
    assert!(matches!(more[1], Response::StatsResult(_)));
    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn shutdown_gate_applies_in_frame_order_in_both_layers() {
    for blocking in [false, true] {
        let server = bind(blocking);
        let mut c = RawClient::connect(server.addr());
        // One write: [Register, List, Shutdown, List]. The first List
        // precedes the Shutdown frame, so it must be answered; the
        // second follows it, so it must be rejected.
        let reqs = [
            Request::RegisterGraph {
                name: "k".into(),
                n: 4,
                edges: k4_edges(),
            },
            Request::List(ListParams::new("k", "T1", "desc", "paper")),
            Request::Shutdown,
            Request::List(ListParams::new("k", "T1", "desc", "paper")),
        ];
        let mut bytes = Vec::new();
        for req in &reqs {
            bytes.extend_from_slice(&encode_frame(req.kind(), &req.payload()));
        }
        c.send_bytes(&bytes);
        assert!(
            matches!(c.recv(), Response::Registered { n: 4, m: 6 }),
            "blocking={blocking}"
        );
        match c.recv() {
            Response::ListResult(run) => assert_eq!(run.cost.triangles, 4),
            other => panic!("blocking={blocking}: List before Shutdown runs, got {other:?}"),
        }
        assert!(matches!(c.recv(), Response::ShutdownAck));
        match c.recv() {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::ShuttingDown),
            other => panic!("blocking={blocking}: List after Shutdown gated, got {other:?}"),
        }
        server.join();
    }
}

#[test]
fn short_headers_wait_for_bytes_instead_of_erroring() {
    // Regression for the frame-length parse: a 3-byte header (or any
    // partial delivery, down to one byte at a time) is "not yet a
    // frame", never a protocol error or a panic.
    for blocking in [false, true] {
        let server = bind(blocking);
        let mut c = RawClient::connect(server.addr());
        let frame = encode_frame(Request::Stats.kind(), &Request::Stats.payload());
        c.send_bytes(&frame[..3]); // 3 bytes of the length prefix
        std::thread::sleep(std::time::Duration::from_millis(60));
        c.send_bytes(&frame[3..]);
        assert!(
            matches!(c.recv(), Response::StatsResult(_)),
            "blocking={blocking}: split header still answers"
        );
        // Byte-at-a-time delivery of a whole request.
        for b in &frame {
            c.send_bytes(std::slice::from_ref(b));
        }
        assert!(
            matches!(c.recv(), Response::StatsResult(_)),
            "blocking={blocking}: byte-at-a-time delivery still answers"
        );
        drop(c);
        server.join();
    }
}

#[test]
fn framing_violations_answer_once_then_close_in_both_layers() {
    // (name, poisoned bytes): each breaks the stream irrecoverably.
    let oversized = (trilist::serve::MAX_FRAME_BYTES + 1).to_le_bytes();
    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("length below header size", vec![1, 0, 0, 0, 1, 5]),
        ("bad version", vec![2, 0, 0, 0, 9, 5]),
        ("oversized length", oversized.to_vec()),
    ];
    for (name, poison) in &cases {
        let mut per_mode: Vec<Vec<Vec<u8>>> = Vec::new();
        for blocking in [false, true] {
            let server = bind(blocking);
            let mut c = RawClient::connect(server.addr());
            // A valid request then the poison, in one write: the valid
            // one answers, the poison draws one typed error, then EOF.
            let mut bytes = encode_frame(Request::Stats.kind(), &Request::Stats.payload());
            bytes.extend_from_slice(poison);
            c.send_bytes(&bytes);
            let first = c.recv_frame();
            assert_eq!(first[5], 0x85, "{name}, blocking={blocking}: StatsResult");
            let second = c.recv_frame();
            assert_eq!(second[5], 0xFF, "{name}, blocking={blocking}: error frame");
            c.expect_eof();
            per_mode.push(vec![second]);
            server.join();
        }
        assert_eq!(
            per_mode[0], per_mode[1],
            "{name}: error frames must be byte-identical across layers"
        );
    }
    // A malformed *body* (valid framing) poisons only its own frame: the
    // connection answers the error and keeps serving.
    for blocking in [false, true] {
        let server = bind(blocking);
        let mut c = RawClient::connect(server.addr());
        c.send_bytes(&encode_frame(0x02, &[0xFF, 0xFF, 0xFF, 0xFF])); // List with garbage params
        match c.recv() {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::Protocol),
            other => panic!("blocking={blocking}: wanted protocol error, got {other:?}"),
        }
        c.send(&Request::Stats);
        assert!(
            matches!(c.recv(), Response::StatsResult(_)),
            "blocking={blocking}: connection survives a bad body"
        );
        // An unknown kind byte is also only a per-frame error.
        c.send_bytes(&encode_frame(0x7E, &[]));
        match c.recv() {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::Protocol),
            other => panic!("blocking={blocking}: unknown kind errors, got {other:?}"),
        }
        c.send(&Request::Stats);
        assert!(matches!(c.recv(), Response::StatsResult(_)));
        drop(c);
        server.join();
    }
}
