//! File-descriptor exhaustion drill, in its own test binary (= its own
//! process) because it deliberately drives the process fd table to the
//! `RLIMIT_NOFILE` wall: with zero descriptors free, the server's accept
//! path must classify `EMFILE` as transient pressure — count it, back
//! off, keep the listener registered — and accept again the moment
//! descriptors free up. Existing connections must keep working
//! throughout. Skips (loudly) when the soft limit is too high to reach
//! safely.

use std::fs::File;
use std::io::ErrorKind;
use std::time::Duration;
use trilist::serve::{accept_error_action, AcceptAction, Client, ListParams, ServeConfig, Server};

/// Attempt ceiling for the hoard; a box with a higher soft limit skips
/// the drill rather than opening files forever.
const MAX_HOARD: usize = 70_000;

fn field(stats: &[(String, u64)], name: &str) -> u64 {
    stats
        .iter()
        .find(|(k, _)| k == name)
        .map(|&(_, v)| v)
        .unwrap_or_else(|| panic!("stats missing {name}"))
}

#[test]
fn accept_error_classification_is_typed() {
    // Portable kinds.
    assert!(matches!(
        accept_error_action(&ErrorKind::WouldBlock.into()),
        AcceptAction::WaitReadable
    ));
    assert!(matches!(
        accept_error_action(&ErrorKind::Interrupted.into()),
        AcceptAction::Retry
    ));
    // Raw errnos: fd exhaustion backs off, per-connection races retry.
    for errno in [23, 24] {
        // ENFILE, EMFILE
        assert!(
            matches!(
                accept_error_action(&std::io::Error::from_raw_os_error(errno)),
                AcceptAction::Backoff(_)
            ),
            "errno {errno} must back off"
        );
    }
    for errno in [103, 71] {
        // ECONNABORTED, EPROTO
        assert!(
            matches!(
                accept_error_action(&std::io::Error::from_raw_os_error(errno)),
                AcceptAction::Retry
            ),
            "errno {errno} must retry"
        );
    }
    // Anything else still backs off instead of hot-spinning.
    assert!(matches!(
        accept_error_action(&std::io::Error::from_raw_os_error(13)),
        AcceptAction::Backoff(_)
    ));
}

#[test]
fn fd_exhaustion_backs_off_then_recovers() {
    let edges = [(0u32, 1u32), (0, 2), (1, 2)];

    for blocking in [false, true] {
        let server = Server::bind(
            "127.0.0.1:0",
            ServeConfig {
                blocking,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.addr().to_string();

        // A connection established before the famine: it must survive it.
        let mut veteran = Client::connect(addr.as_str()).unwrap();
        veteran.register_graph("k3", 3, &edges).unwrap();
        let run = veteran
            .list(ListParams::new("k3", "T1", "desc", "paper"))
            .unwrap();
        assert_eq!(run.cost.triangles, 1);
        let before = field(&veteran.stats().unwrap(), "accept_errors");

        // Hoard every free descriptor.
        let mut hoard = Vec::new();
        loop {
            match File::open("/dev/null") {
                Ok(f) => hoard.push(f),
                Err(_) => break,
            }
            if hoard.len() >= MAX_HOARD {
                println!("soft fd limit above {MAX_HOARD}, skipping the exhaustion drill");
                return;
            }
        }
        // Free exactly one slot and spend it on a dial: the kernel
        // completes the handshake into the backlog, but the server's
        // accept has no descriptor left and must hit EMFILE.
        hoard.pop();
        let pending = std::net::TcpStream::connect(addr.as_str()).unwrap();
        // Give the accept path time to fail (and to prove it does not
        // hot-spin: a spinning loop would rack up millions of errors).
        std::thread::sleep(Duration::from_millis(120));

        let stats = veteran.stats().expect("veteran connection survives famine");
        let during = field(&stats, "accept_errors");
        assert!(
            during > before,
            "blocking {blocking}: accept must have hit the fd wall (errors {before} -> {during})"
        );
        assert!(
            during - before < 10_000,
            "blocking {blocking}: accept loop is hot-spinning ({} errors in 120ms)",
            during - before
        );

        // Famine over: the listener must still be armed, and fresh
        // connections must work without a restart.
        drop(pending);
        drop(hoard);
        let mut fresh = Client::connect(addr.as_str()).expect("accept recovers after famine");
        let run = fresh
            .list(ListParams::new("k3", "T1", "desc", "paper"))
            .expect("fresh connection serves");
        assert_eq!(run.cost.triangles, 1);

        fresh.shutdown().unwrap();
        server.join();
    }
}
