//! Concurrency stress tests for the run-control primitives: a seeded
//! multi-thread hammer on [`CancelToken`] and the [`ActiveBudget`] memory
//! gauge, plus a cancellation-under-load differential against the real
//! runtime. These are the primitives every worker touches at every chunk
//! boundary, so their cross-thread invariants (gauge conservation, cancel
//! monotonicity, chunk-boundary cancellation without torn chunks) get
//! their own suite.

use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use trilist::core::{
    list_resilient, CancelToken, KernelPolicy, Method, ResilientOpts, RunBudget, RunOutcome,
    StopReason,
};
use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated};
use trilist::graph::gen::{GraphGenerator, ResidualSampler};
use trilist::order::{DirectedGraph, OrderFamily};

const HAMMER_THREADS: usize = 8;

/// A Pareto-ish test graph oriented descending (hubs first: many chunks).
fn fixture(n: usize, seed: u64) -> DirectedGraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dist = Truncated::new(
        DiscretePareto {
            alpha: 1.6,
            beta: 5.0,
        },
        40,
    );
    let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
    let g = ResidualSampler.generate(&seq, &mut rng).graph;
    let relabeling = OrderFamily::Descending.relabeling(&g, &mut rng);
    DirectedGraph::orient(&g, &relabeling)
}

#[test]
fn memory_gauge_survives_a_seeded_hammer() {
    // 8 threads charge and release seeded pseudo-random amounts in
    // matched pairs, holding a few charges open at a time. Whatever the
    // interleaving, the gauge must end at exactly zero and never go
    // negative (saturating releases would silently absorb a lost charge,
    // so the final equality is the conservation check).
    let budget = Arc::new(RunBudget::unlimited().start());
    let handles: Vec<_> = (0..HAMMER_THREADS)
        .map(|t| {
            let budget = Arc::clone(&budget);
            std::thread::spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE + t as u64);
                let mut held: Vec<u64> = Vec::new();
                for _ in 0..20_000 {
                    if held.len() < 4 && (held.is_empty() || rng.gen::<bool>()) {
                        let amount = rng.gen_range(1u64..10_000);
                        budget.add_memory(amount);
                        held.push(amount);
                    } else {
                        let i = rng.gen_range(0..held.len());
                        budget.release_memory(held.swap_remove(i));
                    }
                }
                for amount in held {
                    budget.release_memory(amount);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("hammer thread");
    }
    assert_eq!(
        budget.memory_used(),
        0,
        "matched charge/release pairs must conserve the gauge"
    );
    assert!(budget.check().is_none(), "an unlimited budget never trips");
}

#[test]
fn gauge_saturation_does_not_mask_later_charges() {
    // Releasing more than is charged clamps at zero (documented), but a
    // subsequent charge must still land in full — the clamp must not leave
    // the gauge owing a debt.
    let budget = RunBudget::unlimited().start();
    budget.add_memory(10);
    budget.release_memory(100);
    assert_eq!(budget.memory_used(), 0);
    budget.add_memory(25);
    assert_eq!(budget.memory_used(), 25, "post-clamp charges count fully");
}

#[test]
fn cancel_token_is_monotone_and_idempotent_across_threads() {
    // Half the threads spin cancel(), half spin is_cancelled(); every
    // observation sequence must be monotone (false* true*), and all
    // observers must see the cancellation promptly once the flag is up.
    let token = CancelToken::new();
    let cancelled_at = Arc::new(AtomicU64::new(0));
    let flips_seen = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..HAMMER_THREADS {
        let token = token.clone();
        let cancelled_at = Arc::clone(&cancelled_at);
        let flips_seen = Arc::clone(&flips_seen);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            if t % 2 == 0 {
                // canceller: spin a bit, then cancel (idempotently, twice)
                for _ in 0..500 * t {
                    std::hint::spin_loop();
                }
                token.cancel();
                token.cancel();
                cancelled_at.fetch_add(1, Ordering::SeqCst);
            } else {
                // observer: record any true→false flip (must never happen)
                let mut seen_true = false;
                while !stop.load(Ordering::Relaxed) {
                    let now = token.is_cancelled();
                    if seen_true && !now {
                        flips_seen.fetch_add(1, Ordering::SeqCst);
                        return;
                    }
                    seen_true |= now;
                }
                assert!(seen_true, "observer must see the cancellation");
            }
        }));
    }
    // wait until every canceller has fired, then let observers take one
    // last look and wind down
    while cancelled_at.load(Ordering::SeqCst) < (HAMMER_THREADS / 2) as u64 {
        std::hint::spin_loop();
    }
    assert!(token.is_cancelled());
    std::thread::sleep(std::time::Duration::from_millis(10));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("hammer thread");
    }
    assert_eq!(
        flips_seen.load(Ordering::SeqCst),
        0,
        "cancellation must be monotone: no observer may see true then false"
    );
}

#[test]
fn pre_cancelled_run_executes_no_chunks() {
    // The token is checked before the first dequeue: a run born cancelled
    // stops at the very first chunk boundary with nothing executed.
    let dg = fixture(2_000, 3);
    let token = CancelToken::new();
    token.cancel();
    let mut o = ResilientOpts::with_threads(4);
    o.parallel.target_chunk_ops = 256;
    o.budget = RunBudget::unlimited().with_cancel(token);
    match list_resilient(&dg, Method::E1, &o).expect("fundamental method") {
        RunOutcome::Complete(_) => panic!("a pre-cancelled run must not complete"),
        RunOutcome::Partial(p) => {
            assert_eq!(p.reason, StopReason::Cancelled);
            assert_eq!(p.completed_chunks(), 0, "no chunk may start after cancel");
        }
    }
}

#[test]
fn mid_run_cancellation_is_chunk_granular_and_resumable() {
    // Cancel from outside while 4 workers are mid-run, with the hammer
    // threads pounding the same token: the run must stop with a clean
    // chunk-boundary partial whose resume completes byte-identically to an
    // uninterrupted listing.
    let dg = fixture(4_000, 17);
    let mut want = Vec::new();
    Method::E4.run(&dg, |x, y, z| want.push((x, y, z)));

    for attempt in 0..3u64 {
        let token = CancelToken::new();
        let mut o = ResilientOpts::with_threads(4);
        o.parallel.target_chunk_ops = 256;
        o.budget = RunBudget::unlimited().with_cancel(token.clone());
        o.parallel.policy = KernelPolicy::adaptive();

        // background hammer: several threads race to cancel after a
        // seeded delay, more spin-read the flag the whole time
        let stop = Arc::new(AtomicBool::new(false));
        let hammers: Vec<_> = (0..HAMMER_THREADS)
            .map(|t| {
                let token = token.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(attempt * 31 + t as u64);
                    if t % 2 == 0 {
                        for _ in 0..rng.gen_range(1_000..200_000u64) {
                            std::hint::spin_loop();
                        }
                        token.cancel();
                    } else {
                        while !stop.load(Ordering::Relaxed) {
                            std::hint::spin_loop();
                        }
                    }
                })
            })
            .collect();
        let outcome = list_resilient(&dg, Method::E4, &o).expect("fundamental method");
        stop.store(true, Ordering::Relaxed);
        for h in hammers {
            h.join().expect("hammer thread");
        }

        match outcome {
            // the workers can legitimately outrun the cancellers
            RunOutcome::Complete(run) => assert_eq!(run.triangles, want),
            RunOutcome::Partial(p) => {
                assert_eq!(p.reason, StopReason::Cancelled);
                // no torn chunks: completed pieces and resume ranges
                // partition the chunk set exactly
                let done = p.completed_chunks();
                let todo = p.resume.ranges.len();
                assert_eq!(done + todo, p.total_chunks(), "attempt {attempt}");
                let merged = p
                    .resume_with(&dg, &ResilientOpts::with_threads(4))
                    .expect("resume accepts the original graph")
                    .complete()
                    .expect("an unlimited resume completes");
                assert_eq!(merged.triangles, want, "attempt {attempt}");
            }
        }
    }
}
