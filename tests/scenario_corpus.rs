//! The autotuner's never-regress contract over the adversarial scenario
//! corpus: on every fixture the planner's choice must (1) list exactly
//! the brute-force triangle set under every fundamental method, (2) cost
//! at most 1.05× the paper default when both realized plans are priced
//! through the reference machine profile on *exact* paper-cost
//! operations, and (3) produce a `CostReport` byte-identical across
//! worker-thread counts and adjacency layouts.

use rand::SeedableRng;
use trilist::core::source::GraphSource;
use trilist::core::{
    baseline, list_resilient_src, CompressedCsr, CostReport, ListingPlan, Method, ParallelOpts,
    ResilientOpts,
};
use trilist::graph::gen::scenarios::CORPUS;
use trilist::graph::Graph;
use trilist::model::{rank_plans, MachineProfile, PlanConfig};
use trilist::order::{DirectedGraph, OrderingKind};

/// The corpus contract: the autotuner may never cost more than 5% over
/// the paper default on any fixture (same ceiling `autotune_matrix
/// --gate` pins).
const REGRESS_CEILING: f64 = 1.05;

fn ground_truth(g: &Graph) -> Vec<(u32, u32, u32)> {
    let mut tris = Vec::new();
    baseline::brute_force(g, |x, y, z| tris.push((x, y, z)));
    tris.sort_unstable();
    tris
}

/// Orients `graph` under `ordering` with the planner's scoring seed.
fn oriented(graph: &Graph, ordering: OrderingKind) -> (DirectedGraph, Vec<u32>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(PlanConfig::default().seed);
    let relabeling = ordering.relabeling(graph, &mut rng);
    let dg = DirectedGraph::orient(graph, &relabeling);
    let inverse = relabeling.inverse();
    (dg, inverse)
}

/// Realized reference-profile cost of one plan: exact paper ops from an
/// actual run, priced through the profile's per-method rate.
fn realized_cost(graph: &Graph, plan: &ListingPlan, profile: &MachineProfile) -> (f64, CostReport) {
    let (dg, _) = oriented(graph, plan.ordering);
    let opts = ResilientOpts {
        parallel: ParallelOpts {
            threads: 1,
            policy: plan.policy,
            ..ParallelOpts::default()
        },
        ..ResilientOpts::default()
    };
    let run = list_resilient_src(GraphSource::Plain(&dg), plan.method_hint, &opts)
        .expect("fundamental method")
        .complete()
        .expect("unlimited budget");
    let secs = profile.seconds(plan.method_hint, &plan.policy, run.cost.operations() as f64);
    (secs, run.cost)
}

#[test]
fn every_fixture_methods_agree_on_the_triangle_set() {
    for sc in CORPUS {
        let g = (sc.build)();
        let want = ground_truth(&g);
        let plan = rank_plans(&g, &MachineProfile::reference(), &PlanConfig::default()).best;
        // under both the autotuner's ordering and the paper default
        for ordering in [plan.ordering, ListingPlan::default().ordering] {
            let (dg, inverse) = oriented(&g, ordering);
            for method in Method::FUNDAMENTAL {
                let mut got = Vec::new();
                let cost = method.run(&dg, |x, y, z| {
                    let mut t = [
                        inverse[x as usize],
                        inverse[y as usize],
                        inverse[z as usize],
                    ];
                    t.sort_unstable();
                    got.push((t[0], t[1], t[2]));
                });
                got.sort_unstable();
                assert_eq!(
                    got,
                    want,
                    "{}: {method} under {} disagrees with brute force",
                    sc.name,
                    ordering.name()
                );
                assert_eq!(cost.triangles as usize, want.len(), "{}", sc.name);
            }
        }
    }
}

#[test]
fn autotuner_never_regresses_past_the_ceiling() {
    let profile = MachineProfile::reference();
    let cfg = PlanConfig::default();
    for sc in CORPUS {
        let g = (sc.build)();
        let ranked = rank_plans(&g, &profile, &cfg);
        let (plan_secs, plan_cost) = realized_cost(&g, &ranked.best, &profile);
        let (default_secs, default_cost) = realized_cost(&g, &ListingPlan::default(), &profile);
        assert_eq!(
            plan_cost.triangles, default_cost.triangles,
            "{}: plan changed the triangle count",
            sc.name
        );
        let ratio = plan_secs / default_secs.max(f64::MIN_POSITIVE);
        assert!(
            ratio <= REGRESS_CEILING,
            "{}: autotuner plan costs {ratio:.4}x the paper default (ceiling {REGRESS_CEILING})",
            sc.name
        );
        // exact mode on these sizes: the planner's predicted ops for its
        // winner must equal the realized ops exactly
        assert!(
            !ranked.sampled,
            "{}: corpus fixtures price exactly",
            sc.name
        );
        let row = ranked
            .candidate_for(&ranked.best)
            .expect("winner was evaluated");
        assert_eq!(
            row.predicted_ops,
            plan_cost.operations() as f64,
            "{}: predicted ops diverge from the realized run",
            sc.name
        );
    }
}

#[test]
fn cost_reports_are_invariant_across_threads_and_layouts() {
    let profile = MachineProfile::reference();
    let cfg = PlanConfig::default();
    for sc in CORPUS {
        let g = (sc.build)();
        let plan = rank_plans(&g, &profile, &cfg).best;
        let (dg, _) = oriented(&g, plan.ordering);
        let csr = CompressedCsr::compress(&dg);
        let mut reference: Option<CostReport> = None;
        for threads in 1..=4 {
            for (layout, src) in [
                ("plain", GraphSource::Plain(&dg)),
                ("csr", GraphSource::Compressed(&csr)),
            ] {
                let opts = ResilientOpts {
                    parallel: ParallelOpts {
                        threads,
                        policy: plan.policy,
                        ..ParallelOpts::default()
                    },
                    ..ResilientOpts::default()
                };
                let run = list_resilient_src(src, plan.method_hint, &opts)
                    .expect("fundamental method")
                    .complete()
                    .expect("unlimited budget");
                match &reference {
                    None => reference = Some(run.cost),
                    Some(want) => assert_eq!(
                        &run.cost, want,
                        "{}: CostReport drifted at {threads} threads on {layout}",
                        sc.name
                    ),
                }
            }
        }
    }
}
