//! A downstream user's workflow, end to end through the facade crate:
//! generate → analyze the distribution → get a recommendation → list with
//! sinks → cross-check statistics — the integration surface a README
//! reader actually touches, in one test.

use rand::SeedableRng;
use trilist::core::{list_triangles, Method, PerNodeCounter, ReservoirSink};
use trilist::graph::components::summarize;
use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated, Truncation};
use trilist::graph::gen::{GraphGenerator, ResidualSampler};
use trilist::model::{discrete_cost, recommend, CostClass, ModelSpec};
use trilist::order::{DirectedGraph, LimitMap, OrderFamily};

#[test]
fn full_user_journey() {
    let n = 5_000;
    let alpha = 1.7;
    let mut rng = rand::rngs::StdRng::seed_from_u64(123);

    // 1. generate
    let t_n = Truncation::Root.t_n(n);
    let dist = Truncated::new(DiscretePareto::paper_beta(alpha), t_n);
    let (degrees, _) = sample_degree_sequence(&dist, n, &mut rng);
    let generated = ResidualSampler.generate(&degrees, &mut rng);
    assert!(generated.shortfall <= 2);
    let graph = generated.graph;
    let summary = summarize(&graph);
    assert_eq!(summary.n, n);
    assert!(summary.giant_fraction > 0.95);

    // 2. model prediction before running anything
    let spec = ModelSpec::new(CostClass::T1, LimitMap::Descending);
    let predicted = discrete_cost(&dist, &spec);
    assert!(predicted > 0.0);

    // 3. recommendation
    let rec = recommend(&graph, 95.0);
    assert_eq!(rec.family, OrderFamily::Descending);

    // 4. run the recommended method with a reservoir sink
    let relabeling = rec.family.relabeling(&graph, &mut rng);
    let dg = DirectedGraph::orient(&graph, &relabeling);
    let mut reservoir = ReservoirSink::new(16, rand::rngs::StdRng::seed_from_u64(1));
    let mut per_node = PerNodeCounter::new(n);
    let cost = rec.method.run(&dg, |x, y, z| {
        reservoir.absorb(x, y, z);
        per_node.absorb(x, y, z);
    });
    assert_eq!(reservoir.seen(), cost.triangles);
    assert_eq!(per_node.total(), cost.triangles);
    assert_eq!(reservoir.sample().len(), 16.min(cost.triangles as usize));

    // 5. measured per-node cost of T1 agrees with the distributional model
    //    within Monte-Carlo slack (one graph, so be generous)
    let t1 = list_triangles(&graph, Method::T1, OrderFamily::Descending, &mut rng);
    let measured = t1.cost.per_node(n);
    assert!(
        (measured - predicted).abs() / predicted < 0.3,
        "measured {measured} vs predicted {predicted}"
    );

    // 6. every triangle in the reservoir is a real triangle of the graph
    let inv = relabeling.inverse();
    for &(x, y, z) in reservoir.sample() {
        let (a, b, c) = (inv[x as usize], inv[y as usize], inv[z as usize]);
        assert!(graph.has_edge(a, b) && graph.has_edge(b, c) && graph.has_edge(a, c));
    }
}
