//! Property suite for the dynamic-graph layer (raised by the weekly
//! `PROPTEST_CASES` run):
//!
//! 1. **Per-batch order independence** — a [`DeltaRun`] normalizes its
//!    batch to canonical bytes, so any input ordering of the same edges
//!    produces identical runs, identical net windows, and identical
//!    materialized graphs — through insert, delete, and reinsert churn.
//! 2. **Epoch pins never leak** — the store's pin refcount gauge reads
//!    exactly the live guards and returns to zero when they drop, and the
//!    resting memory gauge equals the sum of the cache's own accounting
//!    (prepared bytes + plan bytes + delta bytes + segment bytes) — no
//!    charge survives its owner.
//! 3. **Compaction is observationally invisible** — a reader pinned to an
//!    epoch sees byte-identical graphs and byte-identical prepared
//!    artifacts before and after a forced compaction, even though the
//!    segment serving that epoch may have changed underneath.

use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use trilist::core::{materialize, net_changes, DeltaRun, MemoryGauge};
use trilist::graph::Graph;
use trilist::order::OrderFamily;
use trilist::serve::{GraphStore, StoreConfig};

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A reproducible G(n, p) edge list.
fn gnp_edges(n: u32, p: f64, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    edges
}

/// `k` edges absent from `present`, in deterministic discovery order.
fn absent_edges(n: u32, present: &BTreeSet<(u32, u32)>, k: usize) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    'outer: for u in 0..n {
        for v in (u + 1)..n {
            if !present.contains(&(u, v)) {
                out.push((u, v));
                if out.len() == k {
                    break 'outer;
                }
            }
        }
    }
    out
}

/// Three edit batches over `base` — insert, remove (half the inserts plus
/// base edges), reinsert (the removed base edges) — with every batch's
/// edge list permuted by `shuffle_seed` before validation. Returns the
/// runs plus the membership mirror after all three.
type Churn = (Vec<DeltaRun>, BTreeSet<(u32, u32)>);

fn churn_batches(base: &Graph, shuffle_seed: u64) -> Option<Churn> {
    let n = base.n();
    let mut present: BTreeSet<(u32, u32)> = base.edges().collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(shuffle_seed);

    let fresh = absent_edges(n as u32, &present, 6);
    let base_victims: Vec<(u32, u32)> = present.iter().take(3).copied().collect();
    if fresh.len() < 2 || base_victims.is_empty() {
        return None; // dense or empty corner; nothing to churn
    }

    let mut runs = Vec::new();
    let mut batch = fresh.clone();
    batch.shuffle(&mut rng);
    let run = DeltaRun::insert_batch(n, &batch, |u, v| present.contains(&(u, v))).unwrap();
    present.extend(fresh.iter().copied());
    runs.push(run);

    let mut removal: Vec<(u32, u32)> = fresh[..fresh.len() / 2].to_vec();
    removal.extend(base_victims.iter().copied());
    removal.shuffle(&mut rng);
    let run = DeltaRun::remove_batch(n, &removal, |u, v| present.contains(&(u, v))).unwrap();
    for e in &removal {
        present.remove(e);
    }
    runs.push(run);

    let mut reinsert = base_victims.clone();
    reinsert.shuffle(&mut rng);
    let run = DeltaRun::insert_batch(n, &reinsert, |u, v| present.contains(&(u, v))).unwrap();
    present.extend(reinsert.iter().copied());
    runs.push(run);

    Some((runs, present))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    // Any two permutations of the same edit sequence produce identical
    // runs, identical net windows, and identical materialized graphs.
    #[test]
    fn per_batch_edit_order_is_irrelevant(
        n in 6u32..24,
        graph_seed in 0u64..1 << 48,
        shuffle_a in 0u64..1 << 48,
        shuffle_b in 0u64..1 << 48,
    ) {
        let base = Graph::from_edges(n as usize, &gnp_edges(n, 0.3, graph_seed)).unwrap();
        let (Some((runs_a, mirror_a)), Some((runs_b, mirror_b))) =
            (churn_batches(&base, shuffle_a), churn_batches(&base, shuffle_b))
        else {
            return Ok(());
        };
        // Normalization makes the runs byte-identical, not merely
        // equivalent.
        prop_assert_eq!(&runs_a, &runs_b);
        prop_assert_eq!(net_changes(runs_a.iter()), net_changes(runs_b.iter()));
        let mat_a: BTreeSet<(u32, u32)> = materialize(&base, runs_a.iter()).edges().collect();
        let mat_b: BTreeSet<(u32, u32)> = materialize(&base, runs_b.iter()).edges().collect();
        prop_assert_eq!(&mat_a, &mat_b);
        // And the materialization matches the membership mirror exactly.
        prop_assert_eq!(&mat_a, &mirror_a);
        prop_assert_eq!(&mat_b, &mirror_b);
    }

    // Pin refcounts read exactly the live guards; once every guard (and
    // the store's own caches) is dropped, the resting gauge equals the
    // store's own accounting — nothing leaks.
    #[test]
    fn epoch_pins_and_gauge_charges_never_leak(
        n in 8u32..20,
        graph_seed in 0u64..1 << 48,
        pin_pattern in proptest::collection::vec(0u8..4, 1..6),
        compact_mid in 0u8..2,
    ) {
        let gauge = MemoryGauge::new();
        let store = GraphStore::new(StoreConfig::default(), gauge.clone());
        store.register("g", n, &gnp_edges(n, 0.3, graph_seed)).unwrap();
        let base: BTreeSet<(u32, u32)> = store.graph("g").unwrap().edges().collect();
        let adds = absent_edges(n, &base, 4);
        prop_assume!(adds.len() == 4);
        store.add_edges("g", &adds[..2]).unwrap();
        store.add_edges("g", &adds[2..]).unwrap();
        let victim = *base.iter().next().unwrap();
        store.remove_edges("g", &[victim]).unwrap();
        let latest = store.latest_epoch("g").unwrap();
        prop_assert_eq!(latest, 3);

        let pins: Vec<_> = pin_pattern
            .iter()
            .map(|&e| store.pin("g", Some(e as u64 % (latest + 1))).unwrap())
            .collect();
        prop_assert_eq!(store.stats().epoch_pins, pins.len() as u64);
        if compact_mid == 1 {
            store.compact_now("g").unwrap();
        }
        // A prepared entry and (under the default fixed mode) its plan
        // both charge the gauge; the invariant must hold with them live.
        store.prepare_at("g", OrderFamily::Descending, Some(1)).unwrap();
        prop_assert_eq!(store.stats().epoch_pins, pins.len() as u64);
        drop(pins);

        let stats = store.stats();
        prop_assert_eq!(stats.epoch_pins, 0);
        prop_assert_eq!(
            gauge.used(),
            stats.bytes + stats.plan_bytes + stats.delta_bytes + stats.segment_bytes
        );
    }

    // A pinned reader observes byte-identical artifacts across a forced
    // compaction: same materialized graph, same relabeling, same degree
    // table — the segment swap underneath is invisible.
    #[test]
    fn compaction_is_invisible_to_pinned_readers(
        n in 8u32..20,
        graph_seed in 0u64..1 << 48,
        pinned_epoch in 0u64..3,
    ) {
        // One cache slot, so the intervening prepare below evicts the
        // pinned-epoch entry and the post-compaction compare is against a
        // genuine rebuild, not a cache hit.
        let cfg = StoreConfig {
            max_entries: 1,
            ..StoreConfig::default()
        };
        let store = GraphStore::new(cfg, MemoryGauge::new());
        store.register("g", n, &gnp_edges(n, 0.3, graph_seed)).unwrap();
        let base: BTreeSet<(u32, u32)> = store.graph("g").unwrap().edges().collect();
        let adds = absent_edges(n, &base, 4);
        prop_assume!(adds.len() == 4 && base.len() >= 2);
        store.add_edges("g", &adds[..2]).unwrap();
        let victim = *base.iter().next().unwrap();
        store.remove_edges("g", &[victim]).unwrap();
        store.add_edges("g", &adds[2..]).unwrap();

        let _pin = store.pin("g", Some(pinned_epoch)).unwrap();
        let graph_before: BTreeSet<(u32, u32)> =
            store.graph_at("g", Some(pinned_epoch)).unwrap().edges().collect();
        let (prep_before, _, epoch) = store
            .prepare_at("g", OrderFamily::Descending, Some(pinned_epoch))
            .unwrap();
        prop_assert_eq!(epoch, pinned_epoch);

        let report = store.compact_now("g").unwrap();
        prop_assert!(report.compacted);

        let graph_after: BTreeSet<(u32, u32)> =
            store.graph_at("g", Some(pinned_epoch)).unwrap().edges().collect();
        prop_assert_eq!(&graph_before, &graph_after);
        // Flush the single cache slot, then rebuild at the pinned epoch
        // of the now-compacted store: the epoch-mixed prepare seed makes
        // the artifacts byte-identical no matter which segment served
        // the materialization.
        store.prepare_at("g", OrderFamily::Descending, None).unwrap();
        let (prep_after, hit, _) = store
            .prepare_at("g", OrderFamily::Descending, Some(pinned_epoch))
            .unwrap();
        prop_assert!(!hit, "the compare must exercise a rebuild");
        prop_assert_eq!(&prep_before.inverse, &prep_after.inverse);
        prop_assert_eq!(&prep_before.degrees_by_label, &prep_after.degrees_by_label);
        prop_assert_eq!(prep_before.plan, prep_after.plan);
    }
}
