//! The paper's structural cost identities, verified by running the real
//! algorithms on random graphs: eqs. (7)–(9), Propositions 1–2, Table 1,
//! Table 2, and the equivalence classes of Figures 2 and 4.

use rand::SeedableRng;
use trilist::core::{HashOracle, Method};
use trilist::graph::dist::{sample_degree_sequence, DiscretePareto, Truncated};
use trilist::graph::gen::{GraphGenerator, ResidualSampler};
use trilist::graph::Graph;
use trilist::order::{DirectedGraph, OrderFamily, Relabeling};

fn test_graph(seed: u64, n: usize) -> Graph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dist = Truncated::new(
        DiscretePareto {
            alpha: 1.6,
            beta: 4.0,
        },
        (n as f64).sqrt() as u64,
    );
    let (seq, _) = sample_degree_sequence(&dist, n, &mut rng);
    ResidualSampler.generate(&seq, &mut rng).graph
}

#[test]
fn measured_operations_match_closed_forms_everywhere() {
    let g = test_graph(1, 500);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    for family in OrderFamily::ALL {
        let dg = DirectedGraph::orient(&g, &family.relabeling(&g, &mut rng));
        for method in Method::ALL {
            let cost = method.run(&dg, |_, _, _| {});
            assert_eq!(
                cost.operations(),
                method.predicted_operations(&dg),
                "{method}/{}",
                family.name()
            );
        }
    }
}

#[test]
fn eq7_8_9_from_directed_degrees() {
    let g = test_graph(3, 400);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let dg = DirectedGraph::orient(&g, &OrderFamily::RoundRobin.relabeling(&g, &mut rng));
    let (mut t1, mut t2, mut t3) = (0u64, 0u64, 0u64);
    for v in 0..dg.n() as u32 {
        let (x, y) = (dg.x(v) as u64, dg.y(v) as u64);
        t1 += x * x.saturating_sub(1) / 2;
        t2 += x * y;
        t3 += y * y.saturating_sub(1) / 2;
    }
    assert_eq!(Method::T1.run(&dg, |_, _, _| {}).lookups, t1);
    assert_eq!(Method::T2.run(&dg, |_, _, _| {}).lookups, t2);
    assert_eq!(Method::T3.run(&dg, |_, _, _| {}).lookups, t3);
}

#[test]
fn proposition_1_reversal_swaps_in_and_out_degrees() {
    let g = test_graph(5, 300);
    let degrees = g.degrees();
    let perm = trilist::order::round_robin(g.n());
    let fwd = DirectedGraph::orient(&g, &Relabeling::from_positions(&degrees, &perm));
    let rev = DirectedGraph::orient(&g, &Relabeling::from_positions(&degrees, &perm.reverse()));
    // multisets of (X, Y) under θ equal multisets of (Y, X) under θ′
    let mut a: Vec<(usize, usize)> = (0..fwd.n() as u32).map(|v| (fwd.x(v), fwd.y(v))).collect();
    let mut b: Vec<(usize, usize)> = (0..rev.n() as u32).map(|v| (rev.y(v), rev.x(v))).collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
    // hence c(T1, θ) = c(T3, θ′) and c(T2, θ) = c(T2, θ′)
    assert_eq!(
        Method::T1.predicted_operations(&fwd),
        Method::T3.predicted_operations(&rev)
    );
    assert_eq!(
        Method::T2.predicted_operations(&fwd),
        Method::T2.predicted_operations(&rev)
    );
    assert_eq!(
        Method::E1.predicted_operations(&fwd),
        Method::E3.predicted_operations(&rev)
    );
    assert_eq!(
        Method::E4.predicted_operations(&fwd),
        Method::E6.predicted_operations(&rev)
    );
}

#[test]
fn proposition_2_and_table1() {
    let g = test_graph(7, 400);
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let dg = DirectedGraph::orient(&g, &OrderFamily::Descending.relabeling(&g, &mut rng));
    let t1 = Method::T1.run(&dg, |_, _, _| {}).lookups;
    let t2 = Method::T2.run(&dg, |_, _, _| {}).lookups;
    let t3 = Method::T3.run(&dg, |_, _, _| {}).lookups;
    let expect: [(Method, u64, u64); 6] = [
        (Method::E1, t1, t2),
        (Method::E2, t2, t1),
        (Method::E3, t3, t2),
        (Method::E4, t1, t3),
        (Method::E5, t2, t3),
        (Method::E6, t3, t1),
    ];
    for (m, local, remote) in expect {
        let cost = m.run(&dg, |_, _, _| {});
        assert_eq!(cost.local, local, "{m} local");
        assert_eq!(cost.remote, remote, "{m} remote");
    }
}

#[test]
fn table2_lei_lookup_costs() {
    let g = test_graph(9, 400);
    let mut rng = rand::rngs::StdRng::seed_from_u64(10);
    let dg = DirectedGraph::orient(&g, &OrderFamily::Uniform.relabeling(&g, &mut rng));
    let oracle = HashOracle::build(&dg);
    let t1 = Method::T1
        .run_with_oracle(&dg, &oracle, |_, _, _| {})
        .lookups;
    let t2 = Method::T2
        .run_with_oracle(&dg, &oracle, |_, _, _| {})
        .lookups;
    let t3 = Method::T3
        .run_with_oracle(&dg, &oracle, |_, _, _| {})
        .lookups;
    let expect: [(Method, u64); 6] = [
        (Method::L1, t2),
        (Method::L2, t1),
        (Method::L3, t2),
        (Method::L4, t3),
        (Method::L5, t3),
        (Method::L6, t1),
    ];
    for (m, lookups) in expect {
        let cost = m.run_with_oracle(&dg, &oracle, |_, _, _| {});
        assert_eq!(cost.lookups, lookups, "{m}");
        assert_eq!(cost.hash_inserts, dg.m() as u64, "{m} build");
    }
}

#[test]
fn vertex_equivalence_classes_figure2() {
    // {T1, T4}, {T2, T5}, {T3, T6} have identical cost on the same graph
    let g = test_graph(11, 350);
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let dg = DirectedGraph::orient(&g, &OrderFamily::RoundRobin.relabeling(&g, &mut rng));
    for (a, b) in [
        (Method::T1, Method::T4),
        (Method::T2, Method::T5),
        (Method::T3, Method::T6),
    ] {
        assert_eq!(
            a.run(&dg, |_, _, _| {}).lookups,
            b.run(&dg, |_, _, _| {}).lookups,
            "{a} vs {b}"
        );
    }
}

#[test]
fn x_plus_y_equals_degree_and_sums_to_m() {
    let g = test_graph(13, 600);
    let mut rng = rand::rngs::StdRng::seed_from_u64(14);
    for family in OrderFamily::ALL {
        let relabeling = family.relabeling(&g, &mut rng);
        let dg = DirectedGraph::orient(&g, &relabeling);
        let inv = relabeling.inverse();
        for label in 0..g.n() as u32 {
            let node = inv[label as usize];
            assert_eq!(
                dg.x(label) + dg.y(label),
                g.degree(node),
                "{}",
                family.name()
            );
        }
        let sum_x: usize = (0..g.n() as u32).map(|v| dg.x(v)).sum();
        let sum_y: usize = (0..g.n() as u32).map(|v| dg.y(v)).sum();
        assert_eq!(sum_x, g.m());
        assert_eq!(sum_y, g.m());
    }
}

#[test]
fn degenerate_orientation_minimizes_max_out_degree() {
    let g = test_graph(15, 500);
    let mut rng = rand::rngs::StdRng::seed_from_u64(16);
    let degen = DirectedGraph::orient(&g, &OrderFamily::Degenerate.relabeling(&g, &mut rng));
    let degen_max = degen.max_out_degree();
    for family in OrderFamily::ALL {
        let dg = DirectedGraph::orient(&g, &family.relabeling(&g, &mut rng));
        assert!(
            degen_max <= dg.max_out_degree(),
            "degen {} vs {} {}",
            degen_max,
            family.name(),
            dg.max_out_degree()
        );
    }
}
