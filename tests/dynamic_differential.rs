//! Differential suite for the dynamic-graph layer: applying random edit
//! batches and listing only the *new* triangles of the window must agree
//! — exactly — with a from-scratch recomputation on the materialized
//! after-graph.
//!
//! Three contracts, each across ≥ 3 edit-batch seeds:
//!
//! 1. **Union**: `new triangles ∪ surviving triangles == scratch
//!    triangles of the after-graph`, where survivors are the
//!    before-graph triangles that lost no edge, for every fundamental
//!    method (T1/T2/E1/E4 all list the same set).
//! 2. **Invariance**: the delta run's merged `CostReport` and triangle
//!    list are byte-identical across plain/compressed layout, 1–4
//!    threads, and chunking — per kernel policy.
//! 3. **Resume**: an interrupted delta run continued through its parsed
//!    resume token reproduces the uninterrupted run byte-identically,
//!    chunk for chunk.

use std::collections::BTreeSet;

use rand::{Rng, SeedableRng};
use trilist::core::{
    list_new_triangles_src, list_triangles, materialize, net_changes, CompressedCsr, CostReport,
    DeltaOpts, DeltaOutcome, DeltaResumePoint, DeltaRun, GraphSource, KernelPolicy, Kernels,
    Method, RunBudget,
};
use trilist::graph::Graph;
use trilist::order::{DirectedGraph, OrderFamily};

/// A reproducible G(n, p) base graph.
fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges).unwrap()
}

/// Four random edit batches over `base` — insert, remove, insert,
/// remove — engineered so the window exercises every toggle shape:
/// plain inserts, plain removes, insert-then-remove (net nothing), and
/// remove-then-reinsert (net nothing, but a transient hole mid-window).
fn random_batches(base: &Graph, seed: u64) -> Vec<DeltaRun> {
    let n = base.n();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut present: BTreeSet<(u32, u32)> = base.edges().collect();
    let mut runs: Vec<DeltaRun> = Vec::new();

    let apply_insert = |batch: Vec<(u32, u32)>,
                        present: &mut BTreeSet<(u32, u32)>,
                        runs: &mut Vec<DeltaRun>| {
        let run = DeltaRun::insert_batch(n, &batch, |u, v| present.contains(&(u.min(v), u.max(v))))
            .expect("insert batch validated by construction");
        for &e in &batch {
            present.insert(e);
        }
        runs.push(run);
    };
    let apply_remove = |batch: Vec<(u32, u32)>,
                        present: &mut BTreeSet<(u32, u32)>,
                        runs: &mut Vec<DeltaRun>| {
        let run = DeltaRun::remove_batch(n, &batch, |u, v| present.contains(&(u.min(v), u.max(v))))
            .expect("remove batch validated by construction");
        for e in &batch {
            present.remove(e);
        }
        runs.push(run);
    };

    let sample_absent = |present: &BTreeSet<(u32, u32)>, k: usize, rng: &mut rand::rngs::StdRng| {
        let mut out = BTreeSet::new();
        while out.len() < k {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u == v {
                continue;
            }
            let e = (u.min(v), u.max(v));
            if !present.contains(&e) {
                out.insert(e);
            }
        }
        out.into_iter().collect::<Vec<_>>()
    };
    let sample_present =
        |present: &BTreeSet<(u32, u32)>, k: usize, rng: &mut rand::rngs::StdRng| {
            let pool: Vec<(u32, u32)> = present.iter().copied().collect();
            let mut out = BTreeSet::new();
            while out.len() < k.min(pool.len()) {
                out.insert(pool[rng.gen_range(0..pool.len())]);
            }
            out.into_iter().collect::<Vec<_>>()
        };

    // Batch 0: a dozen fresh inserts.
    let inserted = sample_absent(&present, 12, &mut rng);
    apply_insert(inserted.clone(), &mut present, &mut runs);

    // Batch 1: removals — a couple of the batch-0 inserts (net nothing)
    // plus base edges (candidates for net-removed or reinsert churn).
    let mut removal: Vec<(u32, u32)> = inserted.iter().take(2).copied().collect();
    for e in sample_present(&present, 8, &mut rng) {
        if !removal.contains(&e) {
            removal.push(e);
        }
    }
    removal.sort_unstable();
    let reinsert: Vec<(u32, u32)> = removal
        .iter()
        .filter(|e| !inserted.contains(e))
        .take(3)
        .copied()
        .collect();
    apply_remove(removal, &mut present, &mut runs);

    // Batch 2: reinsert some just-removed base edges (transient hole,
    // net nothing) plus fresh inserts.
    let mut insertion = reinsert;
    insertion.extend(sample_absent(&present, 6, &mut rng));
    insertion.sort_unstable();
    insertion.dedup();
    apply_insert(insertion, &mut present, &mut runs);

    // Batch 3: a final sweep of removals.
    let removal = sample_present(&present, 5, &mut rng);
    apply_remove(removal, &mut present, &mut runs);

    runs
}

/// Sorted triangle set of a from-scratch run.
fn scratch(g: &Graph, method: Method, seed: u64) -> BTreeSet<(u32, u32, u32)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    list_triangles(g, method, OrderFamily::Descending, &mut rng)
        .triangles
        .into_iter()
        .collect()
}

/// The shared fixture: one relabeled after-graph plus the window's
/// net-new edges in label space, sorted.
struct Fixture {
    after: Graph,
    dg: DirectedGraph,
    csr: CompressedCsr,
    inverse: Vec<u32>,
    label_edges: Vec<(u32, u32)>,
    net_removed: Vec<(u32, u32)>,
}

fn fixture(base: &Graph, runs: &[DeltaRun], seed: u64) -> Fixture {
    let after = materialize(base, runs.iter());
    let (net_new, net_removed) = net_changes(runs.iter());
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let relabeling = OrderFamily::Descending.relabeling(&after, &mut rng);
    let dg = DirectedGraph::orient(&after, &relabeling);
    let csr = CompressedCsr::compress(&dg);
    let inverse = relabeling.inverse();
    let mut forward = vec![0u32; inverse.len()];
    for (label, &orig) in inverse.iter().enumerate() {
        forward[orig as usize] = label as u32;
    }
    let mut label_edges: Vec<(u32, u32)> = net_new
        .iter()
        .map(|&(u, v)| {
            let (a, b) = (forward[u as usize], forward[v as usize]);
            (a.min(b), a.max(b))
        })
        .collect();
    label_edges.sort_unstable();
    Fixture {
        after,
        dg,
        csr,
        inverse,
        label_edges,
        net_removed,
    }
}

fn map_back(inverse: &[u32], tris: &[(u32, u32, u32)]) -> Vec<(u32, u32, u32)> {
    let mut out: Vec<(u32, u32, u32)> = tris
        .iter()
        .map(|&(x, y, z)| {
            let mut t = [
                inverse[x as usize],
                inverse[y as usize],
                inverse[z as usize],
            ];
            t.sort_unstable();
            (t[0], t[1], t[2])
        })
        .collect();
    out.sort_unstable();
    out
}

const SEEDS: [u64; 3] = [0xD11A, 0xD11B, 0xD11C];

#[test]
fn new_union_survivors_equals_scratch_recompute_for_every_method() {
    for seed in SEEDS {
        let base = gnp(60, 0.15, seed);
        let runs = random_batches(&base, seed ^ 0xBA7C);
        let f = fixture(&base, &runs, seed);

        let removed: BTreeSet<(u32, u32)> = f.net_removed.iter().copied().collect();
        let before = scratch(&base, Method::E1, seed);
        let survivors: BTreeSet<(u32, u32, u32)> = before
            .iter()
            .filter(|&&(x, y, z)| {
                [(x, y), (x, z), (y, z)]
                    .iter()
                    .all(|&(a, b)| !removed.contains(&(a.min(b), a.max(b))))
            })
            .copied()
            .collect();

        let kernels = Kernels::build_src(KernelPolicy::adaptive(), GraphSource::Plain(&f.dg));
        let outcome = list_new_triangles_src(
            GraphSource::Plain(&f.dg),
            &kernels,
            &f.label_edges,
            &DeltaOpts::default(),
        );
        assert!(matches!(outcome, DeltaOutcome::Complete { .. }));
        let new: BTreeSet<(u32, u32, u32)> = map_back(&f.inverse, &outcome.triangles())
            .into_iter()
            .collect();

        // New triangles each contain a net-new edge, so they are disjoint
        // from the survivors (whose edges all predate the window).
        assert!(new.is_disjoint(&survivors), "seed {seed:#x}: overlap");

        for method in Method::FUNDAMENTAL {
            let expected = scratch(&f.after, method, seed ^ 0x5eed);
            let union: BTreeSet<(u32, u32, u32)> = new.union(&survivors).copied().collect();
            assert_eq!(
                union, expected,
                "seed {seed:#x} {method}: new ∪ survivors != scratch recompute"
            );
        }
        // The window's multiset really exercised all toggle shapes.
        assert!(!f.label_edges.is_empty() && !f.net_removed.is_empty());
        assert!(
            !new.is_empty(),
            "seed {seed:#x}: window produced no new triangles"
        );
    }
}

#[test]
fn delta_cost_and_triangles_invariant_across_layout_threads_and_chunking() {
    for seed in SEEDS {
        let base = gnp(60, 0.15, seed);
        let runs = random_batches(&base, seed ^ 0xBA7C);
        let f = fixture(&base, &runs, seed);

        for policy in [KernelPolicy::PaperFaithful, KernelPolicy::adaptive()] {
            type Reference = (CostReport, Vec<(u32, u32, u32)>);
            let mut reference: Option<Reference> = None;
            for compressed in [false, true] {
                let src = if compressed {
                    GraphSource::Compressed(&f.csr)
                } else {
                    GraphSource::Plain(&f.dg)
                };
                let kernels = Kernels::build_src(policy, src);
                for threads in 1..=4usize {
                    for target_chunk_ops in [64u64, 1024] {
                        let outcome = list_new_triangles_src(
                            src,
                            &kernels,
                            &f.label_edges,
                            &DeltaOpts {
                                threads,
                                target_chunk_ops,
                                budget: RunBudget::unlimited(),
                            },
                        );
                        assert!(matches!(outcome, DeltaOutcome::Complete { .. }));
                        let got = (outcome.cost(), map_back(&f.inverse, &outcome.triangles()));
                        match &reference {
                            None => reference = Some(got),
                            Some(expect) => assert_eq!(
                                expect,
                                &got,
                                "seed {seed:#x} policy {} layout compressed={compressed} \
                                 threads={threads} chunk={target_chunk_ops}: drifted",
                                policy.name()
                            ),
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn interrupted_delta_run_resumes_byte_identically() {
    for seed in SEEDS {
        let base = gnp(60, 0.15, seed);
        let runs = random_batches(&base, seed ^ 0xBA7C);
        let f = fixture(&base, &runs, seed);
        let src = GraphSource::Plain(&f.dg);
        let kernels = Kernels::build_src(KernelPolicy::adaptive(), src);
        let small_chunks = |budget: RunBudget| DeltaOpts {
            threads: 2,
            target_chunk_ops: 64,
            budget,
        };

        let full = list_new_triangles_src(
            src,
            &kernels,
            &f.label_edges,
            &small_chunks(RunBudget::unlimited()),
        );
        let DeltaOutcome::Complete { pieces: expected } = full else {
            panic!("unlimited budget cannot stop early");
        };
        assert!(
            expected.len() >= 2,
            "seed {seed:#x}: want a multi-chunk run"
        );

        // A 1-byte memory ceiling trips at the very first budget check
        // (the rank set alone exceeds it), so the run stops with zero
        // pieces and a resume token covering every chunk.
        let interrupted = list_new_triangles_src(
            src,
            &kernels,
            &f.label_edges,
            &small_chunks(RunBudget::unlimited().with_memory_bytes(1)),
        );
        let DeltaOutcome::Partial {
            pieces,
            resume,
            reason,
        } = interrupted
        else {
            panic!("1-byte ceiling must interrupt");
        };
        assert!(pieces.is_empty());
        assert_eq!(reason.to_string(), "memory budget exhausted");

        // Round-trip the token through its wire text, then replay.
        let token: DeltaResumePoint = resume.to_string().parse().expect("token parses");
        assert_eq!(token, resume);
        let resumed = token
            .run_src(
                src,
                &kernels,
                &f.label_edges,
                &small_chunks(RunBudget::unlimited()),
            )
            .expect("shape pins match");
        let DeltaOutcome::Complete { pieces: resumed } = resumed else {
            panic!("resumed run must complete");
        };
        assert_eq!(resumed, expected, "seed {seed:#x}: resume drifted");

        // Replaying a strict subset of chunks reproduces exactly those
        // pieces — chunk identity is stable, not positional.
        let odd = DeltaResumePoint {
            n: token.n,
            edges: token.edges,
            ranges: token
                .ranges
                .iter()
                .filter(|(c, _)| c % 2 == 1)
                .cloned()
                .collect(),
        };
        if !odd.ranges.is_empty() {
            let out = odd
                .run_src(
                    src,
                    &kernels,
                    &f.label_edges,
                    &small_chunks(RunBudget::unlimited()),
                )
                .expect("shape pins match");
            let want: Vec<_> = expected
                .iter()
                .filter(|p| p.chunk % 2 == 1)
                .cloned()
                .collect();
            assert_eq!(out.pieces(), &want[..]);
        }

        // Mismatched shape pins are rejected, not silently mislisted.
        let wrong = DeltaResumePoint {
            edges: token.edges + 1,
            ..token.clone()
        };
        assert!(wrong
            .run_src(
                src,
                &kernels,
                &f.label_edges,
                &small_chunks(RunBudget::unlimited())
            )
            .is_err());
    }
}
